#!/usr/bin/env python3
"""Value-flow explorer: look inside the static analysis.

Walks a program through every phase of Figure 3 and prints what each
produces: the memory-SSA form with μ/χ annotations, the VFG with its
store-update statistics, the definedness Γ of every critical use, and
the final instrumentation plan — a pedagogical tour of the Usher
machinery on the paper's Figure 6 scenario (semi-strong updates).

Run:  python examples/value_flow_explorer.py
"""

from repro.core import UsherConfig, build_msan_plan, prepare_module, run_usher
from repro.ir import module_to_str, verify_module
from repro.opt import run_pipeline
from repro.tinyc import compile_source

SOURCE = """
def fresh_counter(start) {
  var cell = malloc(1);
  *cell = start;        // semi-strong update: bypasses the alloc_F state
  return cell;
}

def main() {
  var total = 0;
  var i = 0;
  while (i < 3) {
    var c = fresh_counter(i);
    total = total + *c;
    i = i + 1;
  }
  output(total);
  return 0;
}
"""


def main() -> None:
    module = compile_source(SOURCE, "explorer")
    run_pipeline(module, "O0+IM")
    verify_module(module)

    print("=" * 70)
    print("Phase 1-2: pointer analysis + memory SSA (Figure 4 form)")
    print("=" * 70)
    prepared = prepare_module(module)
    print(module_to_str(module))
    print()
    print(f"allocation wrappers detected: {sorted(prepared.pointers.wrappers)}")
    for name, objs in sorted(prepared.pointers.alloc_objects.items()):
        heap = [o for o in objs if o.kind == "heap"]
        if heap:
            print(f"  alloc uid {name}: {[str(o) for o in heap]}")

    print()
    print("=" * 70)
    print("Phase 3-4: value-flow graph + definedness resolution")
    print("=" * 70)
    result = run_usher(prepared, UsherConfig.tl_at())
    stats = result.vfg.stats
    print(f"VFG: {result.vfg.num_nodes} nodes, {result.vfg.num_edges} edges")
    print(f"stores: {stats.stores_total} total, {stats.stores_strong} strong, "
          f"{stats.semi_strong_applied} semi-strong updates applied")
    print()
    print("critical uses and their Γ:")
    for site in result.vfg.check_sites:
        state = result.gamma.gamma(site.node)
        print(f"  uid {site.instr_uid:>3}  {site.operand:<14} Γ = {state}")

    print()
    print("=" * 70)
    print("Phase 5: guided instrumentation vs full instrumentation")
    print("=" * 70)
    msan = build_msan_plan(module)
    print(f"MSan : {msan.describe()}")
    print(f"Usher: {result.plan.describe()}")
    print()
    print("Usher's surviving shadow operations:")
    by_uid = module.instr_by_uid()
    for func, ops in sorted(result.plan.entry_ops.items()):
        for op in ops:
            print(f"  entry of {func}(): {op}")
    for uid in sorted(result.plan.ops):
        ops = result.plan.ops[uid]
        for op in ops.pre + ops.post:
            print(f"  at `{by_uid[uid]}`: {op}")
    if result.plan.count_ops() == 0:
        print("  (none — the semi-strong update proved everything defined!)")


if __name__ == "__main__":
    main()
