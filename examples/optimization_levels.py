#!/usr/bin/env python3
"""Compiler optimization levels vs detection overhead (§4.6).

Shows the paper's trade-off: higher optimization levels shrink the
native baseline more than the instrumented code, narrowing Usher's
*relative* advantage — and can hide bugs outright (DCE removing a dead
undefined load), which is why the paper recommends O0+IM for debugging.

Run:  python examples/optimization_levels.py
"""

from repro.api import analyze
from repro.runtime import DEFAULT_COST_MODEL
from repro.workloads import workload

#: A dead read of undefined memory: nothing observable depends on it,
#: so -O1's dead code elimination deletes the load — and with it every
#: trace the detectors could have instrumented.  (LLVM goes further and
#: behaves nondeterministically on `undef` at -O1/-O2, which is why the
#: paper recommends O0+IM for debugging; our optimizer substrate is
#: deterministic, so here the effect shows up as vanishing
#: instrumentation rather than vanishing reports.)
DEAD_UNDEFINED_READ = """
def main() {
  var p = malloc(2);
  p[0] = 1;
  var dead = p[1] + 3;     // reads undefined memory...
  var unused = dead * 2;   // ...but nothing observable depends on it
  output(p[0]);
  return 0;
}
"""


def sweep_workload() -> None:
    w = workload("164.gzip")
    print(f"{w.name} ({w.description}) at each optimization level:\n")
    print(f"{'level':8s} {'native ops':>11s} {'msan %':>9s} {'usher %':>9s} "
          f"{'reduction':>10s}")
    for level in ("O0+IM", "O1", "O2"):
        analysis = analyze(source=w.source(0.25), name=w.name, level=level)
        native = analysis.run_native().native_ops
        msan = analysis.slowdown("msan")
        usher = analysis.slowdown("usher")
        reduction = 100 * (1 - usher / msan) if msan else 0.0
        print(f"{level:8s} {native:>11d} {msan:>8.1f}% {usher:>8.1f}% "
              f"{reduction:>9.1f}%")


def hidden_bug_demo() -> None:
    print("\nThe §4.6 caveat — optimization erases undefined reads:")
    from repro.ir import instructions as ins

    for level in ("O0+IM", "O1"):
        analysis = analyze(source=DEAD_UNDEFINED_READ, name="dead-read", level=level)
        loads = sum(
            1
            for i in analysis.module.instructions()
            if isinstance(i, ins.Load)
        )
        props = analysis.static_propagations("msan")
        print(
            f"  {level:6s}: {loads} loads survive compilation, "
            f"{props} MSan shadow propagations"
        )
    print("  → at O1 the undefined read (and anything a detector could say")
    print("    about it) is gone; for debugging, use O0+IM (the paper's advice)")


if __name__ == "__main__":
    sweep_workload()
    hidden_bug_demo()
