#!/usr/bin/env python3
"""Quickstart: detect a use of an undefined value, cheaply.

Compiles a small TinyC program containing a classic C bug — a local
read before it is assigned on one path — then compares MSan-style full
instrumentation against Usher's guided instrumentation: both detect the
bug, Usher with a fraction of the shadow work.

Run:  python examples/quickstart.py
"""

from repro.api import analyze
from repro.runtime import DEFAULT_COST_MODEL

SOURCE = """
global limit;

def clamp(v) {
  var result;              // BUG: undefined when v is in range
  if (v > limit) { result = limit; }
  if (v < 0) { result = 0; }
  return result;           // returns garbage for 0 <= v <= limit
}

def main() {
  limit = 100;
  var i = 0, acc = 0;
  while (i < 5) {
    acc = acc + clamp(i * 60);
    i = i + 1;
  }
  output(acc);             // the garbage reaches an output -> checked
  return 0;
}
"""


def main() -> None:
    print("Compiling and analyzing under O0+IM (the paper's setting)...")
    analysis = analyze(source=SOURCE, name="quickstart")

    native = analysis.run_native()
    print(f"native execution: {native.native_ops} ops, outputs={native.outputs}")
    print(f"ground truth: undefined values used at {sorted(native.true_bug_set())}\n")

    by_uid = analysis.module.instr_by_uid()
    for config in ("msan", "usher"):
        plan = analysis.plans[config]
        report = analysis.run(config)
        slowdown = DEFAULT_COST_MODEL.slowdown_percent(report)
        print(f"[{config}]")
        print(f"  static instrumentation: {plan.count_propagations()} shadow "
              f"propagations, {plan.count_checks()} checks")
        print(f"  modelled slowdown: {slowdown:.1f}%")
        for uid in sorted(report.warning_set()):
            instr = by_uid[uid]
            func = instr.block.function.name
            print(f"  WARNING: use of undefined value at `{instr}` in {func}()")
        print()

    msan, usher = analysis.run("msan"), analysis.run("usher")
    saved = 1 - DEFAULT_COST_MODEL.shadow_work(usher) / DEFAULT_COST_MODEL.shadow_work(msan)
    print(f"Usher found the same bug with {saved:.0%} less shadow work.")


if __name__ == "__main__":
    main()
