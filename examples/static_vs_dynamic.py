#!/usr/bin/env python3
"""Static-only vs dynamic-only vs Usher's hybrid (§1's argument, live).

Three ways to find uses of undefined values:

1. a purely *static* warner — sound but drowning in false positives;
2. purely *dynamic* full instrumentation (MSan) — precise but ~3× slow;
3. the hybrid — static analysis prunes the dynamic tool (Usher).

This example runs all three on a program mixing a genuine bug with the
"fog" patterns that defeat static analysis (dynamically-initialized
malloc'd arrays), and prints what each costs and reports.

Run:  python examples/static_vs_dynamic.py
"""

from repro.api import analyze
from repro.core import static_warnings
from repro.runtime import DEFAULT_COST_MODEL

SOURCE = """
global sum;

def checksum(data, n) {
  var acc = 0;
  var i = 0;
  while (i < n) { acc = (acc + data[i]) % 9973; i = i + 1; }
  return acc;
}

def main() {
  // Fog: dynamically fully initialized, statically unprovable.
  var data = malloc_array(16);
  var i = 0;
  while (i < 16) { data[i] = i * 7 + 1; i = i + 1; }

  // The genuine bug: `threshold` is undefined when mode == 2.
  var mode = 2;
  var threshold;
  if (mode == 0) { threshold = 10; }
  if (mode == 1) { threshold = 100; }

  var c = checksum(data, 16);
  if (c > threshold) { sum = c; } else { sum = 0; }
  output(sum);
  return 0;
}
"""


def main() -> None:
    analysis = analyze(source=SOURCE, name="hybrid-demo")
    prepared = analysis.prepared
    native = analysis.run_native()
    oracle = native.true_bug_set()
    by_uid = analysis.module.instr_by_uid()

    print("=" * 68)
    print("1. Static-only warner (no execution)")
    print("=" * 68)
    warnings = static_warnings(prepared)
    for warning in warnings:
        print(f"  warning: {warning}")
    true_sites = {by_uid[uid].line for uid in oracle}
    false_pos = [w for w in warnings if w.line not in true_sites]
    print(f"  => {len(warnings)} warnings; {len(false_pos)} never fire at "
          f"run time (the fog array is fully initialized, and downstream "
          f"ripples of one bug each get their own warning)")

    print()
    print("=" * 68)
    print("2. Dynamic-only: MSan full instrumentation")
    print("=" * 68)
    msan = analysis.run("msan")
    print(f"  reports: {sorted(msan.warning_set())} "
          f"(exactly the oracle: {sorted(oracle)})")
    print(f"  cost: {DEFAULT_COST_MODEL.slowdown_percent(msan):.0f}% slowdown, "
          f"{analysis.static_propagations('msan')} static shadow propagations")

    print()
    print("=" * 68)
    print("3. Hybrid: Usher-guided instrumentation")
    print("=" * 68)
    usher = analysis.run("usher")
    print(f"  reports: {sorted(usher.warning_set())} — same bug, no noise")
    print(f"  cost: {DEFAULT_COST_MODEL.slowdown_percent(usher):.0f}% slowdown, "
          f"{analysis.static_propagations('usher')} static shadow propagations")
    for uid in sorted(usher.warning_set()):
        instr = by_uid[uid]
        print(f"  detected at line {instr.line}: `{instr}`")

    saved = 1 - (
        DEFAULT_COST_MODEL.shadow_work(usher)
        / DEFAULT_COST_MODEL.shadow_work(msan)
    )
    print()
    print(f"Same detection as full instrumentation, {saved:.0%} less shadow "
          f"work; no static false positives reach the user.")


if __name__ == "__main__":
    main()
