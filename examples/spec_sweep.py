#!/usr/bin/env python3
"""SPEC-workload sweep: a miniature Figure 10 + Figure 11.

Runs the 15 SPEC2000-shaped workloads through MSan and all four Usher
configurations and prints the reproduced figures.  ``--scale`` trades
fidelity for speed (1.0 = the reference inputs of the benchmarks).

Run:  python examples/spec_sweep.py [--scale 0.25] [--level O0+IM]
"""

import argparse

from repro.harness import (
    build_figure10,
    build_figure11,
    format_figure10,
    format_figure11,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload input scale (1.0 = reference)")
    parser.add_argument("--level", default="O0+IM",
                        choices=["O0", "O0+IM", "O1", "O2"],
                        help="compiler optimization pipeline")
    args = parser.parse_args()

    print(f"Running all 15 workloads at scale {args.scale} under {args.level}...")
    figure10 = build_figure10(scale=args.scale, level=args.level)
    print()
    print("Execution-time slowdown vs native (Figure 10):")
    print(format_figure10(figure10))

    averages = figure10.averages()
    reduction = 100 * (1 - averages["usher"] / averages["msan"])
    print()
    print(f"Usher reduces MSan's average overhead by {reduction:.1f}%")

    parser_row = figure10.row("197.parser")
    tools = [c for c, n in parser_row.warnings.items() if n > 0]
    print(f"197.parser's genuine bug detected by: {', '.join(tools)}")

    print()
    print("Static instrumentation normalized to MSan (Figure 11):")
    print(format_figure11(build_figure11(scale=args.scale, level=args.level)))


if __name__ == "__main__":
    main()
