#!/usr/bin/env python3
"""Using the library below the TinyC front end: IRBuilder + analyses.

Downstream users embedding the analysis (e.g. from another language
front end) construct IR directly.  This demo builds a small program
with :class:`IRBuilder` — a producer/consumer pair communicating
through a heap record where one field is forgotten — then runs the
whole Usher pipeline on it and prints what each phase found.

Run:  python examples/ir_builder_demo.py
"""

from repro.core import UsherConfig, build_msan_plan, prepare_module, run_usher
from repro.ir import Const, IRBuilder, Var, module_to_str, verify_module
from repro.runtime import run_instrumented, run_native


def build_module():
    b = IRBuilder()

    # def produce(seed) { msg := malloc(2); msg[0] := seed; return msg; }
    # (field 1 — the "checksum" — is forgotten)
    b.start_function("produce", ["seed"])
    msg = b.fresh_temp("msg")
    b.alloc(msg, "produce::msg", initialized=False, kind="heap", size=2)
    b.store(msg, Var("seed"))  # field 0
    b.ret(msg)

    # def consume(m) { if m[1] goto bad else good }
    b.start_function("consume", ["m"])
    checksum_addr = b.fresh_temp("ca")
    b.gep(checksum_addr, Var("m"), 1)
    checksum = b.fresh_temp("ck")
    b.load(checksum, checksum_addr)
    bad = b.new_block("bad")
    good = b.new_block("good")
    b.branch(checksum, bad.label, good.label)  # uses the forgotten field
    b.position_at(bad)
    b.ret(Const(1))
    b.position_at(good)
    b.ret(Const(0))

    # def main() { m := produce(7); output(consume(m)); ret 0 }
    b.start_function("main")
    m = b.fresh_temp("m")
    b.call(m, "produce", [Const(7)])
    status = b.fresh_temp("st")
    b.call(status, "consume", [m])
    b.output(status)
    b.ret(Const(0))

    module = b.finish()
    verify_module(module)
    return module


def main() -> None:
    module = build_module()
    print("Hand-built IR:")
    print(module_to_str(module))

    native = run_native(module)
    print(f"\nnative run: outputs={native.outputs}, "
          f"oracle bug sites={sorted(native.true_bug_set())}")

    prepared = prepare_module(module)
    print(f"allocation wrappers: {sorted(prepared.pointers.wrappers)}")

    result = run_usher(prepared, UsherConfig.full())
    msan = build_msan_plan(module)
    print(f"\nMSan : {msan.describe()}")
    print(f"Usher: {result.plan.describe()}")

    report = run_instrumented(module, result.plan)
    by_uid = module.instr_by_uid()
    for uid in sorted(report.warning_set()):
        instr = by_uid[uid]
        func = instr.block.function.name
        print(f"WARNING: undefined value used at `{instr}` in {func}()")


if __name__ == "__main__":
    main()
