#!/usr/bin/env python3
"""Fuzz hunt: detection at scale over generated programs.

Generates random TinyC programs, runs Usher's guided detection on each,
and tallies how many truly buggy programs exist, how many Usher caught
(must be all of them), and how much cheaper guided instrumentation was
than full instrumentation across the corpus — the soundness story of
the property-based tests, presented as a tool run.

Run:  python examples/fuzz_hunt.py [--programs 40] [--seed-base 0]
"""

import argparse

from repro.api import analyze
from repro.runtime import DEFAULT_COST_MODEL, StepLimitExceeded
from repro.workloads import GeneratorParams, generate_program


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--programs", type=int, default=40)
    parser.add_argument("--seed-base", type=int, default=0)
    parser.add_argument("--uninit-prob", type=float, default=0.35)
    args = parser.parse_args()

    params = GeneratorParams(uninit_prob=args.uninit_prob)
    buggy = caught = skipped = 0
    msan_work = usher_work = 0.0

    for seed in range(args.seed_base, args.seed_base + args.programs):
        source = generate_program(seed, params)
        analysis = analyze(source=source, name=f"seed{seed}",
                           configs=["msan", "usher"])
        try:
            native = analysis.run_native()
        except StepLimitExceeded:
            skipped += 1
            continue
        report = analysis.run("usher")
        msan_work += DEFAULT_COST_MODEL.shadow_work(analysis.run("msan"))
        usher_work += DEFAULT_COST_MODEL.shadow_work(report)
        if native.true_bug_set():
            buggy += 1
            if report.warnings:
                caught += 1
                first = min(report.warning_set())
                instr = analysis.module.instr_by_uid()[first]
                print(f"seed {seed:4d}: BUG caught at line {instr.line} "
                      f"(`{instr}`)")
            else:
                print(f"seed {seed:4d}: BUG MISSED — soundness violation!")
        elif report.warnings:
            print(f"seed {seed:4d}: FALSE POSITIVE — should not happen!")

    ran = args.programs - skipped
    print()
    print(f"programs: {ran} analyzed ({skipped} skipped on step budget)")
    print(f"buggy:    {buggy}; caught by Usher: {caught}")
    saved = 1 - usher_work / msan_work if msan_work else 0.0
    print(f"shadow work vs MSan across the corpus: {saved:.0%} saved")
    if buggy != caught:
        raise SystemExit("soundness violation detected")
    print("soundness holds: every buggy run was reported.")


if __name__ == "__main__":
    main()
