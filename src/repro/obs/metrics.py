"""Prometheus-style metrics: counters, gauges, latency histograms.

Zero-dependency instruments rendered in the Prometheus *text
exposition format* (the ``# HELP`` / ``# TYPE`` + sample-line shape
any Prometheus-compatible scraper parses).  ``repro serve`` owns one
:class:`MetricsRegistry` and serves its :meth:`~MetricsRegistry.render`
output at ``GET /metrics``.

Instruments support label sets the Prometheus way — one time series
per label combination::

    registry = MetricsRegistry()
    requests = registry.counter(
        "repro_requests_total", "Requests served.", labels=("route", "status")
    )
    requests.inc(route="/stats", status="200")

    latency = registry.histogram(
        "repro_request_seconds", "Request latency.", labels=("route",)
    )
    latency.observe(0.004, route="/stats")

:func:`parse_prometheus_text` is the shared consumer: it parses the
exposition text back into ``{name: {labels_tuple: value}}`` and is
what the test suite (and any report tooling) uses to assert on
scraped values.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
]

#: Default latency buckets (seconds) — the Prometheus client defaults.
DEFAULT_BUCKETS = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Instrument:
    """Shared label handling for all instrument kinds."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labels = tuple(labels)
        self._lock = threading.Lock()

    def _key(self, label_values: Dict[str, object]) -> Tuple[str, ...]:
        if set(label_values) != set(self.labels):
            raise ValueError(
                f"{self.name}: expected labels {self.labels}, "
                f"got {tuple(sorted(label_values))}"
            )
        return tuple(str(label_values[k]) for k in self.labels)

    def _labels_text(
        self, key: Tuple[str, ...], extra: Sequence[Tuple[str, str]] = ()
    ) -> str:
        pairs = [
            f'{name}="{_escape(value)}"'
            for name, value in list(zip(self.labels, key)) + list(extra)
        ]
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Instrument):
    """A monotonically increasing count per label set."""

    kind = "counter"

    def __init__(self, name, help_text, labels=()):
        super().__init__(name, help_text, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **label_values) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = self._key(label_values)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **label_values) -> float:
        return self._values.get(self._key(label_values), 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(
                f"{self.name}{self._labels_text(key)} {_format_value(value)}"
            )
        return lines


class Gauge(_Instrument):
    """A value that can go up and down; optionally computed at scrape
    time via a callback (``set_function``)."""

    kind = "gauge"

    def __init__(self, name, help_text, labels=()):
        super().__init__(name, help_text, labels)
        self._values: Dict[Tuple[str, ...], float] = {}
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float, **label_values) -> None:
        key = self._key(label_values)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **label_values) -> None:
        key = self._key(label_values)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **label_values) -> None:
        self.inc(-amount, **label_values)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the (label-less) value lazily at scrape time."""
        if self.labels:
            raise ValueError(f"{self.name}: scrape callbacks need no labels")
        self._fn = fn

    def value(self, **label_values) -> float:
        if self._fn is not None and not label_values:
            return float(self._fn())
        return self._values.get(self._key(label_values), 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        if self._fn is not None:
            lines.append(f"{self.name} {_format_value(float(self._fn()))}")
            return lines
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(
                f"{self.name}{self._labels_text(key)} {_format_value(value)}"
            )
        return lines


class Histogram(_Instrument):
    """Cumulative-bucket latency histogram (``_bucket{le=}``, ``_sum``,
    ``_count`` samples per label set, the Prometheus shape)."""

    kind = "histogram"

    def __init__(self, name, help_text, labels=(), buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text, labels)
        self.buckets = tuple(sorted(buckets))
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}
        self._totals: Dict[Tuple[str, ...], int] = {}

    def observe(self, value: float, **label_values) -> None:
        key = self._key(label_values)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **label_values) -> int:
        return self._totals.get(self._key(label_values), 0)

    def sum(self, **label_values) -> float:
        return self._sums.get(self._key(label_values), 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            keys = sorted(self._totals)
            snapshot = {
                key: (list(self._counts[key]), self._sums[key], self._totals[key])
                for key in keys
            }
        for key in keys:
            counts, total_sum, total = snapshot[key]
            for bound, count in zip(self.buckets, counts):
                le = _format_value(float(bound))
                lines.append(
                    f"{self.name}_bucket"
                    f"{self._labels_text(key, [('le', le)])} {count}"
                )
            lines.append(
                f"{self.name}_bucket"
                f"{self._labels_text(key, [('le', '+Inf')])} {total}"
            )
            lines.append(
                f"{self.name}_sum{self._labels_text(key)} "
                f"{_format_value(total_sum)}"
            )
            lines.append(f"{self.name}_count{self._labels_text(key)} {total}")
        return lines


class MetricsRegistry:
    """The instrument collection one server exposes at ``/metrics``."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _register(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is not None:
                if type(existing) is not type(instrument) or (
                    existing.labels != instrument.labels
                ):
                    raise ValueError(
                        f"{instrument.name}: re-registered with a "
                        "different kind or label set"
                    )
                return existing
            self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name, help_text, labels=()) -> Counter:
        return self._register(Counter(name, help_text, labels))

    def gauge(self, name, help_text, labels=()) -> Gauge:
        return self._register(Gauge(name, help_text, labels))

    def histogram(
        self, name, help_text, labels=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labels, buckets))

    def render(self) -> str:
        """The full text exposition payload (trailing newline included,
        as scrapers expect)."""
        with self._lock:
            instruments = [
                self._instruments[name] for name in sorted(self._instruments)
            ]
        lines: List[str] = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Dict[Tuple, float]]:
    """Parse exposition text into ``{metric: {labels: value}}``.

    ``labels`` is a tuple of ``(name, value)`` pairs in source order
    (``()`` for label-less samples).  ``# HELP`` / ``# TYPE`` comments
    are validated for shape and skipped.  Raises :class:`ValueError`
    on the first malformed line — this doubles as the test suite's
    format check.
    """
    samples: Dict[str, Dict[Tuple, float]] = {}
    for number, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {number}: malformed comment {raw!r}")
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            labels_text, _, value_text = rest.rpartition("}")
            labels: List[Tuple[str, str]] = []
            for item in _split_labels(labels_text):
                if "=" not in item:
                    raise ValueError(f"line {number}: bad label {item!r}")
                label_name, label_value = item.split("=", 1)
                if not (
                    label_value.startswith('"') and label_value.endswith('"')
                ):
                    raise ValueError(
                        f"line {number}: unquoted label value {item!r}"
                    )
                labels.append(
                    (
                        label_name.strip(),
                        label_value[1:-1]
                        .replace('\\"', '"')
                        .replace("\\n", "\n")
                        .replace("\\\\", "\\"),
                    )
                )
            key = tuple(labels)
        else:
            name, _, value_text = line.partition(" ")
            key = ()
        name = name.strip()
        value_text = value_text.strip()
        if not name or not value_text:
            raise ValueError(f"line {number}: malformed sample {raw!r}")
        try:
            value = (
                math.inf if value_text == "+Inf" else float(value_text)
            )
        except ValueError:
            raise ValueError(
                f"line {number}: non-numeric value {value_text!r}"
            )
        samples.setdefault(name, {})[key] = value
    return samples


def _split_labels(text: str) -> List[str]:
    """Split ``a="x",b="y,z"`` on commas outside quotes."""
    items: List[str] = []
    depth_quote = False
    current = []
    escaped = False
    for char in text:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            depth_quote = not depth_quote
            current.append(char)
            continue
        if char == "," and not depth_quote:
            if current:
                items.append("".join(current))
                current = []
            continue
        current.append(char)
    if current:
        items.append("".join(current))
    return items
