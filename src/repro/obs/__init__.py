"""Unified observability: span tracing, a stats registry, metrics.

Three zero-dependency pillars (see ``docs/observability.md``):

- :mod:`repro.obs.trace` — hierarchical in-process span tracing of
  every pipeline phase (``TRACE.span("solve", tier=...)``), exportable
  as Chrome trace-event JSON (``repro check --trace out.json``, load in
  ``chrome://tracing`` / Perfetto) or a rendered tree (``repro report
  --sections trace``).  Disabled tracing is a no-op behind a single
  attribute check.
- :mod:`repro.obs.registry` — the :class:`StatsRegistry` every
  ``*Stats`` dataclass (solver, query, update, Opt II, VFG) registers
  into under one shared schema, plus the single JSONL writer behind
  every benchmark log (``tools/diff_solver_stats.py`` gates its rows).
- :mod:`repro.obs.metrics` — Prometheus-style counters, gauges and
  latency histograms rendered in the text exposition format; ``repro
  serve`` scrapes them at ``GET /metrics``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.registry import (
    REGISTRY,
    StatRecord,
    StatsRegistry,
    append_jsonl,
    write_stats_row,
)
from repro.obs.trace import (
    TRACE,
    SpanRecord,
    Tracer,
    trace,
    traced,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
    "REGISTRY",
    "StatRecord",
    "StatsRegistry",
    "append_jsonl",
    "write_stats_row",
    "TRACE",
    "SpanRecord",
    "Tracer",
    "trace",
    "traced",
    "validate_chrome_trace",
]
