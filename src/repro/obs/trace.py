"""Hierarchical span tracing for the analysis pipeline.

One process-wide :class:`Tracer` (the :data:`TRACE` singleton, aliased
:data:`trace`) records *spans* — named, tagged wall-clock intervals —
into a flat list with parent links, so a whole ``analyze()`` run
becomes one tree: parse under the root, constraint generation and the
per-wave solve loop under ``prepare``, VFG building, Opt I/II and
demand queries under each configuration.  Producers write spans with
the context-manager / decorator API::

    from repro.obs import TRACE

    with TRACE.span("solve", tier=tier, storage=storage):
        ...                        # children nest automatically

    @traced("vfg.build")
    def build_vfg(...): ...

Tracing is **off by default** and a disabled tracer is a no-op behind
a single attribute check: ``TRACE.span(...)`` returns the shared
:data:`NOOP_SPAN` singleton without allocating, and hot loops guard
with ``if TRACE.enabled:`` so per-wave / per-query spans cost nothing
when nobody is looking (the bound is enforced by
``benchmarks/test_observability.py``).

Worker processes (the resident pool, sharded constraint generation)
trace into their fork-copied tracer and ship the finished spans back
over their result pipe (:meth:`Tracer.export_spans`); the parent
stitches them under its own open span (:meth:`Tracer.adopt`), keeping
the worker's pid so a Chrome/Perfetto load shows one track per
process.  ``time.perf_counter`` is ``CLOCK_MONOTONIC`` and survives
``fork``, so parent and worker timestamps share one axis.

Exports: :meth:`Tracer.chrome_trace` (the Chrome trace-event JSON
format — load the file in ``chrome://tracing`` or
https://ui.perfetto.dev) and :meth:`Tracer.render_tree` (an indented
text tree with durations, the ``repro report --sections trace``
shape).  :func:`validate_chrome_trace` is the schema check the test
suite and consumers share.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "NOOP_SPAN",
    "SpanRecord",
    "TRACE",
    "Tracer",
    "trace",
    "traced",
    "validate_chrome_trace",
]


class SpanRecord:
    """One recorded span: a named interval with tags and a parent link.

    ``parent`` is the index of the enclosing span in the tracer's event
    list (``-1`` for a root).  ``end`` is ``None`` while the span is
    still open.  Times are ``time.perf_counter()`` values.
    """

    __slots__ = ("name", "tags", "parent", "start", "end", "pid", "tid")

    def __init__(
        self,
        name: str,
        tags: Dict[str, object],
        parent: int,
        start: float,
        end: Optional[float] = None,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> None:
        self.name = name
        self.tags = tags
        self.parent = parent
        self.start = start
        self.end = end
        self.pid = pid if pid is not None else os.getpid()
        self.tid = tid if tid is not None else threading.get_ident()

    @property
    def seconds(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def as_tuple(self) -> Tuple:
        """The pipe-shippable shape (plain builtins, no class)."""
        return (
            self.name,
            dict(self.tags),
            self.parent,
            self.start,
            self.end,
            self.pid,
            self.tid,
        )

    def __repr__(self) -> str:
        return (
            f"<span {self.name!r} {self.seconds * 1e3:.3f}ms "
            f"parent={self.parent} pid={self.pid}>"
        )


class _NoopSpan:
    """The disabled-mode span: a shared, stateless context manager.

    ``Tracer.span`` returns this singleton when tracing is off, so the
    disabled path allocates nothing and does no work beyond one
    attribute check plus the call itself.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def tag(self, **tags) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An enabled-mode span handle (one per ``with`` block)."""

    __slots__ = ("_tracer", "_name", "_tags", "_index")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict) -> None:
        self._tracer = tracer
        self._name = name
        self._tags = tags
        self._index = -1

    def __enter__(self) -> "_LiveSpan":
        self._index = self._tracer._open(self._name, self._tags)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self._index)
        return False

    def tag(self, **tags) -> "_LiveSpan":
        """Attach tags discovered mid-span (e.g. a wave's width)."""
        self._tags.update(tags)
        return self


class Tracer:
    """The span recorder.  One process-wide instance (:data:`TRACE`).

    The open-span stack is thread-local so a multi-threaded consumer
    nests correctly; the event list itself is append-only and guarded
    by the GIL (list.append is atomic).
    """

    def __init__(self) -> None:
        self.enabled: bool = False
        self.events: List[SpanRecord] = []
        self._local = threading.local()

    # -- recording ------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags):
        """A context manager timing the enclosed block as one span.

        Disabled tracing returns the shared :data:`NOOP_SPAN` after a
        single attribute check.  Hot loops should guard the call itself
        with ``if TRACE.enabled:`` so not even the call happens.
        """
        if not self.enabled:
            return NOOP_SPAN
        return _LiveSpan(self, name, tags)

    def _open(self, name: str, tags: Dict) -> int:
        stack = self._stack()
        parent = stack[-1] if stack else -1
        index = len(self.events)
        self.events.append(
            SpanRecord(name, tags, parent, time.perf_counter())
        )
        stack.append(index)
        return index

    def _close(self, index: int) -> None:
        self.events[index].end = time.perf_counter()
        stack = self._stack()
        # Tolerate exits out of order (a span object closed from a
        # different frame): unwind to — and including — this span.
        while stack:
            if stack.pop() == index:
                break

    def instant(self, name: str, **tags) -> None:
        """A zero-duration marker span (campaign progress ticks)."""
        if not self.enabled:
            return
        now = time.perf_counter()
        stack = self._stack()
        parent = stack[-1] if stack else -1
        self.events.append(SpanRecord(name, tags, parent, now, now))

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events = []
        self._local = threading.local()

    def capture(self):
        """``with TRACE.capture():`` — clear, enable, and disable on
        exit, leaving ``events`` populated for export."""
        return _Capture(self)

    # -- cross-process stitching ---------------------------------------
    def export_spans(self, clear: bool = True) -> List[Tuple]:
        """Finished spans as plain tuples (for a result pipe).

        Open spans are skipped — a worker exports between batches, so
        anything still open belongs to the next batch.  Parent links
        are remapped to positions *within the exported batch* (a
        parent that was skipped or already exported becomes a root),
        so :meth:`adopt` can graft the batch anywhere.
        """
        position: Dict[int, int] = {}
        out: List[Tuple] = []
        for index, record in enumerate(self.events):
            if record.end is None:
                continue
            position[index] = len(out)
            row = record.as_tuple()
            out.append(row[:2] + (position.get(record.parent, -1),) + row[3:])
        if clear:
            self.events = []
            self._local = threading.local()
        return out

    def adopt(
        self, spans: Iterable[Tuple], parent: Optional[int] = None
    ) -> int:
        """Graft exported worker spans under ``parent`` (default: the
        caller's innermost open span).  Returns the number adopted.

        Root spans of the batch re-parent onto ``parent``; non-root
        parent links are offset so the worker's internal nesting
        survives.  The worker's pid/tid are kept verbatim — that is
        the stitching: one Chrome/Perfetto track per worker process,
        nested under the parent's span in the tree rendering.
        """
        spans = list(spans)
        if not spans:
            return 0
        if parent is None:
            stack = self._stack()
            parent = stack[-1] if stack else -1
        base = len(self.events)
        for name, tags, span_parent, start, end, pid, tid in spans:
            grafted = parent if span_parent < 0 else base + span_parent
            self.events.append(
                SpanRecord(name, tags, grafted, start, end, pid, tid)
            )
        return len(spans)

    # -- export ---------------------------------------------------------
    def chrome_trace(self) -> Dict:
        """The Chrome trace-event JSON object (``traceEvents`` array of
        complete events, microsecond timestamps relative to the first
        span), loadable in ``chrome://tracing`` / Perfetto."""
        finished = [e for e in self.events if e.end is not None]
        origin = min((e.start for e in finished), default=0.0)
        events: List[Dict] = []
        for pid in sorted({e.pid for e in finished}):
            label = "repro" if pid == os.getpid() else f"repro worker {pid}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        for record in finished:
            events.append(
                {
                    "name": record.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round((record.start - origin) * 1e6, 3),
                    "dur": round((record.end - record.start) * 1e6, 3),
                    "pid": record.pid,
                    "tid": record.tid,
                    "args": {
                        key: _jsonable(value)
                        for key, value in record.tags.items()
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> int:
        """Write :meth:`chrome_trace` to ``path``; returns the number
        of span events written (metadata records excluded)."""
        payload = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return sum(1 for e in payload["traceEvents"] if e["ph"] == "X")

    def render_tree(self, min_fraction: float = 0.0) -> str:
        """An indented text tree of the recorded spans with durations.

        ``min_fraction`` prunes spans shorter than that share of their
        root (per-wave noise suppression for the report section).
        """
        finished = [
            (i, e) for i, e in enumerate(self.events) if e.end is not None
        ]
        children: Dict[int, List[int]] = {}
        roots: List[int] = []
        index_set = {i for i, _ in finished}
        for i, record in finished:
            if record.parent in index_set:
                children.setdefault(record.parent, []).append(i)
            else:
                roots.append(i)
        lines: List[str] = []

        def emit(index: int, depth: int, root_seconds: float) -> None:
            record = self.events[index]
            if root_seconds > 0 and record.seconds < min_fraction * root_seconds:
                return
            tags = ", ".join(
                f"{k}={v}" for k, v in sorted(record.tags.items())
            )
            suffix = f"  [{tags}]" if tags else ""
            own_pid = "" if record.pid == os.getpid() else f" @pid{record.pid}"
            lines.append(
                f"{'  ' * depth}{record.name:<{max(1, 32 - 2 * depth)}s}"
                f"{record.seconds * 1e3:>10.3f} ms{own_pid}{suffix}"
            )
            for child in children.get(index, ()):
                emit(child, depth + 1, root_seconds)

        for root in roots:
            emit(root, 0, self.events[root].seconds)
        return "\n".join(lines) if lines else "(no spans recorded)"


class _Capture:
    __slots__ = ("_tracer",)

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def __enter__(self) -> Tracer:
        self._tracer.clear()
        self._tracer.enable()
        return self._tracer

    def __exit__(self, *exc) -> bool:
        self._tracer.disable()
        return False


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


#: The process-wide tracer every pipeline phase records into.
TRACE = Tracer()
#: Alias matching the ``trace.span(...)`` spelling of the docs.
trace = TRACE


def traced(name: str, **tags) -> Callable:
    """Decorator form of :meth:`Tracer.span` — the wrapped call becomes
    one span when tracing is enabled, a plain call otherwise."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not TRACE.enabled:
                return fn(*args, **kwargs)
            with TRACE.span(name, **tags):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# ----------------------------------------------------------------------
# Chrome trace-event schema validation (shared by tests and tooling)
# ----------------------------------------------------------------------
def validate_chrome_trace(payload) -> int:
    """Validate a Chrome trace-event JSON object; returns the number of
    complete (``"ph": "X"``) span events.  Raises :class:`ValueError`
    with a one-line reason on the first schema violation.

    Checks the subset of the trace-event format this tracer emits:
    the ``traceEvents`` array, per-event required fields and types,
    non-negative microsecond timestamps/durations, and JSON-safe
    ``args``.
    """
    if isinstance(payload, (str, bytes)):
        payload = json.loads(payload)
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload lacks a traceEvents array")
    spans = 0
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            raise ValueError(f"{where}: unsupported phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing or empty name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"{where}: {field} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where}: args must be an object")
        if phase == "M":
            continue
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"{where}: {field} must be a non-negative number"
                )
        spans += 1
    return spans
