"""Unified stats registry and the single JSONL stats writer.

Every ``*Stats`` object in the pipeline — :class:`SolverStats`,
:class:`QueryStats`, :class:`UpdateStats`, :class:`Opt2Stats`,
:class:`VFGStats` — lands here as a :class:`StatRecord` under one
shared schema::

    stat      which family ("solver", "query", "update", "opt2", "vfg")
    phase     the pipeline phase the numbers describe
    counters  the stats object's ``as_dict()`` (or field dict) payload
    wall_s    per-phase wall-clock seconds (``{phase: seconds}``)
    tags      run context: tier / storage / schedule / jobs / ...

The in-process registry (:data:`REGISTRY`) is a bounded ring — a
long-lived ``repro serve`` records every update without growing
without bound — and :meth:`StatsRegistry.rows` snapshots it for
``/stats`` payloads or report sections.

File emission goes through exactly two functions: :func:`append_jsonl`
(one JSON object per line, append mode, parent dirs created) and
:func:`write_stats_row` (the benchmark-log row shape that
``tools/diff_solver_stats.py`` groups and gates).  Rows written here
carry ``"schema": "repro.stats/1"`` so the diff tool knows it may
apply the per-phase wall-clock gate; legacy rows without the marker
are still read but not wall-gated.
"""

from __future__ import annotations

import collections
import json
import os
import threading
from typing import Dict, List, Optional

__all__ = [
    "REGISTRY",
    "SCHEMA",
    "StatRecord",
    "StatsRegistry",
    "append_jsonl",
    "write_stats_row",
]

#: Marker stamped on every JSONL row the unified writer emits.
SCHEMA = "repro.stats/1"

#: Tag keys promoted out of ``extra`` into the shared ``tags`` dict.
_TAG_KEYS = ("tier", "storage", "schedule", "jobs", "mode", "opt")


class StatRecord:
    """One registered stats snapshot under the shared schema."""

    __slots__ = ("stat", "phase", "counters", "wall_s", "tags")

    def __init__(
        self,
        stat: str,
        phase: str,
        counters: Dict[str, object],
        wall_s: Optional[Dict[str, float]] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> None:
        self.stat = stat
        self.phase = phase
        self.counters = counters
        self.wall_s = wall_s or {}
        self.tags = tags or {}

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "stat": self.stat,
            "phase": self.phase,
            "counters": dict(self.counters),
            "wall_s": dict(self.wall_s),
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        return f"<stat {self.stat}/{self.phase} {len(self.counters)} counters>"


class StatsRegistry:
    """The bounded in-process registry all stats families report into.

    ``record_*`` adapters translate each legacy ``*Stats`` object into
    a :class:`StatRecord`; :meth:`record` is the generic entry.  The
    ring keeps the most recent ``maxlen`` records (default 1024) so a
    resident service never grows unbounded.
    """

    def __init__(self, maxlen: int = 1024) -> None:
        self._records: collections.deque = collections.deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._records)

    def record(
        self,
        stat: str,
        phase: str,
        counters: Dict[str, object],
        wall_s: Optional[Dict[str, float]] = None,
        **tags,
    ) -> StatRecord:
        rec = StatRecord(stat, phase, dict(counters), wall_s, tags)
        with self._lock:
            self._records.append(rec)
        return rec

    # -- adapters for the five legacy stats families -------------------
    def record_solver(self, stats, **tags) -> StatRecord:
        """A :class:`repro.analysis.solverstats.SolverStats`."""
        counters = stats.as_dict()
        wall = dict(counters.pop("phase_seconds", {}) or {})
        counters.pop("elapsed", None)
        return self.record(
            "solver",
            "solve",
            counters,
            wall_s=wall,
            **tags,
        )

    def record_query(self, stats, **tags) -> StatRecord:
        """A :class:`repro.analysis.solverstats.QueryStats`."""
        return self.record("query", "demand", stats.as_dict(), **tags)

    def record_update(self, stats, **tags) -> StatRecord:
        """A :class:`repro.service.session.UpdateStats`."""
        counters = stats.as_dict()
        wall = {"update": counters.get("update_seconds", 0.0)}
        return self.record("update", "update", counters, wall_s=wall, **tags)

    def record_opt2(self, stats, **tags) -> StatRecord:
        """A :class:`repro.core.opt2.Opt2Stats`."""
        counters = stats if isinstance(stats, dict) else stats.as_dict()
        return self.record("opt2", "opt2", counters, **tags)

    def record_vfg(self, stats, **tags) -> StatRecord:
        """A :class:`repro.vfg.graph.VFGStats`."""
        counters = stats if isinstance(stats, dict) else stats.as_dict()
        return self.record("vfg", "vfg.build", counters, **tags)

    def record_bench(self, row: Dict[str, object], **tags) -> StatRecord:
        """One ``repro bench`` cell row (the flat shape
        :func:`write_stats_row` emits with ``kind="bench"``)."""
        counters = {
            k: v
            for k, v in row.items()
            if k not in ("schema", "tags", "kind")
        }
        merged = dict(row.get("tags") or {})
        merged.update(tags)
        wall = (
            {"cell": row["elapsed"]} if "elapsed" in row else None
        )
        return self.record(
            "bench", "bench.cell", counters, wall_s=wall, **merged
        )

    # -- consumption ---------------------------------------------------
    def rows(
        self, stat: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """A JSON-safe snapshot, newest last; filter by family."""
        with self._lock:
            records = list(self._records)
        if stat is not None:
            records = [r for r in records if r.stat == stat]
        if limit is not None:
            records = records[-limit:]
        return [r.as_dict() for r in records]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def write_jsonl(self, path: str, stat: Optional[str] = None) -> int:
        """Append the current snapshot to ``path``; returns row count."""
        rows = self.rows(stat=stat)
        for row in rows:
            append_jsonl(path, row)
        return len(rows)


#: The process-wide registry the pipeline reports into.
REGISTRY = StatsRegistry()


def append_jsonl(path: str, row: Dict[str, object]) -> None:
    """The single JSONL writer: one compact JSON object per line,
    append mode, parent directory created on demand."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")


def write_stats_row(
    path: str,
    benchmark: str,
    seed: int,
    factor: int,
    elapsed: Optional[float] = None,
    stats=None,
    **extra,
) -> Dict[str, object]:
    """Write one benchmark-log row in the shape
    ``tools/diff_solver_stats.py`` groups and gates.

    The row keeps the legacy flat layout — base fields, then ``extra``,
    then the stats object's ``as_dict()`` spread at top level — so
    existing group keys and metric gates keep working, and adds the
    ``"schema"`` marker plus a normalized ``tags`` dict so new tooling
    can key off the unified schema.  Returns the row written.
    """
    row: Dict[str, object] = {
        "schema": SCHEMA,
        "benchmark": benchmark,
        "seed": seed,
        "factor": factor,
    }
    if elapsed is not None:
        row["elapsed"] = round(elapsed, 6)
    row.update(extra)
    if stats is not None:
        payload = stats if isinstance(stats, dict) else stats.as_dict()
        for key, value in payload.items():
            row.setdefault(key, value)
    row["tags"] = {k: row[k] for k in _TAG_KEYS if k in row}
    append_jsonl(path, row)
    return row
