"""LLVM-like optimizer substrate: mem2reg, inlining, scalar opts, DCE,
CFG simplification, arranged into the paper's O0+IM / O1 / O2 pipelines.
"""

from repro.opt.dce import eliminate_dead_allocs, eliminate_dead_code
from repro.opt.inline import (
    functions_with_fp_params,
    inline_call_sites,
    inline_fp_functions,
)
from repro.opt.localopt import fold_binop, fold_unop, local_optimize
from repro.opt.mem2reg import mem2reg, promotable_slots
from repro.opt.pipeline import OPT_LEVELS, run_pipeline
from repro.opt.simplifycfg import simplify_cfg

__all__ = [
    "eliminate_dead_allocs",
    "eliminate_dead_code",
    "functions_with_fp_params",
    "inline_call_sites",
    "inline_fp_functions",
    "fold_binop",
    "fold_unop",
    "local_optimize",
    "mem2reg",
    "promotable_slots",
    "OPT_LEVELS",
    "run_pipeline",
    "simplify_cfg",
]
