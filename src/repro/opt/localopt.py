"""Scalar optimizations standing in for LLVM's -O1/-O2 middle end.

Implemented conservatively on the pre-SSA IR, block-locally:

- constant folding and constant propagation,
- copy propagation,
- common subexpression elimination (pure ops),
- store-to-load forwarding and redundant-load elimination (O2): a load
  through the same pointer variable with no intervening store or call
  reuses the previous value.

Like the real thing, these passes can *hide* uses of undefined values
(folding away a load, forwarding a store) — the effect §4.6 warns about
when running detection under -O1/-O2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir import instructions as ins
from repro.ir.function import Block
from repro.ir.module import Module
from repro.ir.values import Const, Value, Var


def fold_binop(op: str, lhs: int, rhs: int) -> int:
    """Evaluate a TinyC binary op on machine-free integers.

    Division/modulo by zero yields 0 (the interpreter's total semantics).
    Comparisons yield 0/1.
    """
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        return _div(lhs, rhs)
    if op == "%":
        return _rem(lhs, rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "&":
        return lhs & rhs
    if op == "|":
        return lhs | rhs
    if op == "^":
        return lhs ^ rhs
    if op == "<<":
        return lhs << (rhs % 64 if rhs >= 0 else 0)
    if op == ">>":
        return lhs >> (rhs % 64 if rhs >= 0 else 0)
    raise ValueError(f"unknown operator {op!r}")


def fold_unop(op: str, operand: int) -> int:
    if op == "-":
        return -operand
    if op == "!":
        return int(not operand)
    if op == "~":
        return ~operand
    raise ValueError(f"unknown operator {op!r}")


def _div(lhs: int, rhs: int) -> int:
    if rhs == 0:
        return 0
    # C semantics: truncate toward zero.
    q = abs(lhs) // abs(rhs)
    return q if (lhs >= 0) == (rhs >= 0) else -q


def _rem(lhs: int, rhs: int) -> int:
    if rhs == 0:
        return 0
    return lhs - _div(lhs, rhs) * rhs


def local_optimize(module: Module, forward_loads: bool = False) -> int:
    """One round of block-local optimizations; returns #rewrites."""
    changed = 0
    for function in module.functions.values():
        for block in function.blocks:
            changed += _optimize_block(block, forward_loads)
    module.assign_uids()
    return changed


def _optimize_block(block: Block, forward_loads: bool) -> int:
    changed = 0
    constants: Dict[str, int] = {}
    copies: Dict[str, Var] = {}
    #: (op, lhs, rhs) -> var currently holding the expression
    expressions: Dict[Tuple, Var] = {}
    #: pointer var name -> var/const currently stored at *ptr
    memory: Dict[str, Value] = {}

    def resolve(value: Value) -> Value:
        if isinstance(value, Var):
            while value.name in copies:
                value = copies[value.name]
            if value.name in constants:
                return Const(constants[value.name])
        return value

    def kill(name: str) -> None:
        constants.pop(name, None)
        copies.pop(name, None)
        for key in [k for k, v in copies.items() if v.name == name]:
            copies.pop(key)
        for key in [k for k, v in expressions.items() if v.name == name]:
            expressions.pop(key)
        for key in [k for k, v in memory.items()
                    if isinstance(v, Var) and v.name == name]:
            memory.pop(key)
        memory.pop(name, None)

    new_instrs: List[ins.Instr] = []
    for instr in block.instrs:
        mapping = {v: resolve(v) for v in instr.uses()}
        mapping = {k: v for k, v in mapping.items() if v != k}
        if mapping:
            instr.replace_uses(mapping)
            changed += 1

        replacement: Optional[ins.Instr] = None
        if isinstance(instr, ins.BinOp):
            if isinstance(instr.lhs, Const) and isinstance(instr.rhs, Const):
                replacement = ins.ConstCopy(
                    instr.dst, fold_binop(instr.op, instr.lhs.value, instr.rhs.value)
                )
            else:
                key = ("bin", instr.op, str(instr.lhs), str(instr.rhs))
                if key in expressions:
                    replacement = ins.Copy(instr.dst, expressions[key])
        elif isinstance(instr, ins.UnOp) and isinstance(instr.operand, Const):
            replacement = ins.ConstCopy(
                instr.dst, fold_unop(instr.op, instr.operand.value)
            )
        elif isinstance(instr, ins.Load) and forward_loads:
            if isinstance(instr.ptr, Var) and instr.ptr.name in memory:
                replacement = ins.Copy(instr.dst, memory[instr.ptr.name])

        if replacement is not None:
            replacement.block = block
            replacement.line = instr.line
            instr = replacement
            changed += 1

        # Update local facts.
        for var in instr.defs():
            kill(var.name)
        if isinstance(instr, ins.ConstCopy):
            constants[instr.dst.name] = instr.value
        elif isinstance(instr, ins.Copy):
            if isinstance(instr.src, Const):
                constants[instr.dst.name] = instr.src.value
            elif instr.src.name != instr.dst.name:
                copies[instr.dst.name] = instr.src
        elif isinstance(instr, ins.BinOp):
            expressions[("bin", instr.op, str(instr.lhs), str(instr.rhs))] = instr.dst
        elif isinstance(instr, ins.Store):
            # A store through an unknown pointer may alias anything.
            memory.clear()
            if isinstance(instr.ptr, Var):
                memory[instr.ptr.name] = instr.value
        elif isinstance(instr, ins.Load):
            if forward_loads and isinstance(instr.ptr, Var):
                memory.setdefault(instr.ptr.name, instr.dst)
        elif isinstance(instr, ins.Call):
            memory.clear()

        new_instrs.append(instr)
    block.instrs = new_instrs
    return changed
