"""CFG simplification: constant branch folding, jump threading over
empty blocks, unreachable-block removal, and straight-line block merging.

Runs pre-SSA (no φs to maintain).
"""

from __future__ import annotations

from typing import Dict

from repro.ir import instructions as ins
from repro.ir.cfg import CFG, remove_unreachable_blocks
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Const


def simplify_cfg(module: Module) -> int:
    changed = 0
    for function in module.functions.values():
        changed += _fold_constant_branches(function)
        changed += _thread_trivial_jumps(function)
        changed += remove_unreachable_blocks(function)
        changed += _merge_straightline(function)
    module.assign_uids()
    return changed


def _fold_constant_branches(function: Function) -> int:
    changed = 0
    for block in function.blocks:
        term = block.instrs[-1] if block.instrs else None
        if isinstance(term, ins.Branch) and isinstance(term.cond, Const):
            target = term.then_label if term.cond.value else term.else_label
            block.instrs[-1] = ins.Jump(target)
            block.instrs[-1].block = block
            changed += 1
    return changed


def _thread_trivial_jumps(function: Function) -> int:
    """Redirect edges through blocks containing only a jump."""
    trivial: Dict[str, str] = {}
    for block in function.blocks:
        if len(block.instrs) == 1 and isinstance(block.instrs[0], ins.Jump):
            trivial[block.label] = block.instrs[0].target

    def final(label: str) -> str:
        seen = set()
        while label in trivial and label not in seen:
            seen.add(label)
            label = trivial[label]
        return label

    changed = 0
    for block in function.blocks:
        term = block.instrs[-1] if block.instrs else None
        if isinstance(term, ins.Jump) and term.target in trivial:
            term.target = final(term.target)
            changed += 1
        elif isinstance(term, ins.Branch):
            then_final = final(term.then_label)
            else_final = final(term.else_label)
            if then_final != term.then_label or else_final != term.else_label:
                term.then_label = then_final
                term.else_label = else_final
                changed += 1
    return changed


def _merge_straightline(function: Function) -> int:
    """Merge ``a -> jump b`` where b has exactly one predecessor."""
    changed = 0
    while True:
        cfg = CFG(function)
        merged = False
        for block in function.blocks:
            term = block.instrs[-1] if block.instrs else None
            if not isinstance(term, ins.Jump):
                continue
            target_label = term.target
            if target_label == block.label:
                continue
            if len(cfg.preds[target_label]) != 1:
                continue
            if target_label == function.entry.label:
                continue
            target = function.block(target_label)
            block.instrs.pop()  # the jump
            for instr in target.instrs:
                instr.block = block
            block.instrs.extend(target.instrs)
            function.remove_block(target_label)
            changed += 1
            merged = True
            break
        if not merged:
            return changed
