"""Optimization pipelines mirroring the paper's compiler settings.

- ``O0+IM`` (§4.1): iterative inlining of function-pointer-argument
  functions, then mem2reg.  This is the setting under which the main
  comparison (Figures 10/11, Table 1) is run.
- ``O1``: O0+IM plus rounds of constant/copy propagation, CSE, CFG
  simplification and dead code elimination.
- ``O2``: O1 plus store-to-load forwarding and extra rounds.

Each pipeline mutates the module in place and re-assigns uids; run it
*before* the Usher/MSan analyses, exactly as the paper compiles, then
analyses, then (conceptually) re-optimizes — the last step is absorbed
by the cost model since instrumentation lives next to its host
instruction.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.module import Module
from repro.opt.dce import eliminate_dead_allocs, eliminate_dead_code
from repro.opt.inline import inline_fp_functions
from repro.opt.localopt import local_optimize
from repro.opt.mem2reg import mem2reg
from repro.opt.simplifycfg import simplify_cfg

OPT_LEVELS = ("O0", "O0+IM", "O1", "O2")


def run_pipeline(module: Module, level: str = "O0+IM") -> Dict[str, int]:
    """Run the named pipeline; returns per-pass change counts."""
    if level not in OPT_LEVELS:
        raise ValueError(f"unknown optimization level {level!r}")
    counts: Dict[str, int] = {}
    if level == "O0":
        return counts
    counts["inline"] = inline_fp_functions(module)
    counts["mem2reg"] = mem2reg(module)
    if level == "O0+IM":
        return counts
    rounds = 2 if level == "O1" else 4
    forward_loads = level == "O2"
    for i in range(rounds):
        counts[f"localopt{i}"] = local_optimize(module, forward_loads=forward_loads)
        counts[f"simplifycfg{i}"] = simplify_cfg(module)
        counts[f"dce{i}"] = eliminate_dead_code(module)
        # CFG simplification can re-expose mem2reg opportunities.
        counts[f"mem2reg{i}"] = mem2reg(module)
    counts["dead_allocs"] = eliminate_dead_allocs(module)
    counts["dce_final"] = eliminate_dead_code(module)
    module.assign_uids()
    return counts
