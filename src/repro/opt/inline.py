"""Function inlining for call-graph simplification.

The evaluated implementation "iteratively inlin[es] the functions with at
least one function pointer argument to simplify the call graph (excluding
those functions that are directly recursive)" (§4.1).  Lacking static
types, a "function pointer argument" is recognised semantically: a formal
parameter used as the callee of an indirect call (directly, or after
top-level copies) inside the function.

Inlining is performed on the pre-SSA IR: callee blocks are cloned with
renamed labels and variables, formals become copies of the actuals, and
each ``ret`` becomes a copy to the call result plus a jump to the
continuation block.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir import instructions as ins
from repro.ir.function import Block, Function
from repro.ir.module import Module
from repro.ir.values import Const, Value, Var


def functions_with_fp_params(module: Module) -> Set[str]:
    """Functions taking (what behaves like) a function-pointer argument.

    A flow-insensitive fixpoint tracks parameter values through
    top-level copies and through stack slots (the -O0 front end spills
    everything): a function qualifies when an indirect call\'s callee may
    hold one of its parameters.
    """
    result: Set[str] = set()
    for function in module.functions.values():
        fp_values = set(function.params)
        fp_slots: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for instr in function.instructions():
                if isinstance(instr, ins.Copy) and isinstance(instr.src, Var):
                    if (
                        instr.src.name in fp_values
                        and instr.dst.name not in fp_values
                    ):
                        fp_values.add(instr.dst.name)
                        changed = True
                elif isinstance(instr, ins.Store):
                    if (
                        isinstance(instr.value, Var)
                        and isinstance(instr.ptr, Var)
                        and instr.value.name in fp_values
                        and instr.ptr.name not in fp_slots
                    ):
                        fp_slots.add(instr.ptr.name)
                        changed = True
                elif isinstance(instr, ins.Load) and isinstance(instr.ptr, Var):
                    if (
                        instr.ptr.name in fp_slots
                        and instr.dst.name not in fp_values
                    ):
                        fp_values.add(instr.dst.name)
                        changed = True
        for instr in function.instructions():
            if isinstance(instr, ins.Call) and instr.is_indirect:
                if instr.callee.name in fp_values:
                    result.add(function.name)
                    break
    return result


def _directly_recursive(function: Function) -> bool:
    return any(
        isinstance(i, ins.Call)
        and not i.is_indirect
        and i.callee == function.name
        for i in function.instructions()
    )


def inline_fp_functions(module: Module, max_rounds: int = 5) -> int:
    """Iteratively inline direct calls to fp-argument functions.

    Returns the number of call sites inlined.  Re-assigns uids.
    """
    total = 0
    for _ in range(max_rounds):
        targets = {
            name
            for name in functions_with_fp_params(module)
            if not _directly_recursive(module.functions[name])
            and name != "main"
        }
        if not targets:
            break
        round_count = 0
        for function in list(module.functions.values()):
            if function.name in targets:
                continue  # inline into non-targets first; next round fixes up
            round_count += _inline_calls_in(module, function, targets)
        if round_count == 0:
            break
        total += round_count
    module.assign_uids()
    return total


def inline_call_sites(module: Module, targets: Set[str]) -> int:
    """Inline every direct call to any function named in ``targets``."""
    total = 0
    for function in list(module.functions.values()):
        if function.name in targets:
            continue
        total += _inline_calls_in(module, function, targets)
    module.assign_uids()
    return total


_UNIQUE = [0]


def _inline_calls_in(module: Module, function: Function, targets: Set[str]) -> int:
    count = 0
    changed = True
    while changed:
        changed = False
        for block in list(function.blocks):
            for index, instr in enumerate(block.instrs):
                if (
                    isinstance(instr, ins.Call)
                    and not instr.is_indirect
                    and instr.callee in targets
                ):
                    _inline_one(module, function, block, index)
                    count += 1
                    changed = True
                    break
            if changed:
                break
    return count


def _inline_one(module: Module, function: Function, block: Block, index: int) -> None:
    call = block.instrs[index]
    assert isinstance(call, ins.Call) and not call.is_indirect
    callee = module.functions[call.callee]
    _UNIQUE[0] += 1
    tag = f"inl{_UNIQUE[0]}"

    rename_var: Dict[str, str] = {}

    def map_var(var: Var) -> Var:
        if var.name not in rename_var:
            rename_var[var.name] = f"{var.name}.{tag}"
        return Var(rename_var[var.name])

    def map_value(value: Value) -> Value:
        return map_var(value) if isinstance(value, Var) else value

    label_map = {b.label: f"{b.label}.{tag}" for b in callee.blocks}
    cont_label = f"cont.{tag}"

    # Split the call block: instructions after the call move to `cont`.
    cont = function.add_block(cont_label)
    tail = block.instrs[index + 1 :]
    block.instrs = block.instrs[:index]
    for i in tail:
        i.block = cont
    cont.instrs = tail

    # Bind actuals to renamed formals.
    for formal, actual in zip(callee.params, call.args):
        copy = ins.Copy(map_var(Var(formal)), actual)
        block.append(copy)
    for extra in callee.params[len(call.args) :]:
        map_var(Var(extra))  # unbound formal stays undefined
    block.append(ins.Jump(label_map[callee.entry.label]))

    # Clone callee blocks; each `ret v` becomes `dst := v; goto cont`.
    for src_block in callee.blocks:
        clone = function.add_block(label_map[src_block.label])
        for instr in src_block.instrs:
            if isinstance(instr, ins.Ret):
                if call.dst is not None:
                    value = (
                        map_value(instr.value)
                        if instr.value is not None
                        else Const(0)
                    )
                    clone.append(ins.Copy(call.dst, value))
                clone.append(ins.Jump(cont_label))
            else:
                copy = _clone_instr(instr, map_var, map_value, label_map, tag)
                copy.line = instr.line
                clone.append(copy)


def _clone_instr(instr, map_var, map_value, label_map, tag):
    if isinstance(instr, ins.ConstCopy):
        return ins.ConstCopy(map_var(instr.dst), instr.value)
    if isinstance(instr, ins.Copy):
        return ins.Copy(map_var(instr.dst), map_value(instr.src))
    if isinstance(instr, ins.BinOp):
        return ins.BinOp(
            map_var(instr.dst), instr.op, map_value(instr.lhs), map_value(instr.rhs)
        )
    if isinstance(instr, ins.UnOp):
        return ins.UnOp(map_var(instr.dst), instr.op, map_value(instr.operand))
    if isinstance(instr, ins.Alloc):
        return ins.Alloc(
            map_var(instr.dst),
            f"{instr.obj_name}.{tag}",
            instr.initialized,
            instr.kind,
            instr.size,
            instr.is_array,
        )
    if isinstance(instr, ins.Gep):
        return ins.Gep(map_var(instr.dst), map_value(instr.base), map_value(instr.offset))
    if isinstance(instr, ins.GlobalAddr):
        return ins.GlobalAddr(map_var(instr.dst), instr.global_name)
    if isinstance(instr, ins.FuncAddr):
        return ins.FuncAddr(map_var(instr.dst), instr.func_name)
    if isinstance(instr, ins.Load):
        return ins.Load(map_var(instr.dst), map_value(instr.ptr))
    if isinstance(instr, ins.Store):
        return ins.Store(map_value(instr.ptr), map_value(instr.value))
    if isinstance(instr, ins.Call):
        dst = map_var(instr.dst) if instr.dst is not None else None
        callee = (
            map_var(instr.callee) if instr.is_indirect else instr.callee
        )
        return ins.Call(dst, callee, [map_value(a) for a in instr.args])
    if isinstance(instr, ins.Branch):
        return ins.Branch(
            map_value(instr.cond),
            label_map[instr.then_label],
            label_map[instr.else_label],
        )
    if isinstance(instr, ins.Jump):
        return ins.Jump(label_map[instr.target])
    if isinstance(instr, ins.Output):
        return ins.Output(map_value(instr.value))
    raise ValueError(f"cannot inline instruction {instr}")
