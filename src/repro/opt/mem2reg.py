"""mem2reg: promote memory slots to top-level virtual registers.

The front-end spills every source local to a stack slot (clang -O0
style).  This pass promotes the promotable slots back into top-level
variables, exactly like LLVM's ``mem2reg``, which the paper's O0+IM
pipeline applies before running Usher ("generate SSA for top-level local
variables", §4.1).

A slot is promotable when:

- it is a scalar stack allocation (one cell, not an array), and
- its address is used *only* as the direct pointer operand of loads and
  stores (never stored elsewhere, passed to a call, offset by a gep,
  compared, or returned), and
- it is never stored *into itself* as a value.

Promotion replaces ``load``/``store`` through the slot with top-level
copies of a fresh register.  A path on which the register is read before
being written becomes an SSA use of the implicit version 0 — the
undefined value, exactly LLVM's ``undef`` for a read-before-write local.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Var


def mem2reg(module: Module) -> int:
    """Promote all promotable slots in ``module``; return the count.

    Re-assigns instruction uids.
    """
    total = 0
    for function in module.functions.values():
        total += _promote_function(function)
    module.assign_uids()
    return total


def promotable_slots(function: Function) -> "Dict[str, ins.Alloc]":
    """The promotable allocas of ``function``, keyed by dst name."""
    allocs: Dict[str, ins.Alloc] = {}
    disqualified: Set[str] = set()
    for instr in function.instructions():
        if isinstance(instr, ins.Alloc):
            if instr.kind == "stack" and instr.size == 1 and not instr.is_array:
                if instr.dst.name in allocs:
                    disqualified.add(instr.dst.name)
                allocs[instr.dst.name] = instr
            else:
                disqualified.add(instr.dst.name)

    candidates = set(allocs) - disqualified
    for instr in function.instructions():
        if isinstance(instr, ins.Load):
            pass  # a load only uses its pointer: fine
        elif isinstance(instr, ins.Store):
            # Using the slot address as the stored *value* escapes it.
            if isinstance(instr.value, Var) and instr.value.name in candidates:
                disqualified.add(instr.value.name)
        else:
            for var in instr.uses():
                if var.name in candidates:
                    disqualified.add(var.name)
        for var in instr.defs():
            if not isinstance(instr, ins.Alloc) and var.name in candidates:
                disqualified.add(var.name)
    return {name: allocs[name] for name in candidates - disqualified}


def _promote_function(function: Function) -> int:
    slots = promotable_slots(function)
    if not slots:
        return 0
    registers: Dict[str, Var] = {}
    for index, (slot_name, alloc) in enumerate(sorted(slots.items())):
        base = alloc.obj_name.rsplit("::", 1)[-1]
        registers[slot_name] = Var(f"%r.{base}.{index}")

    for block in function.blocks:
        new_instrs: List[ins.Instr] = []
        for instr in block.instrs:
            replacement = _rewrite(instr, registers)
            if replacement is not None:
                replacement.block = block
                new_instrs.append(replacement)
            elif isinstance(instr, ins.Alloc) and instr.dst.name in registers:
                continue  # the slot itself disappears
            else:
                new_instrs.append(instr)
        block.instrs = new_instrs
    return len(registers)


def _rewrite(instr: ins.Instr, registers: Dict[str, Var]):
    """The replacement instruction, or ``None`` to keep/drop ``instr``."""
    replacement = None
    if isinstance(instr, ins.Load) and isinstance(instr.ptr, Var):
        reg = registers.get(instr.ptr.name)
        if reg is not None:
            replacement = ins.Copy(instr.dst, reg)
    if isinstance(instr, ins.Store) and isinstance(instr.ptr, Var):
        reg = registers.get(instr.ptr.name)
        if reg is not None:
            replacement = ins.Copy(reg, instr.value)
    if replacement is not None:
        replacement.line = instr.line
    return replacement
