"""Dead code elimination.

Removes pure instructions whose results are never used anywhere in
their function.  Loads are pure here — deleting a dead load also
deletes its would-be definedness check, which is precisely how higher
optimization levels "hide some uses of undefined values" (§4.6).
"""

from __future__ import annotations

from typing import Set

from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.module import Module

#: Instruction types safe to delete when their result is unused.
_PURE = (
    ins.ConstCopy,
    ins.Copy,
    ins.BinOp,
    ins.UnOp,
    ins.Gep,
    ins.GlobalAddr,
    ins.FuncAddr,
    ins.Load,
    ins.Phi,
)


def eliminate_dead_code(module: Module) -> int:
    """Iteratively remove dead pure instructions; returns #removed."""
    removed = 0
    for function in module.functions.values():
        removed += _dce_function(function)
    module.assign_uids()
    return removed


def _dce_function(function: Function) -> int:
    removed = 0
    while True:
        used: Set[str] = set()
        for instr in function.instructions():
            for var in instr.uses():
                used.add(var.name)
        round_removed = 0
        for block in function.blocks:
            kept = []
            for instr in block.instrs:
                if isinstance(instr, _PURE) and all(
                    d.name not in used for d in instr.defs()
                ):
                    round_removed += 1
                    continue
                kept.append(instr)
            block.instrs = kept
        removed += round_removed
        if round_removed == 0:
            return removed


def eliminate_dead_allocs(module: Module) -> int:
    """Remove allocations whose pointer is never used (a separate pass:
    an alloc is not pure in general, but an unused one is unreachable
    memory)."""
    removed = 0
    for function in module.functions.values():
        used: Set[str] = set()
        for instr in function.instructions():
            for var in instr.uses():
                used.add(var.name)
        for block in function.blocks:
            kept = []
            for instr in block.instrs:
                if isinstance(instr, ins.Alloc) and instr.dst.name not in used:
                    removed += 1
                    continue
                kept.append(instr)
            block.instrs = kept
    module.assign_uids()
    return removed
