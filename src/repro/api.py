"""High-level convenience API tying the whole pipeline together.

The single entry point is :func:`analyze` (keyword-only; pass either
TinyC ``source`` or a compiled ``module``)::

    from repro.api import analyze

    analysis = analyze(source=source, level="O0+IM")
    report = analysis.run("usher")
    print(report.warnings, analysis.slowdown("usher"))

    # Demand-driven definedness queries (no whole-program resolution):
    analysis.query(uid)          # Γ at one check site: defined?
    analysis.explain(uid)        # how F reaches it, step by step
    analysis.query_stats()       # what the queries actually visited

All knobs can be passed as one :class:`repro.options.AnalysisOptions`
record (``analyze(options=...)``); the individual keyword arguments
remain as a deprecated compatibility surface and lose to a set options
field.  For a long-lived, incrementally re-analyzed program, see
:class:`repro.service.session.AnalysisSession` and ``repro serve``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.analysis.solverstats import QueryStats
from repro.analysis.tiers import resolve_tier
from repro.core import (
    InstrumentationPlan,
    PreparedModule,
    UsherConfig,
    UsherResult,
    prepare_module,
    run_msan,
    run_usher,
)
from repro.obs.trace import TRACE
from repro.opt import run_pipeline
from repro.options import AnalysisOptions
from repro.runtime import (
    DEFAULT_COST_MODEL,
    CostModel,
    ExecutionReport,
    run_instrumented,
    run_native,
)
from repro.tinyc import compile_source
from repro.vfg.demand import DemandEngine
from repro.vfg.explain import FlowStep, explain_undefined_demand
from repro.vfg.graph import CheckSite, Node

#: The analysis configurations of §4.5, in presentation order.
CONFIG_ORDER = ("msan", "usher_tl", "usher_tl_at", "usher_opt1", "usher")

#: CONFIG_ORDER plus the beyond-paper extension configuration.
EXTENDED_CONFIG_ORDER = CONFIG_ORDER + ("usher_ext",)

#: Something identifying a check site: the site itself, its VFG node,
#: or the uid of the critical instruction.
Site = Union[CheckSite, Node, int]


@dataclass
class Analysis:
    """A fully analyzed program: plans for MSan and all Usher configs."""

    module: Module
    prepared: PreparedModule
    plans: Dict[str, InstrumentationPlan]
    results: Dict[str, UsherResult]
    level: str
    context_depth: int = 1
    resolver: str = "callstring"
    _runs: Dict[str, ExecutionReport] = field(default_factory=dict)
    _native: Optional[ExecutionReport] = None
    _engines: Dict[str, DemandEngine] = field(default_factory=dict)
    max_steps: int = 50_000_000

    def run_native(self) -> ExecutionReport:
        if self._native is None:
            self._native = run_native(self.module, max_steps=self.max_steps)
        return self._native

    def run(self, config: str) -> ExecutionReport:
        """Execute under the named configuration's instrumentation."""
        if config not in self._runs:
            self._runs[config] = run_instrumented(
                self.module, self.plans[config], max_steps=self.max_steps
            )
        return self._runs[config]

    def slowdown(self, config: str, model: CostModel = DEFAULT_COST_MODEL) -> float:
        return model.slowdown_percent(self.run(config))

    def static_propagations(self, config: str) -> int:
        return self.plans[config].count_propagations()

    def static_checks(self, config: str) -> int:
        return self.plans[config].count_checks()

    # -- demand-driven queries ----------------------------------------
    def _pick_config(self, config: Optional[str]) -> Optional[str]:
        if config is not None:
            return config if config in self.results else None
        for name in EXTENDED_CONFIG_ORDER:
            if name in self.results:
                return name
        return next(iter(self.results), None)

    def engine(self, config: Optional[str] = None) -> Optional[DemandEngine]:
        """The demand engine over ``config``'s VFG (built lazily, one
        per config, memo shared across all queries).  ``None`` when no
        analyzed configuration is available (e.g. MSan only)."""
        picked = self._pick_config(config)
        if picked is None:
            return None
        if picked not in self._engines:
            self._engines[picked] = DemandEngine(
                self.results[picked].vfg,
                context_depth=self.context_depth,
                resolver=self.resolver,
            )
        return self._engines[picked]

    def _site_nodes(self, site: Site, config: Optional[str]) -> List[Node]:
        if isinstance(site, CheckSite):
            return [site.node] if site.node is not None else []
        if isinstance(site, int):
            picked = self._pick_config(config)
            if picked is None:
                return []
            return [
                s.node
                for s in self.results[picked].vfg.check_sites
                if s.instr_uid == site and s.node is not None
            ]
        return [site]

    def query(self, site: Site, config: Optional[str] = None) -> bool:
        """Γ at one check site, answered demand-driven: ``True`` iff
        every value used there is ⊤ (definitely defined).

        ``site`` may be a :class:`~repro.vfg.graph.CheckSite`, a VFG
        node, or an instruction uid (all critical operands at that
        instruction).  Sites with no analyzable node (constants, or no
        analyzed config) are trivially defined.
        """
        engine = self.engine(config)
        if engine is None:
            return True
        return all(
            engine.is_defined(node)
            for node in self._site_nodes(site, config)
        )

    def explain(
        self, site: Site, config: Optional[str] = None
    ) -> Optional[List[FlowStep]]:
        """How an undefined value reaches ``site``: the shortest
        realizable F-path, found by backward slicing (demand engine);
        ``None`` when the site is defined.

        The path search always uses k-limited call strings (the
        explanation semantics of :mod:`repro.vfg.explain`), even when
        the analysis resolver is ``"summary"``.
        """
        engine = self.engine(config)
        if engine is None:
            return None
        if engine.resolver != "callstring":
            picked = self._pick_config(config)
            key = f"{picked}/explain"
            if key not in self._engines:
                self._engines[key] = DemandEngine(
                    self.results[picked].vfg,
                    context_depth=max(self.context_depth, 1),
                )
            engine = self._engines[key]
        for node in self._site_nodes(site, config):
            steps = explain_undefined_demand(engine, self.module, node)
            if steps is not None:
                return steps
        return None

    def query_stats(self, config: Optional[str] = None) -> Optional[QueryStats]:
        """Accumulated :class:`QueryStats` of ``config``'s engine, or
        ``None`` if no query has forced an engine yet."""
        picked = self._pick_config(config)
        if picked is None or picked not in self._engines:
            return None
        return self._engines[picked].stats


class LazyAnalysis(Analysis):
    """The ``analyze(tier="lazy")`` result: a fully deferred
    :class:`Analysis`.

    Nothing beyond compilation runs at construction — optimization,
    pointer analysis (itself lazy-tier), VFG building and plan
    construction all wait inside a thunk.  The first attribute access
    (a ``query()``, a ``run()``, reading ``plans``) forces the eager
    pipeline once; every later access delegates to the forced result,
    so verdicts, plans and stats are bit-identical to the eager path.
    """

    def __init__(self, thunk: "Callable[[], Analysis]") -> None:
        # Deliberately not calling the dataclass __init__: this instance
        # holds only the thunk; every field lives on the forced inner
        # analysis and is reached through __getattr__ / the properties.
        self._thunk = thunk
        self._inner: Optional[Analysis] = None

    @property
    def forced(self) -> bool:
        """Whether the deferred pipeline has run yet."""
        return self._inner is not None

    def _force(self) -> Analysis:
        if self._inner is None:
            self._inner = self._thunk()
        return self._inner

    def __getattr__(self, name: str):
        if name in ("_thunk", "_inner"):
            raise AttributeError(name)
        return getattr(self._force(), name)

    def __repr__(self) -> str:
        # The dataclass __repr__ inherited from Analysis reads every
        # field and would force the whole deferred pipeline from a bare
        # ``repr()`` (or a REPL echo); report the deferral state instead.
        if self._inner is None:
            return "<LazyAnalysis (deferred; no attribute access yet)>"
        return (
            f"<LazyAnalysis forced over {len(self._inner.plans)} plan(s): "
            f"{', '.join(sorted(self._inner.plans))}>"
        )

    def __dir__(self):
        # Tab-completion must not run the pipeline either: the class
        # (and, once forced, the inner instance) already names every
        # reachable attribute without touching the thunk.
        names = set(dir(type(self)))
        names.update(self.__dict__)
        if self._inner is not None:
            names.update(dir(self._inner))
        return sorted(names)

    # Dataclass fields with plain defaults remain class attributes on
    # Analysis and would shadow __getattr__; route them to the inner
    # analysis explicitly.
    context_depth = property(lambda self: self._force().context_depth)
    resolver = property(lambda self: self._force().resolver)
    max_steps = property(
        lambda self: self._force().max_steps,
        lambda self, value: setattr(self._force(), "max_steps", value),
    )


def analyze(
    *,
    source: Optional[str] = None,
    module: Optional[Module] = None,
    name: str = "module",
    level: str = "O0+IM",
    configs: Optional[Sequence[str]] = None,
    heap_cloning: bool = True,
    context_depth: int = 1,
    semi_strong: bool = True,
    resolver: str = "callstring",
    demand: bool = False,
    use_reference_solver: bool = False,
    jobs: Optional[int] = None,
    tier: Optional[str] = None,
    options: Optional[AnalysisOptions] = None,
) -> Analysis:
    """Optimize, analyze and instrument a program under every config.

    Exactly one of ``source`` (TinyC text, compiled as ``name``) or
    ``module`` (an already-compiled IR module) must be given.  All
    arguments are keyword-only.

    ``options`` is the consolidated knob record
    (:class:`repro.options.AnalysisOptions`): any field set on it wins
    over the corresponding keyword argument below.  The individual
    keywords (``jobs=``, ``tier=``, ``demand=``, ``resolver=``,
    ``context_depth=``) remain as a deprecated one-release
    compatibility surface.

    ``demand=True`` resolves Γ demand-driven (backward slicing per
    node, :mod:`repro.vfg.demand`) in every configuration, including
    Opt II's re-resolution — bit-identical plans, different cost
    profile.  :meth:`Analysis.query` / :meth:`Analysis.explain` are
    demand-driven regardless of this flag.

    ``jobs`` is the single parallelism knob: with ``jobs > 1``,
    constraint generation is sharded across worker processes and
    (with ``demand=True``) batched definedness queries fan out too.
    ``None`` defers to the session default / the ``REPRO_JOBS``
    environment variable, with a workload-size floor below which the
    phase stays serial; 1 is strictly serial.  Every result is
    bit-identical regardless of ``jobs`` — it only buys wall-clock.

    ``tier`` picks the solving tier (``None`` defers to the session
    default / ``REPRO_TIER``): ``"full"`` solves eagerly, ``"unified"``
    runs the Steensgaard-style pre-collapse first, and ``"lazy"``
    defers the *entire* static pipeline — a :class:`LazyAnalysis` comes
    back immediately and the first query / attribute access forces it
    (``demand=True`` is implied so Γ itself resolves by backward
    slicing).  Results are bit-identical across tiers.
    """
    if (source is None) == (module is None):
        raise ValueError("pass exactly one of source= or module=")
    schedule: Optional[str] = None
    storage: Optional[str] = None
    if options is not None:
        resolved = options.or_keywords(
            jobs=jobs,
            tier=tier,
            demand=demand,
            resolver=resolver,
            context_depth=context_depth,
        )
        jobs = resolved["jobs"]
        tier = resolved["tier"]
        demand = resolved["demand"]
        resolver = resolved["resolver"]
        context_depth = resolved["context_depth"]
        schedule = options.schedule
        storage = options.storage
        if configs is None and options.config is not None:
            configs = [options.config]
    tier = resolve_tier(tier)
    if tier == "lazy":
        demand = True
    if module is None:
        with TRACE.span("parse", module=name):
            module = compile_source(source, name)

    def build() -> Analysis:
        with TRACE.span("analyze", level=level, tier=tier):
            with TRACE.span("opt_pipeline", level=level):
                run_pipeline(module, level)
            with TRACE.span("verify"):
                verify_module(module)
            prepared = prepare_module(
                module,
                heap_cloning=heap_cloning,
                use_reference_solver=use_reference_solver,
                jobs=jobs,
                tier=tier,
                schedule=schedule,
                storage=storage,
            )
            wanted = list(configs) if configs else list(CONFIG_ORDER)
            plans: Dict[str, InstrumentationPlan] = {}
            results: Dict[str, UsherResult] = {}
            base_configs = {
                "usher_tl": UsherConfig.tl(),
                "usher_tl_at": UsherConfig.tl_at(),
                "usher_opt1": UsherConfig.opt_i(),
                "usher": UsherConfig.full(),
                "usher_ext": UsherConfig.extended(),
            }
            for config_name in wanted:
                if config_name == "msan":
                    with TRACE.span("config", config="msan"):
                        plans[config_name] = run_msan(prepared)
                    continue
                config = replace(
                    base_configs[config_name],
                    semi_strong=semi_strong,
                    context_depth=context_depth,
                    resolver=resolver,
                    demand=demand,
                    jobs=jobs,
                )
                with TRACE.span("config", config=config_name):
                    result = run_usher(prepared, config)
                results[config_name] = result
                plans[config_name] = result.plan
        return Analysis(
            module,
            prepared,
            plans,
            results,
            level,
            context_depth=context_depth,
            resolver=resolver,
        )

    if tier == "lazy":
        return LazyAnalysis(build)
    return build()
