"""High-level convenience API tying the whole pipeline together.

    from repro.api import analyze_source

    analysis = analyze_source(source, level="O0+IM")
    report = analysis.run("usher")
    print(report.warnings, analysis.slowdown("usher"))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.core import (
    InstrumentationPlan,
    PreparedModule,
    UsherConfig,
    UsherResult,
    prepare_module,
    run_msan,
    run_usher,
)
from repro.opt import run_pipeline
from repro.runtime import (
    DEFAULT_COST_MODEL,
    CostModel,
    ExecutionReport,
    run_instrumented,
    run_native,
)
from repro.tinyc import compile_source

#: The analysis configurations of §4.5, in presentation order.
CONFIG_ORDER = ("msan", "usher_tl", "usher_tl_at", "usher_opt1", "usher")

#: CONFIG_ORDER plus the beyond-paper extension configuration.
EXTENDED_CONFIG_ORDER = CONFIG_ORDER + ("usher_ext",)


@dataclass
class Analysis:
    """A fully analyzed program: plans for MSan and all Usher configs."""

    module: Module
    prepared: PreparedModule
    plans: Dict[str, InstrumentationPlan]
    results: Dict[str, UsherResult]
    level: str
    _runs: Dict[str, ExecutionReport] = field(default_factory=dict)
    _native: Optional[ExecutionReport] = None
    max_steps: int = 50_000_000

    def run_native(self) -> ExecutionReport:
        if self._native is None:
            self._native = run_native(self.module, max_steps=self.max_steps)
        return self._native

    def run(self, config: str) -> ExecutionReport:
        """Execute under the named configuration's instrumentation."""
        if config not in self._runs:
            self._runs[config] = run_instrumented(
                self.module, self.plans[config], max_steps=self.max_steps
            )
        return self._runs[config]

    def slowdown(self, config: str, model: CostModel = DEFAULT_COST_MODEL) -> float:
        return model.slowdown_percent(self.run(config))

    def static_propagations(self, config: str) -> int:
        return self.plans[config].count_propagations()

    def static_checks(self, config: str) -> int:
        return self.plans[config].count_checks()


def analyze_module(
    module: Module,
    level: str = "O0+IM",
    configs: Optional[List[str]] = None,
    heap_cloning: bool = True,
    context_depth: int = 1,
    semi_strong: bool = True,
    resolver: str = "callstring",
) -> Analysis:
    """Optimize, analyze and instrument ``module`` under every config."""
    run_pipeline(module, level)
    verify_module(module)
    prepared = prepare_module(module, heap_cloning=heap_cloning)
    wanted = configs or list(CONFIG_ORDER)
    plans: Dict[str, InstrumentationPlan] = {}
    results: Dict[str, UsherResult] = {}
    base_configs = {
        "usher_tl": UsherConfig.tl(),
        "usher_tl_at": UsherConfig.tl_at(),
        "usher_opt1": UsherConfig.opt_i(),
        "usher": UsherConfig.full(),
        "usher_ext": UsherConfig.extended(),
    }
    for name in wanted:
        if name == "msan":
            plans[name] = run_msan(prepared)
            continue
        from dataclasses import replace as _replace

        config = _replace(
            base_configs[name],
            semi_strong=semi_strong,
            context_depth=context_depth,
            resolver=resolver,
        )
        result = run_usher(prepared, config)
        results[name] = result
        plans[name] = result.plan
    return Analysis(module, prepared, plans, results, level)


def analyze_source(
    source: str,
    name: str = "module",
    level: str = "O0+IM",
    configs: Optional[List[str]] = None,
    **kwargs,
) -> Analysis:
    """Compile TinyC source and run :func:`analyze_module`."""
    module = compile_source(source, name)
    return analyze_module(module, level=level, configs=configs, **kwargs)
