"""``repro serve``: a localhost HTTP/JSON front end over sessions.

Single-threaded on purpose — sessions are stateful and not
thread-safe; one request at a time is the concurrency model.  The
parallelism lives *inside* a session (its resident worker pool).

Routes (all POST bodies and responses are JSON):

* ``POST /open`` — ``{"source": ...}`` (TinyC) or ``{"ir": ...}``,
  optional ``"name"`` and ``"options"`` (an
  :meth:`repro.options.AnalysisOptions.as_dict` mapping).  Sessions are
  cached per content digest: re-opening the same text under the same
  options returns the resident session.
* ``POST /update`` — ``{"digest", "function", "body"}`` → incremental
  re-analysis stats.
* ``POST /query_sites`` — ``{"digest", "uids"?, "jobs"?}`` → verdicts.
* ``POST /explain`` — ``{"digest", "uid"}`` → rendered flow steps.
* ``POST /stats`` / ``GET /ping`` — introspection.
* ``GET /metrics`` — Prometheus text exposition (request counts and
  latency histograms per route, session count, last-update dirty
  fraction and memo-carryover counters per session, resident-pool
  worker health).

Client errors answer ``400`` (malformed input) or ``404`` (unknown
digest — :class:`UnknownDigestError` — or unknown route) with
``{"error": "<one line>"}``.  The 404 contract is uniform: *every*
digest-taking route (``/update``, ``/query_sites``, ``/explain``,
``/stats``) answers the same one-line 404 on an unknown digest, and
nothing else maps to 404; a known digest with bad arguments (an
unknown function name, a missing field) is always a 400.
"""

from __future__ import annotations

import hashlib
import json
import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Dict, Optional
from urllib.error import HTTPError
from urllib.request import Request, urlopen

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACE
from repro.options import AnalysisOptions
from repro.service.session import AnalysisSession

__all__ = [
    "ReproServer",
    "ServiceClient",
    "ServiceError",
    "UnknownDigestError",
    "serve",
]


class UnknownDigestError(LookupError):
    """The only condition (besides an unknown route) that answers 404."""


class ServiceError(RuntimeError):
    """A server-reported error, re-raised client-side."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"{status}: {message}")
        self.status = status
        self.message = message


def _digest(kind: str, name: str, text: str, options: Dict) -> str:
    payload = json.dumps(
        [kind, name, text, options], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ReproServer(HTTPServer):
    """The session registry behind the handler."""

    def __init__(self, address, options: Optional[AnalysisOptions] = None):
        super().__init__(address, _Handler)
        self.sessions: Dict[str, AnalysisSession] = {}
        self.default_options = (
            options if options is not None else AnalysisOptions()
        )
        self.metrics = MetricsRegistry()
        self.requests_total = self.metrics.counter(
            "repro_requests_total",
            "Requests served, by route and HTTP status.",
            labels=("route", "status"),
        )
        self.request_seconds = self.metrics.histogram(
            "repro_request_seconds",
            "Request handling latency in seconds, by route.",
            labels=("route",),
        )
        self.metrics.gauge(
            "repro_sessions", "Resident analysis sessions."
        ).set_function(lambda: len(self.sessions))
        self._dirty_fraction = self.metrics.gauge(
            "repro_session_dirty_fraction",
            "Dirty VFG-node fraction of each session's last update.",
            labels=("digest",),
        )
        self._memos_carried = self.metrics.counter(
            "repro_session_memos_carried_total",
            "Demand-engine memo entries carried across updates.",
            labels=("digest",),
        )
        self._memos_dropped = self.metrics.counter(
            "repro_session_memos_dropped_total",
            "Demand-engine memo entries dropped across updates.",
            labels=("digest",),
        )
        self._pool_workers = self.metrics.gauge(
            "repro_pool_workers",
            "Resident-pool worker processes, by session and liveness.",
            labels=("digest", "state"),
        )

    def observe_request(
        self, route: str, status: int, started: float
    ) -> None:
        self.requests_total.inc(route=route, status=str(status))
        self.request_seconds.observe(
            time.perf_counter() - started, route=route
        )

    def note_update(self, digest: str, stats) -> None:
        """Fold one update's figures into the per-session gauges."""
        self._dirty_fraction.set(stats.dirty_fraction, digest=digest)
        self._memos_carried.inc(stats.memos_carried, digest=digest)
        self._memos_dropped.inc(stats.memos_dropped, digest=digest)

    def render_metrics(self) -> str:
        """The ``/metrics`` payload: refresh scrape-time gauges from
        the live sessions, then render the exposition text."""
        for digest, session in self.sessions.items():
            update = session.last_update
            if update is not None:
                self._dirty_fraction.set(
                    update.dirty_fraction, digest=digest
                )
            pool = getattr(session, "_query_pool", None)
            alive, started = (
                pool.worker_health() if pool is not None else (0, 0)
            )
            self._pool_workers.set(alive, digest=digest, state="alive")
            self._pool_workers.set(
                started - alive, digest=digest, state="dead"
            )
        return self.metrics.render()

    def close_sessions(self) -> None:
        for session in self.sessions.values():
            session.close()
        self.sessions.clear()

    def server_close(self) -> None:
        self.close_sessions()
        super().server_close()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:  # keep stdout for the CLI
        pass

    # -- plumbing --------------------------------------------------------
    def _reply(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _session(self, data: Dict) -> AnalysisSession:
        digest = data.get("digest")
        session = self.server.sessions.get(digest)
        if session is None:
            raise UnknownDigestError(f"unknown session digest {digest!r}")
        return session

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:
        started = time.perf_counter()
        if self.path == "/ping":
            self._reply(
                200, {"ok": True, "sessions": sorted(self.server.sessions)}
            )
            status = 200
        elif self.path == "/metrics":
            self._reply_text(200, self.server.render_metrics())
            status = 200
        else:
            self._reply(404, {"error": f"unknown route {self.path}"})
            status = 404
        self.server.observe_request(self.path, status, started)

    def do_POST(self) -> None:
        started = time.perf_counter()
        status = 200
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            data = json.loads(raw.decode("utf-8"))
            if not isinstance(data, dict):
                raise ValueError("request body must be a JSON object")
            route = getattr(self, "_route" + self.path.replace("/", "_"), None)
            if route is None:
                status = 404
                self._reply(404, {"error": f"unknown route {self.path}"})
                return
            with TRACE.span("serve.request", route=self.path):
                payload = route(data)
            self._reply(200, payload)
        except UnknownDigestError as exc:
            status = 404
            self._reply(404, {"error": _one_line(exc)})
        except Exception as exc:
            status = 400
            self._reply(400, {"error": _one_line(exc)})
        finally:
            self.server.observe_request(self.path, status, started)

    def _route_open(self, data: Dict) -> Dict:
        source = data.get("source")
        ir = data.get("ir")
        if (source is None) == (ir is None):
            raise ValueError("open needs exactly one of 'source' or 'ir'")
        name = data.get("name", "module")
        raw_options = data.get("options") or {}
        options = self.server.default_options.merged(
            **AnalysisOptions.from_dict(raw_options).as_dict()
        )
        kind = "source" if source is not None else "ir"
        digest = _digest(kind, name, source or ir, options.as_dict())
        session = self.server.sessions.get(digest)
        cached = session is not None
        if session is None:
            if source is not None:
                session = AnalysisSession.from_source(
                    source, name=name, options=options
                )
            else:
                session = AnalysisSession.from_ir(
                    ir, name=name, options=options
                )
            self.server.sessions[digest] = session
        return {
            "digest": digest,
            "cached": cached,
            "generation": session.generation,
            "functions": session.function_names(),
            "check_sites": len(session.vfg.check_sites),
        }

    def _route_update(self, data: Dict) -> Dict:
        session = self._session(data)
        function = data.get("function")
        body = data.get("body")
        if not function or body is None:
            raise ValueError("update needs 'function' and 'body'")
        try:
            stats = session.update(function, body)
        except KeyError as exc:
            # An unknown *function* on a known digest is malformed
            # input (400), not a missing resource (404).
            raise ValueError(_one_line(exc)) from None
        self.server.note_update(data.get("digest"), stats)
        return stats.as_dict()

    def _route_query_sites(self, data: Dict) -> Dict:
        session = self._session(data)
        uids = data.get("uids")
        jobs = data.get("jobs")
        verdicts = session.query_sites(uids=uids, jobs=jobs)
        return {
            "verdicts": {str(uid): ok for uid, ok in sorted(verdicts.items())}
        }

    def _route_explain(self, data: Dict) -> Dict:
        session = self._session(data)
        uid = data.get("uid")
        if uid is None:
            raise ValueError("explain needs 'uid'")
        steps = session.explain(int(uid))
        return {
            "steps": None
            if steps is None
            else [step.render() for step in steps]
        }

    def _route_stats(self, data: Dict) -> Dict:
        return self._session(data).stats()


def _one_line(exc: Exception) -> str:
    text = str(exc) or type(exc).__name__
    return " ".join(text.split())


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    options: Optional[AnalysisOptions] = None,
) -> ReproServer:
    """Bind the service (``port=0`` picks a free port); the caller runs
    ``server.serve_forever()``."""
    return ReproServer((host, port), options=options)


class ServiceClient:
    """A minimal stdlib client for the serve endpoint."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _call(self, route: str, payload: Optional[Dict] = None) -> Dict:
        url = self.base_url + route
        if payload is None:
            request = Request(url)
        else:
            request = Request(
                url,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:
                message = exc.reason
            raise ServiceError(exc.code, message) from None

    def ping(self) -> Dict:
        return self._call("/ping")

    def metrics(self) -> str:
        """The raw Prometheus text from ``GET /metrics`` (parse with
        :func:`repro.obs.metrics.parse_prometheus_text`)."""
        request = Request(self.base_url + "/metrics")
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except HTTPError as exc:
            raise ServiceError(exc.code, exc.reason) from None

    def open(
        self,
        source: Optional[str] = None,
        ir: Optional[str] = None,
        name: str = "module",
        options: Optional[Dict] = None,
    ) -> Dict:
        payload: Dict = {"name": name}
        if source is not None:
            payload["source"] = source
        if ir is not None:
            payload["ir"] = ir
        if options:
            payload["options"] = options
        return self._call("/open", payload)

    def update(self, digest: str, function: str, body: str) -> Dict:
        return self._call(
            "/update", {"digest": digest, "function": function, "body": body}
        )

    def query_sites(
        self,
        digest: str,
        uids: Optional[list] = None,
        jobs: Optional[int] = None,
    ) -> Dict[int, bool]:
        payload: Dict = {"digest": digest}
        if uids is not None:
            payload["uids"] = list(uids)
        if jobs is not None:
            payload["jobs"] = jobs
        raw = self._call("/query_sites", payload)["verdicts"]
        return {int(uid): ok for uid, ok in raw.items()}

    def explain(self, digest: str, uid: int) -> Optional[list]:
        return self._call("/explain", {"digest": digest, "uid": uid})["steps"]

    def stats(self, digest: str) -> Dict:
        return self._call("/stats", {"digest": digest})
