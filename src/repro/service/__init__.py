"""Resident analysis service: long-lived sessions, incremental
re-analysis, a persistent worker pool and the ``repro serve`` front end.

The one-shot pipeline (:func:`repro.api.analyze`) re-runs every phase
from scratch on each call.  This package keeps the analysis *resident*:

* :class:`repro.service.session.AnalysisSession` — parsed module,
  points-to solver state, VFG and demand memos held across edits;
  :meth:`~repro.service.session.AnalysisSession.update` re-analyzes one
  function incrementally (cached constraint tapes, warm-started solver,
  closure-tracked memo carryover) with results bit-identical to a cold
  :func:`~repro.api.analyze`.
* :class:`repro.service.pool.ResidentPool` — fork-once worker processes
  reused across query batches and analyses, shipping constraint tapes
  through shared-memory flat arrays instead of per-call fork+pickle.
* :func:`repro.service.server.serve` — the localhost HTTP/JSON server
  behind ``repro serve`` (``open`` / ``update`` / ``query_sites`` /
  ``explain`` / ``stats``), with sessions cached per source digest.
"""

from repro.service.session import AnalysisSession, UpdateStats, plan_signature
from repro.service.pool import FlatTape, ResidentPool
from repro.service.server import ServiceClient, serve

__all__ = [
    "AnalysisSession",
    "FlatTape",
    "ResidentPool",
    "ServiceClient",
    "UpdateStats",
    "plan_signature",
    "serve",
]
