"""Persistent fork workers with shared-memory constraint tapes.

The one-shot parallel paths fork a fresh pool per call and pickle every
result back, which is why ``query_sites(jobs=4)`` *loses* to serial on
small batches (see ``parallel_batch16`` in
``benchmarks/results/query_stats.jsonl``).  A :class:`ResidentPool`
pays the fork exactly once per session generation:

* Workers inherit their snapshot (a demand engine and/or a module)
  through the ``fork`` — nothing is pickled on the way out, and each
  worker keeps its own growing memo table across query batches.
* Answers come back tiny: ``{instr_uid: bool}`` per query stripe.
* Constraint tapes come back through ``multiprocessing.shared_memory``
  as flat ``int64`` arrays (:class:`FlatTape`) — the op stream is
  already interned integers, so the parent attaches, copies, unlinks,
  and never pickles an op list.  Symbol tables and generation
  side-tables are small and travel over the pipe.

Workers are ``fork``-context daemons talking over pipes; any worker
failure degrades to the serial path (the pool returns ``None`` and
shuts itself down) — results never depend on the pool.
"""

from __future__ import annotations

import pickle
from array import array
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.bitsets import Int64Arena
from repro.analysis.shardgen import decode_words, encode_ops
from repro.obs.trace import TRACE

__all__ = ["FlatTape", "ResidentPool", "discard_ops_payload"]

#: Snapshot handed to workers through the fork (set only around
#: ``Process.start``; never pickled).
_POOL_SNAPSHOT: Optional[tuple] = None


class FlatTape:
    """A shard op tape as one flat ``int64`` arena.

    The encoding is :mod:`repro.analysis.shardgen`'s word format
    (``PTS/COPY/LOAD/STORE`` → ``[tag, a, b]``; ``GEP`` → ``[tag,
    base, dst, offset]`` with ``None`` as ``GEP_NONE``; ``ICALL`` →
    ``[tag, callee, call_uid, nargs, arg..., dst]``) — the *same*
    buffer the streaming shard collector appends to, so shipping a
    tape is a raw byte copy with no encode step.  ``decode`` validates
    as it walks and raises :class:`ValueError` on a truncated buffer.

    Instances wrap an :class:`~repro.analysis.bitsets.Int64Arena` and
    add the zero-copy transport protocol: :meth:`to_shared_memory`
    publishes, :meth:`attach` maps an existing segment without
    copying, :meth:`pin` localizes with a single copy and releases the
    segment.
    """

    __slots__ = ("arena",)

    def __init__(self, words=None) -> None:
        if isinstance(words, Int64Arena):
            self.arena = words
        else:
            self.arena = Int64Arena(words)

    @property
    def words(self):
        return self.arena.words

    def __len__(self) -> int:
        return len(self.arena)

    def iter_ops(self):
        """Decode op by op (validating; no list materialized)."""
        from repro.analysis.shardgen import iter_ops

        return iter_ops(self.arena.words)

    # -- encoding (compatibility staticmethods) -------------------------
    @staticmethod
    def encode(ops: Sequence[tuple]) -> "array":
        return encode_ops(ops)

    @staticmethod
    def decode(words: Sequence[int]) -> List[tuple]:
        return decode_words(words)

    # -- transport ------------------------------------------------------
    @classmethod
    def from_ops(cls, ops: Sequence[tuple]) -> "FlatTape":
        return cls(encode_ops(ops))

    def to_shared_memory(self) -> Tuple[str, int]:
        """Publish the arena; returns ``(name, nwords)``.  Ownership of
        the segment transfers to the receiver (see
        :meth:`Int64Arena.to_shared_memory`)."""
        return self.arena.to_shared_memory()

    @classmethod
    def attach(cls, name: str, nwords: int) -> "FlatTape":
        """Map a published tape zero-copy; :meth:`pin` to localize."""
        return cls(Int64Arena.attach(name, nwords))

    def pin(self) -> "FlatTape":
        self.arena.pin()
        return self

    def close(self) -> None:
        self.arena.close()


def _ship_words(words) -> tuple:
    """Ship a word arena over the pipe: shared-memory when available
    (``("shm", name, nwords)``), else inline (``("ops", words)``)."""
    try:
        return ("shm",) + FlatTape(words).to_shared_memory()
    except Exception:
        return ("ops", array("q", words))


def _receive_words(payload) -> "array":
    """The parent-side inverse of :func:`_ship_words`: one bulk copy
    out of the segment, then unlink."""
    kind = payload[0]
    if kind == "shm":
        _, name, nwords = payload
        return FlatTape.attach(name, nwords).pin().arena.words
    return payload[1]


def discard_ops_payload(payload) -> None:
    """Release a shipped-but-unconsumed tape payload.

    Shipped segments are unregistered from the resource tracker
    (ownership transfers to the consumer), so a payload that is
    received but never passed to :func:`_receive_words` — a worker
    died mid-batch, or the batch failed partway — would leak its
    segment until reboot.  The degrade-to-serial path calls this on
    everything it scavenges.
    """
    if not (isinstance(payload, tuple) and payload and payload[0] == "shm"):
        return
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=payload[1])
    except FileNotFoundError:
        return
    except Exception:
        return
    # The attach registered the segment with this process's resource
    # tracker; unlink() unregisters it again, so the two balance.
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def _worker_main(conn) -> None:
    engine, module = _POOL_SNAPSHOT
    if TRACE.enabled:
        # Drop the fork-copied parent events; every reply ships only
        # the spans this worker recorded for its own batch.
        TRACE.clear()
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if command == "stop":
                break
            if command == "query":
                verdicts: Dict[int, bool] = {}
                with TRACE.span("pool.query", sites=len(payload)):
                    sites = engine.vfg.check_sites
                    for index in payload:
                        site = sites[index]
                        ok = engine.is_defined(site.node)
                        verdicts[site.instr_uid] = (
                            verdicts.get(site.instr_uid, True) and ok
                        )
                spans = TRACE.export_spans() if TRACE.enabled else []
                conn.send(("ok", verdicts, spans))
            elif command == "tape":
                from repro.analysis import shardgen

                names, wrappers, recursive = payload
                out = []
                with TRACE.span("pool.tapes", functions=len(names)):
                    for name in names:
                        shard = shardgen._collector_class()(
                            module, frozenset(wrappers), set(recursive), [name]
                        ).result_shard
                        out.append(
                            (
                                name,
                                _ship_words(shard.words),
                                pickle.dumps(
                                    (
                                        shard.syms,
                                        shard.call_targets,
                                        shard.clone_base,
                                        shard.instantiated,
                                        shard.alloc_objects,
                                    ),
                                    protocol=pickle.HIGHEST_PROTOCOL,
                                ),
                            )
                        )
                spans = TRACE.export_spans() if TRACE.enabled else []
                conn.send(("ok", out, spans))
            else:
                conn.send(("err", f"unknown command {command!r}", []))
        except Exception as exc:  # ship the failure, keep serving
            try:
                conn.send(("err", repr(exc), []))
            except (OSError, BrokenPipeError):
                break
    conn.close()


class ResidentPool:
    """``jobs`` long-lived fork workers over a shared snapshot.

    Construct with the state workers should inherit (``engine`` for
    query batches, ``module`` for tape collection — either or both),
    then :meth:`start` once; every later batch reuses the same
    processes.  All batch methods return ``None`` on any worker
    failure, after shutting the pool down, so callers fall back to
    their serial path.
    """

    def __init__(self, jobs: int, engine=None, module=None) -> None:
        self.jobs = max(1, int(jobs))
        self.engine = engine
        self.module = module
        self._pipes: List = []
        self._procs: List = []
        self.started = False

    def start(self) -> None:
        from multiprocessing import get_context

        global _POOL_SNAPSHOT
        ctx = get_context("fork")
        _POOL_SNAPSHOT = (self.engine, self.module)
        try:
            for _ in range(self.jobs):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                self._pipes.append(parent_conn)
                self._procs.append(proc)
        finally:
            _POOL_SNAPSHOT = None
        self.started = True

    # -- batches ---------------------------------------------------------
    def query_sites(
        self, indices: Sequence[int]
    ) -> Optional[Dict[int, bool]]:
        """AND-folded definedness verdicts for check sites given by
        index into the snapshot engine's ``vfg.check_sites``."""
        stripes = [list(indices[offset :: self.jobs]) for offset in range(self.jobs)]
        try:
            live = []
            for pipe, stripe in zip(self._pipes, stripes):
                if stripe:
                    pipe.send(("query", stripe))
                    live.append(pipe)
            verdicts: Dict[int, bool] = {}
            for pipe in live:
                status, payload, spans = pipe.recv()
                if status != "ok":
                    raise RuntimeError(payload)
                if TRACE.enabled and spans:
                    TRACE.adopt(spans)
                for uid, ok in payload.items():
                    verdicts[uid] = verdicts.get(uid, True) and ok
            return verdicts
        except Exception:
            self.shutdown()
            return None

    def collect_tapes(
        self,
        names: Sequence[str],
        wrappers: FrozenSet[str],
        recursive: Set[str],
    ) -> Optional[Dict[str, object]]:
        """Constraint tapes for ``names``, collected on the snapshot
        module, keyed by function name."""
        from repro.analysis.shardgen import ShardResult

        stripes = [list(names[offset :: self.jobs]) for offset in range(self.jobs)]
        pending: List = []  # payload lists received but not yet consumed
        live: List = []  # pipes with an outstanding tape batch
        try:
            for pipe, stripe in zip(self._pipes, stripes):
                if stripe:
                    pipe.send(("tape", (stripe, set(wrappers), set(recursive))))
                    live.append(pipe)
            shards: Dict[str, object] = {}
            while live:
                pipe = live.pop()
                status, payload, spans = pipe.recv()
                if status != "ok":
                    raise RuntimeError(payload)
                if TRACE.enabled and spans:
                    TRACE.adopt(spans)
                pending.append(payload)
                for name, ops_payload, rest in payload:
                    syms, call_targets, clone_base, instantiated, allocs = (
                        pickle.loads(rest)
                    )
                    shards[name] = ShardResult(
                        syms=syms,
                        words=_receive_words(ops_payload),
                        call_targets=call_targets,
                        clone_base=clone_base,
                        instantiated=instantiated,
                        alloc_objects=allocs,
                    )
                pending.pop()
            return shards
        except Exception:
            # Degrade to serial — but first scavenge every tape segment
            # that was shipped and will now never be consumed, or the
            # shm files outlive the process (workers unregistered them
            # from the resource tracker when shipping).  Three places a
            # payload can be stranded: the batch that failed partway
            # (``pending``), replies still queued on live pipes, and
            # replies a dead worker flushed before exiting.
            for payload in pending:
                for _name, ops_payload, _rest in payload:
                    discard_ops_payload(ops_payload)
            for pipe in live:
                try:
                    while pipe.poll(0.2):
                        status, payload, _spans = pipe.recv()
                        if status == "ok":
                            for _name, ops_payload, _rest in payload:
                                discard_ops_payload(ops_payload)
                except (EOFError, OSError):
                    continue
            self.shutdown()
            return None

    def worker_health(self) -> Tuple[int, int]:
        """``(alive, started)`` worker process counts — the
        ``/metrics`` resident-pool health figures."""
        alive = sum(1 for proc in self._procs if proc.is_alive())
        return alive, len(self._procs)

    # -- lifecycle -------------------------------------------------------
    def shutdown(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(("stop", None))
            except (OSError, BrokenPipeError):
                pass
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=2)
            if proc.is_alive():
                proc.terminate()
        self._pipes = []
        self._procs = []
        self.started = False

    def __enter__(self) -> "ResidentPool":
        if not self.started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:
        try:
            if self.started:
                self.shutdown()
        except Exception:
            pass
