"""Persistent fork workers with shared-memory constraint tapes.

The one-shot parallel paths fork a fresh pool per call and pickle every
result back, which is why ``query_sites(jobs=4)`` *loses* to serial on
small batches (see ``parallel_batch16`` in
``benchmarks/results/query_stats.jsonl``).  A :class:`ResidentPool`
pays the fork exactly once per session generation:

* Workers inherit their snapshot (a demand engine and/or a module)
  through the ``fork`` — nothing is pickled on the way out, and each
  worker keeps its own growing memo table across query batches.
* Answers come back tiny: ``{instr_uid: bool}`` per query stripe.
* Constraint tapes come back through ``multiprocessing.shared_memory``
  as flat ``int64`` arrays (:class:`FlatTape`) — the op stream is
  already interned integers, so the parent attaches, copies, unlinks,
  and never pickles an op list.  Symbol tables and generation
  side-tables are small and travel over the pipe.

Workers are ``fork``-context daemons talking over pipes; any worker
failure degrades to the serial path (the pool returns ``None`` and
shuts itself down) — results never depend on the pool.
"""

from __future__ import annotations

import pickle
from array import array
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.andersen import OP_GEP, OP_ICALL

__all__ = ["FlatTape", "ResidentPool"]

#: ``None`` GEP-offset sentinel — far outside any field index.
_GEP_NONE = -(2**62)

#: Snapshot handed to workers through the fork (set only around
#: ``Process.start``; never pickled).
_POOL_SNAPSHOT: Optional[tuple] = None


class FlatTape:
    """A shard op tape as one flat ``int64`` array.

    Encoding per op (all values shard-local symbol ids unless noted):
    ``PTS/COPY/LOAD/STORE`` → ``[tag, a, b]``; ``GEP`` → ``[tag, dst,
    base, offset]`` (``None`` offset as :data:`_GEP_NONE`); ``ICALL`` →
    ``[tag, callee, call_uid, nargs, arg...,  dst]`` (``-1`` encodes a
    missing arg/dst).  The format round-trips exactly — ``decode`` is
    the inverse of ``encode`` — and backs the shared-memory transport.
    """

    @staticmethod
    def encode(ops: Sequence[tuple]) -> "array":
        words = array("q")
        for op in ops:
            tag = op[0]
            if tag == OP_ICALL:
                args = op[3]
                words.append(tag)
                words.append(op[1])
                words.append(op[2])
                words.append(len(args))
                words.extend(args)
                words.append(op[4])
            elif tag == OP_GEP:
                words.append(tag)
                words.append(op[1])
                words.append(op[2])
                words.append(_GEP_NONE if op[3] is None else op[3])
            else:
                words.append(tag)
                words.append(op[1])
                words.append(op[2])
        return words

    @staticmethod
    def decode(words: Sequence[int]) -> List[tuple]:
        ops: List[tuple] = []
        i = 0
        n = len(words)
        while i < n:
            tag = words[i]
            if tag == OP_ICALL:
                nargs = words[i + 3]
                args = tuple(words[i + 4 : i + 4 + nargs])
                ops.append(
                    (tag, words[i + 1], words[i + 2], args, words[i + 4 + nargs])
                )
                i += 5 + nargs
            elif tag == OP_GEP:
                offset = words[i + 3]
                ops.append(
                    (
                        tag,
                        words[i + 1],
                        words[i + 2],
                        None if offset == _GEP_NONE else offset,
                    )
                )
                i += 4
            else:
                ops.append((tag, words[i + 1], words[i + 2]))
                i += 3
        return ops


def _ship_ops(ops: Sequence[tuple]):
    """Encode an op tape for the pipe: shared-memory when available
    (``("shm", name, nwords)``), else inline (``("ops", words)``)."""
    words = FlatTape.encode(ops)
    try:
        from multiprocessing import resource_tracker, shared_memory

        shm = shared_memory.SharedMemory(
            create=True, size=max(1, len(words) * words.itemsize)
        )
        shm.buf[: len(words) * words.itemsize] = words.tobytes()
        name = shm.name
        # The worker must not unlink the segment at exit — the parent
        # owns its lifetime (attach, copy, close, unlink).
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        shm.close()
        return ("shm", name, len(words))
    except Exception:
        return ("ops", words)


def _receive_ops(payload) -> List[tuple]:
    kind = payload[0]
    if kind == "shm":
        from multiprocessing import shared_memory

        _, name, nwords = payload
        shm = shared_memory.SharedMemory(name=name)
        try:
            words = array("q")
            words.frombytes(bytes(shm.buf[: nwords * words.itemsize]))
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        return FlatTape.decode(words)
    return FlatTape.decode(payload[1])


def _worker_main(conn) -> None:
    engine, module = _POOL_SNAPSHOT
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if command == "stop":
                break
            if command == "query":
                sites = engine.vfg.check_sites
                verdicts: Dict[int, bool] = {}
                for index in payload:
                    site = sites[index]
                    ok = engine.is_defined(site.node)
                    verdicts[site.instr_uid] = (
                        verdicts.get(site.instr_uid, True) and ok
                    )
                conn.send(("ok", verdicts))
            elif command == "tape":
                from repro.analysis import shardgen

                names, wrappers, recursive = payload
                out = []
                for name in names:
                    shard = shardgen._collector_class()(
                        module, frozenset(wrappers), set(recursive), [name]
                    ).result_shard
                    out.append(
                        (
                            name,
                            _ship_ops(shard.ops),
                            pickle.dumps(
                                (
                                    shard.syms,
                                    shard.call_targets,
                                    shard.clone_base,
                                    shard.instantiated,
                                    shard.alloc_objects,
                                ),
                                protocol=pickle.HIGHEST_PROTOCOL,
                            ),
                        )
                    )
                conn.send(("ok", out))
            else:
                conn.send(("err", f"unknown command {command!r}"))
        except Exception as exc:  # ship the failure, keep serving
            try:
                conn.send(("err", repr(exc)))
            except (OSError, BrokenPipeError):
                break
    conn.close()


class ResidentPool:
    """``jobs`` long-lived fork workers over a shared snapshot.

    Construct with the state workers should inherit (``engine`` for
    query batches, ``module`` for tape collection — either or both),
    then :meth:`start` once; every later batch reuses the same
    processes.  All batch methods return ``None`` on any worker
    failure, after shutting the pool down, so callers fall back to
    their serial path.
    """

    def __init__(self, jobs: int, engine=None, module=None) -> None:
        self.jobs = max(1, int(jobs))
        self.engine = engine
        self.module = module
        self._pipes: List = []
        self._procs: List = []
        self.started = False

    def start(self) -> None:
        from multiprocessing import get_context

        global _POOL_SNAPSHOT
        ctx = get_context("fork")
        _POOL_SNAPSHOT = (self.engine, self.module)
        try:
            for _ in range(self.jobs):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                self._pipes.append(parent_conn)
                self._procs.append(proc)
        finally:
            _POOL_SNAPSHOT = None
        self.started = True

    # -- batches ---------------------------------------------------------
    def query_sites(
        self, indices: Sequence[int]
    ) -> Optional[Dict[int, bool]]:
        """AND-folded definedness verdicts for check sites given by
        index into the snapshot engine's ``vfg.check_sites``."""
        stripes = [list(indices[offset :: self.jobs]) for offset in range(self.jobs)]
        try:
            live = []
            for pipe, stripe in zip(self._pipes, stripes):
                if stripe:
                    pipe.send(("query", stripe))
                    live.append(pipe)
            verdicts: Dict[int, bool] = {}
            for pipe in live:
                status, payload = pipe.recv()
                if status != "ok":
                    raise RuntimeError(payload)
                for uid, ok in payload.items():
                    verdicts[uid] = verdicts.get(uid, True) and ok
            return verdicts
        except Exception:
            self.shutdown()
            return None

    def collect_tapes(
        self,
        names: Sequence[str],
        wrappers: FrozenSet[str],
        recursive: Set[str],
    ) -> Optional[Dict[str, object]]:
        """Constraint tapes for ``names``, collected on the snapshot
        module, keyed by function name."""
        from repro.analysis.shardgen import ShardResult

        stripes = [list(names[offset :: self.jobs]) for offset in range(self.jobs)]
        try:
            live = []
            for pipe, stripe in zip(self._pipes, stripes):
                if stripe:
                    pipe.send(("tape", (stripe, set(wrappers), set(recursive))))
                    live.append(pipe)
            shards: Dict[str, object] = {}
            for pipe in live:
                status, payload = pipe.recv()
                if status != "ok":
                    raise RuntimeError(payload)
                for name, ops_payload, rest in payload:
                    syms, call_targets, clone_base, instantiated, allocs = (
                        pickle.loads(rest)
                    )
                    shards[name] = ShardResult(
                        syms=syms,
                        ops=_receive_ops(ops_payload),
                        call_targets=call_targets,
                        clone_base=clone_base,
                        instantiated=instantiated,
                        alloc_objects=allocs,
                    )
            return shards
        except Exception:
            self.shutdown()
            return None

    # -- lifecycle -------------------------------------------------------
    def shutdown(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(("stop", None))
            except (OSError, BrokenPipeError):
                pass
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=2)
            if proc.is_alive():
                proc.terminate()
        self._pipes = []
        self._procs = []
        self.started = False

    def __enter__(self) -> "ResidentPool":
        if not self.started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:
        try:
            if self.started:
                self.shutdown()
        except Exception:
            pass
