"""Resident analysis sessions with incremental re-analysis.

An :class:`AnalysisSession` holds everything the one-shot pipeline
throws away between :func:`repro.api.analyze` calls: the parsed module,
the points-to solver (with its Pearce–Kelly order and solved bitsets),
the per-function constraint *tapes*, the VFG, and the demand engine's
memo table.  :meth:`AnalysisSession.update` replaces one function body
and re-analyzes incrementally:

* **Constraint tapes** — constraint generation is cached per function
  as a :class:`repro.analysis.shardgen.ShardResult` op tape, keyed by a
  fingerprint of the function's own text (with uids) plus everything a
  tape bakes in from outside the function: the formal parameter lists
  of direct callees and the bodies of transitively inlined allocation
  wrappers.  Only fingerprint-dirty functions are re-collected.
* **Warm solving** — when the edit only *adds* constraints for the
  dirty functions (the common grow-a-function case), the dirty tapes
  are replayed into the existing :class:`DeltaSolver`: the worklist is
  seeded from exactly the touched nodes and the solver restarts from
  its previous fixpoint, reusing the Pearce–Kelly topological order and
  every already-solved points-to set.  A monotone restart from the old
  least fixpoint under a superset constraint system reaches exactly the
  new least fixpoint, so the result is bit-identical to a cold solve.
  Otherwise the solver is rebuilt — still from cached tapes, so
  constraint generation is only paid for the dirty functions.
* **Memo carryover** — every demand-engine verdict records the set of
  functions whose VFG slice its search explored (its *closure*).  After
  an update, per-function fingerprints of the new VFG identify the
  dirty functions and only verdicts whose closure intersects them are
  dropped; the rest are re-primed into the fresh engine.

Identifier stability across edits comes from a uid transplant: the new
module's instructions are re-assigned the uids of textually identical
instructions in the previous module (whole function, else a
prefix/suffix match), and only genuinely new instructions get fresh
uids.  The differential suite pins every ``update()`` result —
points-to sets, instrumentation plans, Γ verdicts — bit-identical to a
cold :func:`repro.core.usher.prepare_module` + ``run_usher`` of the
same module.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.ir import instructions as ins
from repro.ir.module import Module
from repro.ir.parser import parse_ir
from repro.ir.printer import function_to_str, module_to_str
from repro.ir.verifier import verify_module
from repro.opt import run_pipeline
from repro.analysis import shardgen
from repro.analysis.andersen import (
    DeltaSolver,
    PointerResult,
    _recursive_functions,
)
from repro.analysis.callgraph import CallGraph
from repro.analysis.memobjects import function_object, global_object
from repro.analysis.modref import ModRefResult
from repro.analysis.parallel import fork_available, resolve_jobs
from repro.analysis.solverstats import SolverStats
from repro.analysis.tiers import resolve_tier
from repro.obs.registry import REGISTRY
from repro.obs.trace import TRACE
from repro.core.usher import (
    PreparedModule,
    UsherConfig,
    UsherResult,
    resolve_for_config,
    run_msan,
)
from repro.core.instrument import build_guided_plan
from repro.core.opt2 import redundant_check_elimination
from repro.core.plan import InstrumentationPlan
from repro.memssa import build_memory_ssa
from repro.options import AnalysisOptions
from repro.tinyc import compile_source
from repro.vfg.builder import build_vfg
from repro.vfg.demand import DemandEngine, LazyDefinedness, State
from repro.vfg.explain import FlowStep, explain_check_site
from repro.vfg.graph import Node, Root, VFG

__all__ = ["AnalysisSession", "UpdateStats", "plan_signature"]

#: The named configurations a session can run (``msan`` is a plan, not
#: an analysis — see :meth:`AnalysisSession.msan_plan`).
_BASE_CONFIGS = {
    "usher_tl": UsherConfig.tl,
    "usher_tl_at": UsherConfig.tl_at,
    "usher_opt1": UsherConfig.opt_i,
    "usher": UsherConfig.full,
    "usher_ext": UsherConfig.extended,
}

#: Closure bucket for nodes without a home function (the Usher_TL
#: summary memory node).  It is also a fingerprint bucket, so dirtiness
#: through summarized memory invalidates exactly the entries that
#: touched it.
_MEM_BUCKET = "<MEM>"


# ----------------------------------------------------------------------
# Structural signatures
# ----------------------------------------------------------------------
def plan_signature(plan: InstrumentationPlan):
    """A structural, comparable signature of an instrumentation plan.

    :class:`InstrumentationPlan` has no ``__eq__``; the differential
    suite compares these instead — entry ops per function and pre/post
    shadow ops per instruction uid, all stringified.
    """
    return (
        {
            fname: tuple(str(op) for op in ops)
            for fname, ops in plan.entry_ops.items()
        },
        {
            uid: (
                tuple(str(op) for op in iops.pre),
                tuple(str(op) for op in iops.post),
            )
            for uid, iops in plan.ops.items()
        },
    )


def _node_bucket(node: Optional[Node]) -> Optional[str]:
    """The invalidation bucket a VFG node belongs to: its function, the
    shared memory bucket for function-less nodes, ``None`` for roots
    (which exist in every graph and carry no program content)."""
    if node is None or isinstance(node, Root):
        return None
    func = getattr(node, "func", None)
    return _MEM_BUCKET if func is None else func


def _vfg_fingerprints(vfg: VFG) -> Dict[str, FrozenSet]:
    """Per-bucket structural fingerprints of a VFG.

    Every node, edge and check site is attributed to the bucket(s) of
    its endpoints, so two graphs agree on a bucket iff no node, edge or
    check site touching that bucket's function changed.  Memo closures
    are sets of buckets; an entry stays valid iff all its buckets'
    fingerprints are unchanged.
    """
    per: Dict[str, Set] = {}

    def note(bucket: Optional[str], item) -> None:
        if bucket is not None:
            per.setdefault(bucket, set()).add(item)

    for node in vfg.nodes():
        note(_node_bucket(node), ("node", node))
    for edge in vfg.edges():
        item = ("edge", edge.src, edge.dst, edge.kind, edge.callsite)
        note(_node_bucket(edge.src), item)
        note(_node_bucket(edge.dst), item)
    for site in vfg.check_sites:
        item = ("site", site.instr_uid, site.node, site.operand)
        note(site.func, item)
        note(_node_bucket(site.node), item)
    return {bucket: frozenset(items) for bucket, items in per.items()}


def _dirty_buckets(
    old: Dict[str, FrozenSet], new: Dict[str, FrozenSet]
) -> Set[str]:
    return {
        bucket
        for bucket in set(old) | set(new)
        if old.get(bucket) != new.get(bucket)
    }


# ----------------------------------------------------------------------
# Closure-tracked demand engine
# ----------------------------------------------------------------------
class _ObservedMemo(dict):
    """A memo dict that records which entries each query reads and
    writes.  :class:`repro.vfg.demand.DemandEngine` touches its memo
    only through ``.get`` and item assignment, so hooking those two
    (plus ``__getitem__``/``__contains__`` for safety) observes every
    dependency.  ``dict.update`` deliberately bypasses the hooks: bulk
    merges (parallel query joins, priming) carry no read/write record.
    """

    def __init__(self) -> None:
        super().__init__()
        self.reads: Set = set()
        self.writes: Set = set()

    def get(self, key, default=None):
        value = super().get(key, default)
        if value is not None:
            self.reads.add(key)
        return value

    def __getitem__(self, key):
        value = super().__getitem__(key)
        self.reads.add(key)
        return value

    def __contains__(self, key) -> bool:
        present = super().__contains__(key)
        if present:
            self.reads.add(key)
        return present

    def __setitem__(self, key, value) -> None:
        self.writes.add(key)
        super().__setitem__(key, value)

    def flush(self) -> Tuple[Set, Set]:
        reads, writes = self.reads, self.writes
        self.reads, self.writes = set(), set()
        return reads, writes


class _SessionEngine(DemandEngine):
    """A demand engine whose verdicts carry invalidation closures.

    After every query the states written by the search are assigned a
    *closure*: the buckets of all written states' nodes, unioned with
    the closures of every memo entry the search read (memo splices and
    ⊤-prunes make the verdict depend on those entries' own closures —
    including re-written entries, whose previous closure still supports
    the new verdict).  A ``None`` closure means "unknown provenance"
    (e.g. the entry arrived through a closure-blind bulk merge) and is
    never carried across updates.
    """

    def __init__(
        self,
        vfg: VFG,
        context_depth: int = 1,
        resolver: str = "callstring",
    ) -> None:
        super().__init__(vfg, context_depth=context_depth, resolver=resolver)
        self._memo = _ObservedMemo()
        self.closures: Dict[State, Optional[FrozenSet[str]]] = {}

    def prime(
        self,
        entries: Dict[State, bool],
        closures: Dict[State, FrozenSet[str]],
    ) -> None:
        """Install carried-over verdicts (closure-blind bulk merge on
        the memo, explicit closures alongside)."""
        dict.update(self._memo, entries)
        self.closures.update(closures)

    def is_bottom(self, node: Optional[Node]) -> bool:
        self._memo.flush()
        verdict = super().is_bottom(node)
        self._note_closures()
        return verdict

    def find_bottom_chain(self, node: Optional[Node]):
        self._memo.flush()
        chain = super().find_bottom_chain(node)
        self._note_closures()
        return chain

    def _note_closures(self) -> None:
        reads, writes = self._memo.flush()
        if not writes:
            return
        buckets: Set[str] = set()
        unknown = False
        for state in writes:
            bucket = _node_bucket(state[0])
            if bucket is not None:
                buckets.add(bucket)
        for state in reads:
            prior = self.closures.get(state)
            if prior is None:
                unknown = True
                break
            buckets |= prior
        closure = None if unknown else frozenset(buckets)
        for state in writes:
            self.closures[state] = closure


@dataclass
class _MemoBank:
    """One carried demand engine plus the fingerprints of its graph."""

    engine: _SessionEngine
    fingerprints: Dict[str, FrozenSet]


# ----------------------------------------------------------------------
# Tape fingerprints and replay solvers
# ----------------------------------------------------------------------
def _tape_fingerprint(
    module: Module,
    fname: str,
    wrappers: FrozenSet[str],
    recursive: Set[str],
):
    """Everything a function's constraint tape depends on.

    A tape bakes in, beyond the function's own instructions (and uids):
    the bodies of transitively reached allocation wrappers (their
    constraints are cloned into the caller's tape per call site) and
    the formal parameter lists of non-wrapper direct callees (argument
    binding emits ``copy(actual, PVar(callee, formal))``).
    """
    visited: Dict[str, Tuple] = {}
    externs: Dict[str, Tuple] = {}
    stack = [fname]
    while stack:
        name = stack.pop()
        if name in visited:
            continue
        fn = module.functions.get(name)
        if fn is None:
            continue
        visited[name] = (
            tuple(fn.params),
            function_to_str(fn, show_uids=True),
        )
        for instr in fn.instructions():
            if not isinstance(instr, ins.Call):
                continue
            callee = instr.callee
            if not isinstance(callee, str):
                continue
            if callee in wrappers and callee not in recursive:
                stack.append(callee)
            elif callee not in visited:
                callee_fn = module.functions.get(callee)
                externs[callee] = (
                    tuple(callee_fn.params) if callee_fn is not None else (),
                    callee in wrappers,
                )
    return (
        tuple(sorted((name,) + entry for name, entry in visited.items())),
        tuple(
            sorted(
                (name, params, wrapped)
                for name, (params, wrapped) in externs.items()
            )
        ),
    )


def _collect_tape(
    module: Module,
    wrappers: FrozenSet[str],
    recursive: Set[str],
    fname: str,
):
    """Generate one function's constraint tape in-process."""
    collector = shardgen._collector_class()(
        module, frozenset(wrappers), set(recursive), [fname]
    )
    return collector.result_shard


def _normalized_ops(shard) -> Set[Tuple]:
    """A shard's op tape as a set of symbol-level tuples, comparable
    across collector instances (symbols are value objects)."""
    syms = shard.syms
    from repro.analysis.andersen import OP_GEP, OP_ICALL

    out: Set[Tuple] = set()
    for op in shard.ops:
        kind = op[0]
        if kind == OP_GEP:
            out.add((kind, syms[op[1]], syms[op[2]], op[3]))
        elif kind == OP_ICALL:
            out.add(
                (
                    kind,
                    syms[op[1]],
                    op[2],
                    tuple(syms[a] if a >= 0 else None for a in op[3]),
                    syms[op[4]] if op[4] >= 0 else None,
                )
            )
        else:
            out.add((kind, syms[op[1]], syms[op[2]]))
    return out


class _TapeSolver(DeltaSolver):
    """A :class:`DeltaSolver` seeded from cached per-function tapes.

    Replaying the tapes in module order reproduces exactly the
    constraint stream the serial generator would emit: every solver add
    is idempotent, duplicate wrapper-clone ops (each per-function
    collector re-derives shared clones) first occur at the same stream
    position as serially, and ``alloc_objects`` dedupes append-if-absent
    — so the solver state, including list orders, matches a cold build.
    """

    def __init__(
        self,
        module: Module,
        wrappers: FrozenSet[str],
        tapes: Sequence,
        stats: SolverStats,
        recursive: Set[str],
        schedule: str,
        lazy: bool,
        storage: str = "int",
    ) -> None:
        self._session_tapes = list(tapes)
        super().__init__(
            module,
            wrappers,
            stats=stats,
            jobs=1,
            recursive=recursive,
            schedule=schedule,
            lazy=lazy,
            storage=storage,
        )

    def _seed(self) -> None:
        for glob in self.module.globals.values():
            self.global_objects[glob.name] = global_object(
                glob.name, glob.initialized, glob.size, glob.is_array
            )
        for name in self.module.functions:
            self.function_objects[name] = function_object(name)
        self._merge_shards(self._session_tapes)


# ----------------------------------------------------------------------
# Update statistics
# ----------------------------------------------------------------------
@dataclass
class UpdateStats:
    """What one :meth:`AnalysisSession.update` (or the initial build)
    cost and reused."""

    function: Optional[str]
    mode: str  #: ``initial`` | ``warm`` | ``rebuild``
    generation: int
    dirty_functions: Tuple[str, ...]
    dirty_nodes: int
    total_nodes: int
    tapes_reused: int
    tapes_regenerated: int
    memos_carried: int
    memos_dropped: int
    update_seconds: float

    @property
    def dirty_fraction(self) -> float:
        return self.dirty_nodes / self.total_nodes if self.total_nodes else 0.0

    def as_dict(self) -> Dict:
        return {
            "function": self.function,
            "mode": self.mode,
            "generation": self.generation,
            "dirty_functions": sorted(self.dirty_functions),
            "dirty_nodes": self.dirty_nodes,
            "total_nodes": self.total_nodes,
            "dirty_fraction": self.dirty_fraction,
            "tapes_reused": self.tapes_reused,
            "tapes_regenerated": self.tapes_regenerated,
            "memos_carried": self.memos_carried,
            "memos_dropped": self.memos_dropped,
            "update_seconds": self.update_seconds,
        }


# ----------------------------------------------------------------------
# The session
# ----------------------------------------------------------------------
class AnalysisSession:
    """A resident analysis of one module under one configuration.

    Construct with :meth:`from_source` (TinyC) or :meth:`from_ir`;
    edit with :meth:`update`; query with :meth:`query_sites` /
    :meth:`explain`.  All results are bit-identical to a cold analysis
    of the session's current module.
    """

    def __init__(
        self,
        module: Module,
        name: str = "module",
        options: Optional[AnalysisOptions] = None,
        usher_config: Optional[UsherConfig] = None,
        level: str = "O0+IM",
    ) -> None:
        self.name = name
        self._level = level
        opts = options if options is not None else AnalysisOptions()
        self._options = opts
        self._tier = resolve_tier(opts.tier)
        self._schedule = opts.schedule or "wave"
        # Deferred: "auto" resolves against each rebuild's module size.
        self._storage = opts.storage
        self._jobs = opts.jobs
        self._config = self._resolve_config(opts, usher_config)

        # Source of truth: canonical pre-pipeline texts.  The printed
        # post-pipeline module is not parseable (memory-SSA φs), so the
        # session reassembles and re-lowers from these on every update.
        self._header = self._globals_header(module)
        self._fn_texts: Dict[str, str] = {
            fname: function_to_str(fn)
            for fname, fn in module.functions.items()
        }

        #: post-pipeline, never memory-SSA'd — what the solvers index.
        self._pristine: Optional[Module] = None
        self._prepared: Optional[PreparedModule] = None
        self._result: Optional[UsherResult] = None

        # Incremental state.
        self._base_tapes: Dict[str, Tuple[Tuple, object]] = {}
        self._refined_tapes: Dict[str, Tuple[Tuple, object]] = {}
        self._base_solver: Optional[DeltaSolver] = None
        self._refined_solver: Optional[DeltaSolver] = None
        self._refined_wrappers: Optional[FrozenSet[str]] = None
        self._recursive: Optional[Set[str]] = None
        self._banks: Dict[str, _MemoBank] = {}
        self._main_fps: Optional[Dict[str, FrozenSet]] = None
        self._memos_carried = 0
        self._memos_dropped = 0
        self._explain_cache: Optional[Tuple[int, _SessionEngine]] = None
        self._query_pool = None
        self._query_pool_gen = -1

        self.generation = 0
        self.last_update: Optional[UpdateStats] = None
        self._rebuild(module, edited=None)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_source(
        cls,
        source: str,
        name: str = "module",
        options: Optional[AnalysisOptions] = None,
        usher_config: Optional[UsherConfig] = None,
        level: str = "O0+IM",
    ) -> "AnalysisSession":
        return cls(
            compile_source(source, name),
            name=name,
            options=options,
            usher_config=usher_config,
            level=level,
        )

    @classmethod
    def from_ir(
        cls,
        text: str,
        name: str = "module",
        options: Optional[AnalysisOptions] = None,
        usher_config: Optional[UsherConfig] = None,
        level: str = "O0+IM",
    ) -> "AnalysisSession":
        return cls(
            parse_ir(text),
            name=name,
            options=options,
            usher_config=usher_config,
            level=level,
        )

    @staticmethod
    def _resolve_config(
        options: AnalysisOptions, usher_config: Optional[UsherConfig]
    ) -> UsherConfig:
        overrides: Dict = {"jobs": 1}
        if usher_config is not None:
            config = usher_config
            if options.demand is not None:
                overrides["demand"] = options.demand
        else:
            name = options.config or "usher"
            factory = _BASE_CONFIGS.get(name)
            if factory is None:
                raise ValueError(
                    f"unknown session config {name!r} (msan is a plan — "
                    f"use AnalysisSession.msan_plan())"
                )
            config = factory()
            # Sessions default to demand-driven Γ: that is what memo
            # carryover accelerates.  Verdicts are identical either way.
            overrides["demand"] = (
                True if options.demand is None else options.demand
            )
        if options.resolver is not None:
            overrides["resolver"] = options.resolver
        if options.context_depth is not None:
            overrides["context_depth"] = options.context_depth
        return replace(config, **overrides)

    @staticmethod
    def _globals_header(module: Module) -> str:
        shell = Module(module.name)
        shell.globals = module.globals
        return module_to_str(shell).rstrip("\n")

    # -- public surface -------------------------------------------------
    @property
    def prepared(self) -> PreparedModule:
        assert self._prepared is not None
        return self._prepared

    @property
    def module(self) -> Module:
        return self.prepared.module

    @property
    def pristine(self) -> Module:
        """The post-pipeline module *without* memory-SSA annotations —
        deep-copy it to feed a cold ``prepare_module`` oracle."""
        assert self._pristine is not None
        return self._pristine

    @property
    def config(self) -> UsherConfig:
        return self._config

    @property
    def result(self) -> UsherResult:
        assert self._result is not None
        return self._result

    @property
    def plan(self) -> InstrumentationPlan:
        return self.result.plan

    @property
    def vfg(self) -> VFG:
        return self.result.vfg

    @property
    def gamma(self):
        return self.result.gamma

    @property
    def pointers(self) -> PointerResult:
        return self.prepared.pointers

    def function_names(self) -> List[str]:
        return list(self._fn_texts)

    def function_text(self, fname: str) -> str:
        """The canonical pre-pipeline IR text of one function — the
        shape :meth:`update` accepts back."""
        return self._fn_texts[fname]

    def msan_plan(self) -> InstrumentationPlan:
        return run_msan(self.prepared)

    def update(self, function_name: str, new_body: str) -> UpdateStats:
        """Replace ``function_name``'s body and re-analyze incrementally.

        ``new_body`` is the function's new pre-pipeline IR text (the
        dialect :meth:`function_text` returns).  Raises ``KeyError``
        for unknown functions and ``ValueError`` if the replacement
        renames the function or changes the module's function set.
        """
        if function_name not in self._fn_texts:
            raise KeyError(f"unknown function {function_name!r}")
        candidate = dict(self._fn_texts)
        candidate[function_name] = new_body.strip("\n")
        text = "\n\n".join([self._header] + list(candidate.values()))
        module = parse_ir(text)
        if set(module.functions) != set(self._fn_texts):
            raise ValueError(
                "update() must keep the module's function set: "
                f"got {sorted(module.functions)}"
            )
        self._fn_texts = {
            fname: function_to_str(fn)
            for fname, fn in module.functions.items()
        }
        return self._rebuild(module, edited=function_name)

    def query_sites(
        self,
        uids: Optional[Iterable[int]] = None,
        jobs: Optional[int] = None,
    ) -> Dict[int, bool]:
        """Definedness verdict per check site of the session's VFG,
        keyed by instruction uid (AND-folded over the site's operands).

        Verdicts mirror the session's Γ exactly — under Opt II they are
        answered on the rewired scratch graph, like a cold ``analyze``.
        ``jobs`` (explicit > session options > ``REPRO_JOBS`` > serial)
        fans the batch across the session's resident worker pool —
        forked once per generation and reused for every later batch.
        Verdicts are identical regardless of ``jobs``.
        """
        gamma = self.gamma
        # Demand configurations answer through the carried engine (and
        # can fan out); eager Γ is a finished map — lookups are free.
        engine = gamma.engine if isinstance(gamma, LazyDefinedness) else None
        wanted = set(uids) if uids is not None else None
        site_list = (
            engine.vfg.check_sites
            if engine is not None
            else self.vfg.check_sites
        )
        sites = [
            (index, site)
            for index, site in enumerate(site_list)
            if wanted is None or site.instr_uid in wanted
        ]
        if jobs is None:
            jobs = self._jobs
        effective = min(resolve_jobs(jobs), len(sites))
        if engine is not None and effective > 1 and fork_available():
            pool = self._ensure_query_pool(effective, engine)
            if pool is not None:
                verdicts = pool.query_sites([index for index, _ in sites])
                if verdicts is not None:
                    return verdicts
        verdicts: Dict[int, bool] = {}
        for _index, site in sites:
            ok = gamma.is_defined(site.node)
            verdicts[site.instr_uid] = verdicts.get(site.instr_uid, True) and ok
        return verdicts

    def explain(
        self, instr_uid: int, max_steps: int = 50
    ) -> Optional[List[FlowStep]]:
        """A shortest undefined-value flow chain into ``instr_uid``'s
        first ⊥ operand, or ``None`` when every operand is defined."""
        return explain_check_site(
            self.vfg,
            self.module,
            instr_uid,
            engine=self._explain_engine(),
        )

    def stats(self) -> Dict:
        """A JSON-safe snapshot of the session's state and last update."""
        solver_stats = self.prepared.solver_stats
        payload = {
            "name": self.name,
            "generation": self.generation,
            "config": self._config.name,
            "tier": self._tier,
            "storage": (
                solver_stats.storage if solver_stats is not None else "int"
            ),
            "resolver": self._config.resolver,
            "demand": self._config.demand,
            "functions": len(self._fn_texts),
            "check_sites": len(self.vfg.check_sites),
            "vfg_nodes": self.vfg.num_nodes,
            "vfg_edges": self.vfg.num_edges,
        }
        if solver_stats is not None:
            payload["solver"] = {
                "pops": solver_stats.pops,
                "facts_propagated": solver_stats.facts_propagated,
                "solve_passes": solver_stats.solve_passes,
            }
        if self.last_update is not None:
            payload["last_update"] = self.last_update.as_dict()
        return payload

    def close(self) -> None:
        """Shut down the resident worker pool (if any)."""
        if self._query_pool is not None:
            self._query_pool.shutdown()
            self._query_pool = None

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- rebuild pipeline -----------------------------------------------
    def _rebuild(
        self, pre_module: Module, edited: Optional[str]
    ) -> UpdateStats:
        with TRACE.span(
            "session.update",
            session=self.name,
            function=edited or "",
            tier=self._tier,
        ):
            return self._rebuild_traced(pre_module, edited)

    def _rebuild_traced(
        self, pre_module: Module, edited: Optional[str]
    ) -> UpdateStats:
        started = time.perf_counter()
        module = pre_module
        run_pipeline(module, self._level)
        verify_module(module)
        if self._pristine is not None:
            _transplant_uids(module, self._pristine)
        self._pristine = module

        prepare_started = time.perf_counter()
        tape_pool = self._tape_pool_for(module)
        try:
            pointers, mode, reused, regenerated = self._pointer_pass(
                module, tape_pool
            )
        finally:
            if tape_pool is not None:
                tape_pool.shutdown()
        working = copy.deepcopy(module)
        callgraph = CallGraph(working, pointers)
        modref = ModRefResult(working, pointers, callgraph)
        build_memory_ssa(working, pointers, modref)
        self._prepared = PreparedModule(
            working,
            pointers,
            callgraph,
            modref,
            time.perf_counter() - prepare_started,
        )

        self._memos_carried = 0
        self._memos_dropped = 0
        dirty_buckets, dirty_nodes, total_nodes = self._run_config()
        self._explain_cache = None
        if self._query_pool is not None:
            self._query_pool.shutdown()
            self._query_pool = None

        if edited is None:
            mode = "initial"
        else:
            self.generation += 1
        stats = UpdateStats(
            function=edited,
            mode=mode,
            generation=self.generation,
            dirty_functions=tuple(sorted(dirty_buckets)),
            dirty_nodes=dirty_nodes,
            total_nodes=total_nodes,
            tapes_reused=reused,
            tapes_regenerated=regenerated,
            memos_carried=self._memos_carried,
            memos_dropped=self._memos_dropped,
            update_seconds=time.perf_counter() - started,
        )
        self.last_update = stats
        REGISTRY.record_update(
            stats, session=self.name, tier=self._tier
        )
        return stats

    def _tape_pool_for(self, module: Module):
        jobs = resolve_jobs(self._jobs) if self._jobs is not None else 1
        if jobs < 2 or len(module.functions) < 2 or not fork_available():
            return None
        from repro.service.pool import ResidentPool

        pool = ResidentPool(jobs, module=module)
        try:
            pool.start()
        except OSError:
            return None
        return pool

    # -- pointer pass ----------------------------------------------------
    def _pointer_pass(
        self, module: Module, tape_pool
    ) -> Tuple[PointerResult, str, int, int]:
        recursive = _recursive_functions(module)
        if self._recursive is not None and recursive != self._recursive:
            # Recursion changes reshape constraint generation globally
            # (wrapper eligibility, clone instantiation): drop all
            # caches rather than reason about the blast radius.
            self._base_tapes.clear()
            self._refined_tapes.clear()
            self._base_solver = None
            self._refined_solver = None
            self._refined_wrappers = None
        first_round = self._recursive is None
        self._recursive = recursive
        counters = {"reused": 0, "regenerated": 0}

        base, base_mode = self._run_solver_pass(
            module,
            frozenset(),
            self._base_tapes,
            self._base_solver,
            recursive,
            counters,
            tape_pool,
        )
        self._base_solver = base
        base.force_wrapper_candidates()
        with base.stats.phase("wrappers"):
            wrappers = frozenset(base.detect_wrappers())
        if not wrappers:
            self._refined_solver = None
            self._refined_tapes.clear()
            self._refined_wrappers = None
            base.force_all()
            result = base.result()
            modes = [base_mode]
        else:
            if wrappers != self._refined_wrappers:
                self._refined_tapes.clear()
                self._refined_solver = None
            self._refined_wrappers = wrappers
            refined, refined_mode = self._run_solver_pass(
                module,
                wrappers,
                self._refined_tapes,
                self._refined_solver,
                recursive,
                counters,
                tape_pool,
            )
            self._refined_solver = refined
            refined.force_all()
            result = refined.result()
            result.wrappers = set(wrappers)
            modes = [base_mode, refined_mode]
        if first_round:
            mode = "initial"
        elif all(m == "warm" for m in modes):
            mode = "warm"
        else:
            mode = "rebuild"
        return result, mode, counters["reused"], counters["regenerated"]

    def _run_solver_pass(
        self,
        module: Module,
        wrappers: FrozenSet[str],
        cache: Dict[str, Tuple[Tuple, object]],
        prev_solver: Optional[DeltaSolver],
        recursive: Set[str],
        counters: Dict[str, int],
        tape_pool,
    ) -> Tuple[DeltaSolver, str]:
        tapes: List = []
        dirty: List[Tuple[str, Optional[object], object]] = []
        missing: List[str] = []
        for fname in module.functions:
            fingerprint = _tape_fingerprint(module, fname, wrappers, recursive)
            cached = cache.get(fname)
            if cached is not None and cached[0] == fingerprint:
                tapes.append(cached[1])
                counters["reused"] += 1
            else:
                tapes.append((fname, fingerprint, cached))
                missing.append(fname)
        if missing:
            fresh = self._collect_tapes(
                module, wrappers, recursive, missing, tape_pool
            )
            for index, entry in enumerate(tapes):
                if not isinstance(entry, tuple) or len(entry) != 3:
                    continue
                fname, fingerprint, cached = entry
                shard = fresh[fname]
                cache[fname] = (fingerprint, shard)
                tapes[index] = shard
                dirty.append(
                    (fname, cached[1] if cached is not None else None, shard)
                )
                counters["regenerated"] += 1

        if prev_solver is not None and self._warm_eligible(
            prev_solver, module, recursive, dirty
        ):
            return (
                self._warm_solve(prev_solver, module, recursive, dirty, tapes),
                "warm",
            )
        from repro.analysis.bitsets import resolve_storage

        module_ops = sum(
            1
            for function in module.functions.values()
            for _ in function.instructions()
        )
        storage = resolve_storage(self._storage, ops=module_ops)
        stats = SolverStats(
            solver=DeltaSolver.kind,
            schedule=self._schedule,
            tier=self._tier,
            storage=storage,
        )
        solver = _TapeSolver(
            module,
            frozenset(wrappers),
            tapes,
            stats,
            set(recursive),
            self._schedule,
            self._tier == "lazy",
            storage,
        )
        if self._tier == "unified":
            from repro.analysis.unify import presolve_unify

            presolve_unify(solver)
        solver.solve()
        return solver, "rebuild"

    def _collect_tapes(
        self,
        module: Module,
        wrappers: FrozenSet[str],
        recursive: Set[str],
        names: List[str],
        tape_pool,
    ) -> Dict[str, object]:
        if tape_pool is not None and len(names) > 1:
            shards = tape_pool.collect_tapes(names, wrappers, recursive)
            if shards is not None:
                return shards
        return {
            fname: _collect_tape(module, wrappers, recursive, fname)
            for fname in names
        }

    @staticmethod
    def _warm_eligible(
        solver: DeltaSolver,
        module: Module,
        recursive: Set[str],
        dirty: List[Tuple[str, Optional[object], object]],
    ) -> bool:
        # A warm restart is exact only when the new constraint system
        # is a superset of the old one (monotone restart from the old
        # LFP) and nothing the solver resolved dynamically went stale:
        # the function set and every signature must be unchanged
        # (indirect-call binding reads formals from the live module)
        # and every dirty tape must only add ops.
        if solver._lazy and not solver._complete:
            # A partially forced lazy solver cannot absorb new
            # constraints through its slice bookkeeping; rebuild.
            return False
        old_module = solver.module
        if set(old_module.functions) != set(module.functions):
            return False
        for name, fn in module.functions.items():
            if tuple(fn.params) != tuple(old_module.functions[name].params):
                return False
        if set(recursive) != set(solver._recursive):
            return False
        for _fname, old_shard, new_shard in dirty:
            if old_shard is None:
                return False
            if not _normalized_ops(old_shard) <= _normalized_ops(new_shard):
                return False
        return True

    @staticmethod
    def _warm_solve(
        solver: DeltaSolver,
        module: Module,
        recursive: Set[str],
        dirty: List[Tuple[str, Optional[object], object]],
        all_tapes: List,
    ) -> DeltaSolver:
        with solver.stats.phase("constraints"):
            for _fname, _old, new_shard in dirty:
                solver._replay_shard(new_shard)
        # Generation-side tables are rebuilt from all tapes in module
        # order so list orders match a cold build; ``call_targets`` is
        # only union-merged — its dynamically bound entries derive from
        # old points-to facts, all of which the cold solve rediscovers.
        solver.alloc_objects = {}
        solver.clone_base = {}
        solver._instantiated = set()
        for shard in all_tapes:
            for uid, targets in shard.call_targets.items():
                solver.call_targets.setdefault(uid, set()).update(targets)
            solver.clone_base.update(shard.clone_base)
            solver._instantiated.update(shard.instantiated)
            for uid, objs in shard.alloc_objects.items():
                known = solver.alloc_objects.setdefault(uid, [])
                for obj in objs:
                    if obj not in known:
                        known.append(obj)
        solver.module = module
        solver._recursive = set(recursive)
        solver.solve()
        return solver

    # -- configuration run ----------------------------------------------
    def _run_config(self) -> Tuple[Set[str], int, int]:
        config = self._config
        prepared = self.prepared
        started = time.perf_counter()
        vfg = build_vfg(
            prepared.module,
            prepared.pointers,
            prepared.callgraph,
            prepared.modref,
            address_taken=config.address_taken,
            semi_strong=config.semi_strong,
            array_init=config.array_init,
        )
        fingerprints = _vfg_fingerprints(vfg)
        if self._main_fps is None:
            dirty = set(fingerprints)
        else:
            dirty = _dirty_buckets(self._main_fps, fingerprints)
        dirty_nodes = sum(
            1 for node in vfg.nodes() if _node_bucket(node) in dirty
        )
        total_nodes = vfg.num_nodes
        self._main_fps = fingerprints

        opt2_stats = None
        if config.opt2:
            factory = (
                self._opt2_engine_factory if config.demand else None
            )
            gamma, opt2_stats = redundant_check_elimination(
                prepared.module,
                vfg,
                prepared.callgraph,
                config.context_depth,
                resolver=config.resolver,
                interprocedural=config.opt2_interproc,
                demand=config.demand,
                jobs=config.jobs,
                engine_factory=factory,
            )
        elif config.demand:
            engine = self._carry_bank("main", vfg, fingerprints)
            engine.query_sites(vfg.check_sites, jobs=config.jobs)
            gamma = engine.gamma()
        else:
            gamma = resolve_for_config(vfg, config)
        plan, guided_stats = build_guided_plan(
            prepared.module,
            vfg,
            gamma,
            prepared.callgraph,
            opt1=config.opt1,
            name=config.name,
        )
        self._result = UsherResult(
            config=config,
            plan=plan,
            vfg=vfg,
            gamma=gamma,
            guided_stats=guided_stats,
            opt2_stats=opt2_stats,
            analysis_seconds=time.perf_counter() - started,
        )
        return dirty, dirty_nodes, total_nodes

    def _opt2_engine_factory(self, scratch: VFG) -> _SessionEngine:
        return self._carry_bank("opt2", scratch, _vfg_fingerprints(scratch))

    def _carry_bank(
        self,
        bank: str,
        vfg: VFG,
        fingerprints: Dict[str, FrozenSet],
        resolver: Optional[str] = None,
        context_depth: Optional[int] = None,
    ) -> _SessionEngine:
        resolver = resolver or self._config.resolver
        if context_depth is None:
            context_depth = self._config.context_depth
        engine = _SessionEngine(
            vfg, context_depth=context_depth, resolver=resolver
        )
        old = self._banks.get(bank)
        if old is not None and resolver == "callstring":
            dirty = _dirty_buckets(old.fingerprints, fingerprints)
            carried: Dict[State, bool] = {}
            closures: Dict[State, FrozenSet[str]] = {}
            for state, verdict in old.engine._memo.items():
                closure = old.engine.closures.get(state)
                if closure is not None and not (closure & dirty):
                    carried[state] = verdict
                    closures[state] = closure
            engine.prime(carried, closures)
            self._memos_carried += len(carried)
            self._memos_dropped += len(old.engine._memo) - len(carried)
        elif old is not None:
            self._memos_dropped += len(old.engine._memo)
        self._banks[bank] = _MemoBank(engine, fingerprints)
        return engine

    # -- query-side engines ----------------------------------------------
    def _explain_engine(self) -> _SessionEngine:
        if (
            self._explain_cache is not None
            and self._explain_cache[0] == self.generation
        ):
            return self._explain_cache[1]
        assert self._main_fps is not None
        engine = self._carry_bank(
            "explain",
            self.vfg,
            self._main_fps,
            resolver="callstring",
            context_depth=max(1, self._config.context_depth),
        )
        self._explain_cache = (self.generation, engine)
        return engine

    def _ensure_query_pool(self, jobs: int, engine: _SessionEngine):
        if (
            self._query_pool is not None
            and self._query_pool_gen == self.generation
            and self._query_pool.jobs >= jobs
        ):
            return self._query_pool
        if self._query_pool is not None:
            self._query_pool.shutdown()
            self._query_pool = None
        from repro.service.pool import ResidentPool

        pool = ResidentPool(jobs, engine=engine)
        try:
            pool.start()
        except OSError:
            return None
        self._query_pool = pool
        self._query_pool_gen = self.generation
        return pool


# ----------------------------------------------------------------------
# uid transplantation
# ----------------------------------------------------------------------
def _transplant_uids(module: Module, old: Module) -> None:
    """Re-assign the previous module's uids to textually matching
    instructions of the new one.

    Per function: identical text copies uids positionally; otherwise
    the longest common prefix and (non-overlapping) suffix of the
    instruction streams keep their uids and the middle gets fresh ones.
    ``Module.assign_uids`` then fills every unmatched instruction with
    ids above the transplanted maximum — uid stability is what keeps
    tape fingerprints, memo closures and plan comparisons aligned
    across edits.
    """
    for fn in module.functions.values():
        for instr in fn.instructions():
            instr.uid = -1
    for name, fn_new in module.functions.items():
        fn_old = old.functions.get(name)
        if fn_old is None:
            continue
        new_instrs = list(fn_new.instructions())
        old_instrs = list(fn_old.instructions())
        if function_to_str(fn_new) == function_to_str(fn_old):
            for instr_new, instr_old in zip(new_instrs, old_instrs):
                instr_new.uid = instr_old.uid
            continue
        new_texts = [str(instr) for instr in new_instrs]
        old_texts = [str(instr) for instr in old_instrs]
        limit = min(len(new_texts), len(old_texts))
        prefix = 0
        while prefix < limit and new_texts[prefix] == old_texts[prefix]:
            new_instrs[prefix].uid = old_instrs[prefix].uid
            prefix += 1
        suffix = 0
        while (
            suffix < limit - prefix
            and new_texts[-1 - suffix] == old_texts[-1 - suffix]
        ):
            new_instrs[-1 - suffix].uid = old_instrs[-1 - suffix].uid
            suffix += 1
    module.assign_uids()
