"""Compressed points-to storage: roaring-style bitsets and int64 arenas.

The :class:`~repro.analysis.andersen.DeltaSolver` keeps every points-to
set as a bitset over interned location ids.  The seed representation is
a plain Python ``int``: set algebra is machine-word arithmetic, but the
*storage* is dense — a set containing only bit 1,000,000 costs 125 KB,
and every union reallocates the whole limb array.  At 100×-scale
modules the bitset bytes, not the algorithmics, become the bottleneck.

:class:`Bitset` is the compressed alternative, modeled on roaring
bitmaps (Chambi et al.; the layout DFI-style value-flow systems use for
their points-to archives): the id space is split into 2^16-bit
*chunks*, and only non-empty chunks are stored.  While solving, each
chunk is a plain int (fast machine-word algebra within the chunk);
:meth:`Bitset.pack` serializes each chunk as the smallest of three
container kinds for archival and the ``bytes_pts`` statistic:

- ``array``  — sorted ``uint16`` members (2 bytes each; wins below
  4096 members per chunk),
- ``bitmap`` — the raw 8 KB chunk (wins for dense chunks),
- ``run``    — ``(start, length)`` ``uint16`` pairs (wins for long
  consecutive runs, e.g. freshly-interned contiguous id ranges).

The class exposes exactly the algebra surface the solver uses, with
the *same operator spelling* as the int representation so the solver
core keeps one code path for both storages:

- ``a | b`` — union (``0 | b`` and ``a | 0`` work: the int ``0`` stays
  the empty-set sentinel in both modes; an empty result is returned
  *as* ``0``, never as an empty :class:`Bitset`),
- ``a & b`` — intersection (``a & 0 == 0``, ``a & -1 == a``:  ``-1``
  is the int representation's universal set and appears via ``x & ~0``),
- ``a & ~b`` — difference (``~b`` evaluates to a lazy :class:`_Inverted`
  wrapper, so no complement is ever materialized),
- ``a == b``, ``bool(a)``, :meth:`Bitset.count`,
  :meth:`Bitset.iter_lids` (ascending, matching the int
  representation's low-bit-first order exactly — so worklist order,
  and therefore every deterministic solver counter, is bit-identical
  across storages).

Bitsets are **immutable**: every operator returns either an operand
(safe to share) or a fresh object, so solver state can never alias by
accident.

The storage choice is one knob resolved like every other analysis knob
(explicit ``storage=`` > session default > ``REPRO_STORAGE`` > built-in
``"int"``); ``"auto"`` selects compressed above
:data:`COMPRESSED_MIN_OPS` module instructions.  Results are
bit-identical either way — enforced by
``tests/property/test_storage_differential.py``.

:class:`Int64Arena` is the companion flat-storage primitive: an
append-only ``int64`` array with ``multiprocessing.shared_memory``
export/attach, backing the struct-of-arrays VFG edge columns
(:mod:`repro.vfg.graph`) and the streaming constraint tapes
(:class:`repro.service.pool.FlatTape`), so worker processes attach
zero-copy instead of unpickling op lists.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Bitset",
    "Int64Arena",
    "COMPRESSED_MIN_OPS",
    "STORAGE_ENV",
    "STORAGES",
    "InvalidStorageError",
    "bitset_count",
    "bitset_iter_lids",
    "bitset_packed_size",
    "default_storage",
    "pack_lids",
    "parse_storage",
    "resolve_storage",
]

#: Bits per chunk (roaring's 2^16 split: chunk index = lid >> 16).
CHUNK_SHIFT = 16
CHUNK_BITS = 1 << CHUNK_SHIFT
#: Full-chunk bitmap container size in bytes (the break-even ceiling).
_BITMAP_BYTES = CHUNK_BITS // 8

#: Container kind tags used by :meth:`Bitset.pack`.
_KIND_ARRAY = 0
_KIND_BITMAP = 1
_KIND_RUN = 2
_KIND_NAMES = ("array", "bitmap", "run")

try:  # int.bit_count is 3.10+; the fallback keeps 3.9 working.
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover

    def _popcount(bits: int) -> int:
        return bin(bits).count("1")


# ----------------------------------------------------------------------
# Storage knob (mirrors repro.analysis.tiers)
# ----------------------------------------------------------------------
#: The recognized points-to storage modes.
STORAGES = ("int", "compressed", "auto")

#: Environment variable consulted when no explicit ``storage=`` is
#: given (the CI lane runs the tier-1 suite under
#: ``REPRO_STORAGE=compressed``).
STORAGE_ENV = "REPRO_STORAGE"

#: Module size (instruction count) above which ``"auto"`` selects the
#: compressed representation.  Below it, dense int bitsets are both
#: smaller in absolute terms and faster per operation; above it the
#: per-rep int limb arrays start to dominate resident memory.
COMPRESSED_MIN_OPS = 50_000

_default_storage: Optional[str] = None


class InvalidStorageError(ValueError):
    """A storage name outside :data:`STORAGES`."""


def parse_storage(raw: str, origin: str = "--storage") -> str:
    """Validate a user-supplied storage name (CLI flag or env var)."""
    text = (raw or "").strip().lower() if isinstance(raw, str) else raw
    if text not in STORAGES:
        known = ", ".join(STORAGES)
        raise InvalidStorageError(
            f"{origin} must be one of {known}; got {raw!r}"
        )
    return text


def resolve_storage(
    storage: Optional[str] = None, *, ops: Optional[int] = None
) -> str:
    """The effective points-to storage for one analysis: ``"int"`` or
    ``"compressed"`` (``"auto"`` is resolved here against ``ops``, the
    module instruction count).

    Resolution order matches every other knob: explicit argument >
    session default (:func:`default_storage`) > ``REPRO_STORAGE`` >
    built-in ``"int"``.  A *malformed* environment value raises
    :class:`InvalidStorageError` rather than silently defaulting.
    """
    if storage is not None:
        resolved = parse_storage(storage, origin="storage")
    elif _default_storage is not None:
        resolved = _default_storage
    else:
        raw = os.environ.get(STORAGE_ENV)
        resolved = "int" if raw is None else parse_storage(raw, origin=STORAGE_ENV)
    if resolved == "auto":
        if ops is not None and ops >= COMPRESSED_MIN_OPS:
            return "compressed"
        return "int"
    return resolved


@contextmanager
def default_storage(storage: Optional[str]) -> Iterator[None]:
    """Install ``storage`` as the session default for the enclosed
    block (``None`` is a no-op; nesting restores the previous default).
    """
    global _default_storage
    if storage is None:
        yield
        return
    previous = _default_storage
    _default_storage = parse_storage(storage, origin="storage")
    try:
        yield
    finally:
        _default_storage = previous


# ----------------------------------------------------------------------
# The compressed bitset
# ----------------------------------------------------------------------
class _Inverted:
    """Lazy complement: ``~b`` in ``a & ~b``.

    Never materialized — the only legal use is as the right operand of
    ``&``, where it turns the intersection into a set difference.
    """

    __slots__ = ("bitset",)

    def __init__(self, bitset: "Bitset") -> None:
        self.bitset = bitset

    def __rand__(self, other):
        if other == 0:
            return 0
        if isinstance(other, int):
            raise TypeError(
                "cannot intersect a plain int with an inverted Bitset "
                "(mixed storage modes in one solver state)"
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"~{self.bitset!r}"


class Bitset:
    """An immutable compressed bitset over non-negative ids.

    Internally ``{chunk_index: chunk_bits}`` where ``chunk_bits`` is a
    plain int over ``[0, 2^16)`` — machine-word algebra within chunks,
    sparse storage across them.  Invariants: no zero chunks, and never
    empty overall (the empty set is represented by the int ``0``
    everywhere, so the solver's ``if not bits:`` checks keep working
    unchanged).
    """

    __slots__ = ("_chunks",)

    def __init__(self, chunks: Dict[int, int]) -> None:
        self._chunks = chunks

    # -- construction ---------------------------------------------------
    @classmethod
    def single(cls, lid: int) -> "Bitset":
        """The singleton ``{lid}`` (the compressed ``1 << lid``)."""
        return cls({lid >> CHUNK_SHIFT: 1 << (lid & (CHUNK_BITS - 1))})

    @classmethod
    def from_lids(cls, lids: Iterable[int]):
        """A bitset holding ``lids`` — or the int ``0`` when empty."""
        chunks: Dict[int, int] = {}
        for lid in lids:
            key = lid >> CHUNK_SHIFT
            chunks[key] = chunks.get(key, 0) | (1 << (lid & (CHUNK_BITS - 1)))
        return cls(chunks) if chunks else 0

    @classmethod
    def from_int(cls, bits: int):
        """Convert an int bitset; the empty set stays the int ``0``."""
        if bits < 0:
            raise ValueError("cannot build a Bitset from a negative int")
        chunks: Dict[int, int] = {}
        key = 0
        mask = CHUNK_BITS - 1
        while bits:
            chunk = bits & ((1 << CHUNK_BITS) - 1)
            if chunk:
                chunks[key] = chunk
            bits >>= CHUNK_BITS
            key += 1
        del mask
        return cls(chunks) if chunks else 0

    def to_int(self) -> int:
        """The equivalent dense int bitset (tests / interop only)."""
        bits = 0
        for key, chunk in self._chunks.items():
            bits |= chunk << (key << CHUNK_SHIFT)
        return bits

    # -- algebra --------------------------------------------------------
    def __or__(self, other):
        if isinstance(other, Bitset):
            if not other._chunks:
                return self
            merged = dict(self._chunks)
            for key, chunk in other._chunks.items():
                mine = merged.get(key)
                if mine is None:
                    merged[key] = chunk
                elif mine | chunk != mine:
                    merged[key] = mine | chunk
            return Bitset(merged)
        if other == 0:
            return self
        if isinstance(other, int) and other > 0:
            return self | Bitset.from_int(other)
        return NotImplemented

    __ror__ = __or__

    def __and__(self, other):
        if isinstance(other, Bitset):
            small, large = self._chunks, other._chunks
            if len(large) < len(small):
                small, large = large, small
            out: Dict[int, int] = {}
            for key, chunk in small.items():
                both = chunk & large.get(key, 0)
                if both:
                    out[key] = both
            return Bitset(out) if out else 0
        if isinstance(other, _Inverted):
            drop = other.bitset._chunks
            out = {}
            for key, chunk in self._chunks.items():
                kept = chunk & ~drop.get(key, 0)
                if kept:
                    out[key] = kept
            return Bitset(out) if out else 0
        if other == 0:
            return 0
        if other == -1:
            return self
        if isinstance(other, int) and other > 0:
            return self & Bitset.from_int(other)
        return NotImplemented

    def __rand__(self, other):
        if other == 0:
            return 0
        if other == -1:
            return self
        if isinstance(other, int) and other > 0:
            return self & Bitset.from_int(other)
        return NotImplemented

    def __invert__(self) -> _Inverted:
        return _Inverted(self)

    def __eq__(self, other) -> bool:
        if isinstance(other, Bitset):
            return self._chunks == other._chunks
        if isinstance(other, int):
            # Never empty, so equal to an int only if that int holds
            # exactly the same bits.
            return other > 0 and self.to_int() == other
        return NotImplemented

    __hash__ = None  # mutable-adjacent value object; never a dict key

    def __bool__(self) -> bool:
        return bool(self._chunks)

    def count(self) -> int:
        return sum(_popcount(chunk) for chunk in self._chunks.values())

    def iter_lids(self) -> Iterator[int]:
        """Members in ascending order — exactly the int representation's
        low-bit-first iteration, which keeps worklist order (and hence
        every deterministic solver counter) identical across storages."""
        for key in sorted(self._chunks):
            base = key << CHUNK_SHIFT
            chunk = self._chunks[key]
            while chunk:
                low = chunk & -chunk
                yield base + low.bit_length() - 1
                chunk ^= low

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitset({self.count()} bits, {len(self._chunks)} chunks)"

    # -- containers -----------------------------------------------------
    def container_plan(self) -> List[Tuple[int, int, int]]:
        """Per chunk (ascending): ``(chunk_index, kind, payload_bytes)``
        for the smallest container that can hold it.

        ``array`` costs 2 bytes per member, ``bitmap`` a flat 8 KB,
        ``run`` 4 bytes per maximal run of consecutive members (run
        starts are the bits of ``chunk & ~(chunk << 1)``).
        """
        plan: List[Tuple[int, int, int]] = []
        for key in sorted(self._chunks):
            chunk = self._chunks[key]
            members = _popcount(chunk)
            runs = _popcount(chunk & ~(chunk << 1))
            costs = (
                (2 * members, _KIND_ARRAY),
                (_BITMAP_BYTES, _KIND_BITMAP),
                (4 * runs, _KIND_RUN),
            )
            size, kind = min(costs)
            plan.append((key, kind, size))
        return plan

    def packed_size(self) -> Tuple[int, Dict[str, int]]:
        """Total packed bytes (including the 8-byte per-chunk header)
        and a container-kind histogram — the ``bytes_pts`` /
        ``container_mix`` inputs."""
        total = 0
        mix: Dict[str, int] = {}
        for _key, kind, size in self.container_plan():
            total += 8 + size  # u16 chunk index, u8 kind, u8 pad, u32 count
            name = _KIND_NAMES[kind]
            mix[name] = mix.get(name, 0) + 1
        return total, mix

    def pack(self) -> bytes:
        """Serialize as roaring-style containers.

        Layout per chunk, in ascending chunk order: ``u16 chunk_index,
        u8 kind, u8 pad, u32 count``, then the payload (``array``:
        ``count`` sorted u16 members; ``bitmap``: 8 KB raw;  ``run``:
        ``count`` (start, length-1) u16 pairs).  Round-trips exactly
        through :meth:`unpack`.
        """
        out = bytearray()
        for key, kind, _size in self.container_plan():
            chunk = self._chunks[key]
            if kind == _KIND_ARRAY:
                payload = array("H", _chunk_members(chunk))
            elif kind == _KIND_BITMAP:
                payload = array(
                    "B", chunk.to_bytes(_BITMAP_BYTES, "little")
                )
            else:  # _KIND_RUN
                pairs: List[int] = []
                for start, length in _chunk_runs(chunk):
                    pairs.append(start)
                    pairs.append(length - 1)
                payload = array("H", pairs)
            count = (
                len(payload) // 2 if kind == _KIND_RUN else len(payload)
            )
            out += key.to_bytes(2, "little")
            out += bytes((kind, 0))
            out += count.to_bytes(4, "little")
            out += payload.tobytes()
        return bytes(out)

    @classmethod
    def unpack(cls, data: bytes):
        """Inverse of :meth:`pack`; returns ``0`` for empty input."""
        chunks: Dict[int, int] = {}
        view = memoryview(data)
        offset = 0
        while offset < len(view):
            if offset + 8 > len(view):
                raise ValueError("truncated Bitset container header")
            key = int.from_bytes(view[offset : offset + 2], "little")
            kind = view[offset + 2]
            count = int.from_bytes(view[offset + 4 : offset + 8], "little")
            offset += 8
            if kind == _KIND_ARRAY:
                end = offset + 2 * count
                if end > len(view):
                    raise ValueError("truncated array container")
                members = array("H")
                members.frombytes(bytes(view[offset:end]))
                chunk = 0
                for member in members:
                    chunk |= 1 << member
                offset = end
            elif kind == _KIND_BITMAP:
                end = offset + _BITMAP_BYTES
                if end > len(view):
                    raise ValueError("truncated bitmap container")
                chunk = int.from_bytes(view[offset:end], "little")
                offset = end
            elif kind == _KIND_RUN:
                end = offset + 4 * count
                if end > len(view):
                    raise ValueError("truncated run container")
                pairs = array("H")
                pairs.frombytes(bytes(view[offset:end]))
                chunk = 0
                for index in range(0, len(pairs), 2):
                    start, length = pairs[index], pairs[index + 1] + 1
                    chunk |= ((1 << length) - 1) << start
                offset = end
            else:
                raise ValueError(f"unknown container kind {kind}")
            if chunk:
                chunks[key] = chunk
        return cls(chunks) if chunks else 0


def _chunk_members(chunk: int) -> Iterator[int]:
    while chunk:
        low = chunk & -chunk
        yield low.bit_length() - 1
        chunk ^= low


def _chunk_runs(chunk: int) -> Iterator[Tuple[int, int]]:
    """Maximal runs of consecutive set bits as ``(start, length)``."""
    starts = chunk & ~(chunk << 1)
    ends = chunk & ~(chunk >> 1)
    while starts:
        low_s = starts & -starts
        low_e = ends & -ends
        start = low_s.bit_length() - 1
        end = low_e.bit_length() - 1
        yield start, end - start + 1
        starts ^= low_s
        ends ^= low_e


# ----------------------------------------------------------------------
# Storage-polymorphic helpers (int bitset OR Bitset)
# ----------------------------------------------------------------------
def bitset_count(bits) -> int:
    """Cardinality of either representation."""
    return _popcount(bits) if type(bits) is int else bits.count()


def bitset_iter_lids(bits) -> Iterator[int]:
    """Ascending member ids of either representation."""
    if type(bits) is int:
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low
    else:
        yield from bits.iter_lids()


def pack_lids(lids: Iterable[int], compressed: bool):
    """Build a set from ``lids`` in the requested storage (``0`` when
    empty, in both modes)."""
    if compressed:
        return Bitset.from_lids(lids)
    bits = 0
    for lid in lids:
        bits |= 1 << lid
    return bits


def bitset_packed_size(bits) -> Tuple[int, Dict[str, int]]:
    """Representation bytes of either storage, for ``bytes_pts``.

    For the compressed storage this is the packed container size; for
    the int storage it is the dense limb footprint
    (``ceil(bit_length / 8)``) — exactly the asymmetry the compressed
    representation exists to fix, so the two are directly comparable.
    """
    if type(bits) is int:
        if not bits:
            return 0, {}
        return (bits.bit_length() + 7) // 8, {"int": 1}
    return bits.packed_size()


# ----------------------------------------------------------------------
# Flat int64 arenas
# ----------------------------------------------------------------------
class Int64Arena:
    """An append-only flat ``int64`` array with zero-copy shared-memory
    attach.

    The struct-of-arrays storage primitive: constraint tapes
    (:class:`repro.service.pool.FlatTape`) and the VFG edge columns
    (:mod:`repro.vfg.graph`) are arenas, so a worker process can
    publish one and the parent can attach the raw buffer without
    pickling a single Python object.

    Attach protocol: :meth:`to_shared_memory` publishes and returns
    ``(name, length)``; :meth:`attach` maps the segment zero-copy (the
    arena's words then *are* the shared buffer); :meth:`pin` copies an
    attached arena into process-local memory with a single ``memcpy``
    and closes + unlinks the segment — the receiving side's one copy.
    """

    __slots__ = ("words", "_shm")

    def __init__(self, words=None) -> None:
        if words is None:
            self.words = array("q")
        elif isinstance(words, array) and words.typecode == "q":
            self.words = words
        else:
            self.words = array("q", words)
        self._shm = None

    # -- growth ---------------------------------------------------------
    def append(self, word: int) -> None:
        self.words.append(word)

    def extend(self, words: Iterable[int]) -> None:
        self.words.extend(words)

    # -- container protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self.words)

    def __getitem__(self, index):
        return self.words[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self.words)

    def __eq__(self, other) -> bool:
        if isinstance(other, Int64Arena):
            return self.words == other.words
        return NotImplemented

    __hash__ = None

    @property
    def nbytes(self) -> int:
        return len(self.words) * self.words.itemsize

    # -- shared memory --------------------------------------------------
    def to_shared_memory(self) -> Tuple[str, int]:
        """Publish into a fresh segment; returns ``(name, length)``.

        The segment is unregistered from this process's resource
        tracker: ownership transfers to whoever attaches (see
        :meth:`pin`) or scavenges it
        (:func:`repro.service.pool.discard_ops_payload`).
        """
        from multiprocessing import resource_tracker, shared_memory

        shm = shared_memory.SharedMemory(
            create=True, size=max(1, self.nbytes)
        )
        shm.buf[: self.nbytes] = self.words.tobytes()
        name = shm.name
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        shm.close()
        return name, len(self.words)

    @classmethod
    def attach(cls, name: str, length: int) -> "Int64Arena":
        """Map an existing segment zero-copy.

        The returned arena's words alias the shared buffer; call
        :meth:`pin` to localize (and release the segment), or
        :meth:`close` to detach without consuming it.
        """
        from multiprocessing import resource_tracker, shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        itemsize = array("q").itemsize
        arena = cls.__new__(cls)
        arena.words = memoryview(shm.buf)[: length * itemsize].cast("q")
        arena._shm = shm
        return arena

    def pin(self) -> "Int64Arena":
        """Localize an attached arena: one bulk copy out of the shared
        buffer, then close and unlink the segment.  Returns ``self``
        (now backed by process-local memory).  A no-op for arenas that
        were never attached."""
        if self._shm is None:
            return self
        from multiprocessing import resource_tracker

        local = array("q", self.words)
        view = self.words
        self.words = local
        view.release()
        self._shm.close()
        # unlink() sends its own unregister to the resource tracker;
        # re-register first so the two balance (attach() neutralized
        # the attach-time registration already).
        try:
            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        self._shm = None
        return self

    def close(self) -> None:
        """Detach without unlinking (the segment stays published)."""
        if self._shm is not None:
            view = self.words
            self.words = array("q", view)
            view.release()
            self._shm.close()
            self._shm = None

    def __del__(self):  # pragma: no cover - GC ordering dependent
        try:
            if self._shm is not None:
                self.close()
        except Exception:
            pass
