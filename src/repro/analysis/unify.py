"""Steensgaard-style unification pre-pass for the unified tier.

Andersen's analysis is inclusion-based: a copy edge ``s -> d`` means
``pts(s) ⊆ pts(d)``, and the solver pays one propagation per edge per
delta.  Steensgaard's analysis is unification-based: it merges ``s``
and ``d`` into one equivalence class and pays nothing — at the price of
*oversharing*, forcing ``pts(d) ⊆ pts(s)`` too even when ``d`` has
other fact sources.

:func:`presolve_unify` takes the profitable half of that trade.  After
constraint generation and before solving, it union-finds the copy graph
(:class:`~repro.analysis.andersen.DeltaSolver`'s node universe) in two
exact steps:

1. **Offline SCC collapse.**  Every copy cycle's members provably share
   their fixpoint points-to set, so one batch Tarjan sweep collapses
   them all up front (the same collapses lazy cycle detection would
   discover mid-solve, for free).

2. **Guarded chain absorption.**  A node ``d`` is absorbed into ``s``
   when ``s -> d`` is its *only possible* fact source — in the least
   fixpoint ``pts(d) = pts(s)`` exactly, so the merge loses nothing.
   The no-oversharing guard rejects every ``d`` that can gain facts any
   other way:

   - ``d`` holds seeded facts (address-of constraints),
   - ``d`` has more than one distinct copy predecessor,
   - ``d``'s class contains a memory location (stores write into it),
   - ``d`` is a load or gep destination (dereference results arrive as
     the solve discovers pointees),
   - ``d`` is an indirect-call destination, or a function formal while
     any indirect call exists (on-the-fly call-graph edges bind actuals
     to formals mid-solve).

   Absorptions cascade: folding ``d`` into ``s`` can leave ``s``'s next
   successor single-predecessor, so whole copy chains and fan-out trees
   collapse into their heads.

The result is a pre-collapsed node universe handed to the same wave
scheduler — fewer live copy edges, fewer pops, bit-identical results
(the differential suites and the fuzz oracle enforce that contract).
Work is attributed to ``SolverStats.unified_nodes`` and the ``unify``
phase.
"""

from __future__ import annotations

from typing import Set

from repro.analysis.memobjects import PVar


def presolve_unify(solver) -> None:
    """Pre-collapse ``solver``'s copy graph (a freshly constructed
    :class:`~repro.analysis.andersen.DeltaSolver`: constraints
    generated, fixpoint not yet run).

    Storage-polymorphic by construction: the only points-to reads here
    are truthiness tests (``bits[d] or has_loc[d]``), and both the int
    and compressed representations share the int ``0`` empty sentinel,
    so the pass never needs to know which storage the solver runs.
    """
    with solver.stats.phase("unify"):
        solver._offline_collapse()
        protected = _protected_reps(solver)
        find = solver._find
        parent = solver._parent
        bits = solver._bits
        has_loc = solver._has_loc
        copy_in = solver._copy_in
        total = len(solver._nodes)
        # Worklist pass: an absorption can only enable further
        # absorptions at the merged class's successors (two formerly
        # distinct predecessors may now dedup to one), so seed with
        # every node and requeue just those.
        work = list(range(total))
        while work:
            d = work.pop()
            if parent[d] != d or d in protected:
                continue
            if bits[d] or has_loc[d]:
                continue
            ins_ = copy_in[d]
            if not ins_:
                continue
            preds = {find(raw) for raw in ins_}
            preds.discard(d)
            if len(preds) != 1:
                continue
            solver._collapse([preds.pop(), d], unify=True)
            rep = find(d)
            out = solver._copy_out[rep]
            if out:
                work.extend({find(raw) for raw in out} - {rep})


def _protected_reps(solver) -> Set[int]:
    """Union-find representatives that may gain facts from sources
    other than their copy predecessors — never absorb these."""
    find = solver._find
    protected: Set[int] = set()
    for dsts in solver._loads:
        if dsts:
            for dst in dsts:
                protected.add(find(dst))
    for entries in solver._geps:
        if entries:
            for dst, _offset in entries:
                protected.add(find(dst))
    has_icalls = False
    for entries in solver._icalls:
        if entries:
            has_icalls = True
            for _uid, _args, dst in entries:
                if dst >= 0:
                    protected.add(find(dst))
    if has_icalls:
        node_ids = solver._node_ids
        for name, function in solver.module.functions.items():
            for param in function.params:
                nid = node_ids.get(PVar(name, param))
                if nid is not None:
                    protected.add(find(nid))
    return protected
