"""Interprocedural mod/ref analysis over address-taken locations.

Memory-SSA construction (Figure 4) needs to know, for every function and
call site, which address-taken variables may be read (``ref``) or written
(``mod``).  This module computes those sets by collecting each function's
direct accesses and propagating them bottom-up over the call graph to a
fixpoint.

Precision rules (all sound):

- A callee's **non-escaping stack objects** are private to each
  invocation and are not lifted to callers.  Heap objects *are* lifted
  even when non-escaping, because the abstract object merges the
  instances of all invocations (this is exactly the situation of the
  paper's Figure 6, where the allocation wrapper's heap object ``b`` is
  a virtual parameter of ``foo``).
- Heap-cloned objects are lifted to a wrapper's caller only for the
  matching call site.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.ir import instructions as ins
from repro.ir.module import Module
from repro.analysis.andersen import PointerResult
from repro.analysis.callgraph import CallGraph
from repro.analysis.memobjects import HEAP, STACK, MemLoc, MemObject, PVar


class ModRefResult:
    """Per-function and per-call-site mod/ref sets."""

    def __init__(self, module: Module, pointers: PointerResult, callgraph: CallGraph) -> None:
        self.module = module
        self.pointers = pointers
        self.callgraph = callgraph
        self.ref: Dict[str, Set[MemLoc]] = {}
        self.mod: Dict[str, Set[MemLoc]] = {}
        self.escaping: FrozenSet[MemObject] = frozenset()
        self._compute()

    # ------------------------------------------------------------------
    def _compute(self) -> None:
        self.escaping = frozenset(self._escaping_objects())
        direct_ref: Dict[str, Set[MemLoc]] = {}
        direct_mod: Dict[str, Set[MemLoc]] = {}
        for name, function in self.module.functions.items():
            refs: Set[MemLoc] = set()
            mods: Set[MemLoc] = set()
            for instr in function.instructions():
                if isinstance(instr, ins.Load):
                    refs |= self._ptr_locs(name, instr.ptr)
                elif isinstance(instr, ins.Store):
                    locs = self._ptr_locs(name, instr.ptr)
                    mods |= locs
                    refs |= locs  # a χ reads the incoming version
                elif isinstance(instr, ins.Alloc):
                    for obj in self.pointers.alloc_objects.get(instr.uid, ()):
                        locs = set(obj.locs())
                        mods |= locs
                        refs |= locs  # the allocation χ merges the old version
            direct_ref[name] = refs
            direct_mod[name] = mods

        self.ref = {name: set(locs) for name, locs in direct_ref.items()}
        self.mod = {name: set(locs) for name, locs in direct_mod.items()}

        # Bottom-up propagation to fixpoint (cycles need iteration).
        order = self.callgraph.topo_order_bottom_up()
        changed = True
        while changed:
            changed = False
            for caller in order:
                for call_uid in self.callgraph.call_sites[caller]:
                    for callee in self.callgraph.callees.get(call_uid, ()):
                        lifted_ref = self._lift(self.ref[callee], callee, call_uid)
                        lifted_mod = self._lift(self.mod[callee], callee, call_uid)
                        if not lifted_ref <= self.ref[caller]:
                            self.ref[caller] |= lifted_ref
                            changed = True
                        if not lifted_mod <= self.mod[caller]:
                            self.mod[caller] |= lifted_mod
                            changed = True

    def _ptr_locs(self, func: str, ptr: object) -> Set[MemLoc]:
        from repro.ir.values import Var

        if not isinstance(ptr, Var):
            return set()
        return {
            loc
            for loc in self.pointers.pts_var(func, ptr)
            if not loc.obj.is_function
        }

    def _lift(self, locs: Set[MemLoc], callee: str, call_uid: int) -> Set[MemLoc]:
        """Locations of ``callee`` visible at call site ``call_uid``."""
        lifted: Set[MemLoc] = set()
        for loc in locs:
            obj = loc.obj
            if obj.kind == STACK and obj.func == callee and obj not in self.escaping:
                continue  # invocation-private
            if (
                obj.kind == HEAP
                and obj.func == callee
                and obj.context is not None
                and obj.context != call_uid
            ):
                continue  # another call site's heap clone
            lifted.add(loc)
        return lifted

    def _escaping_objects(self) -> Set[MemObject]:
        """Stack objects whose address leaves their owning function.

        An object escapes if its address is stored into memory, is
        returned, or flows into a top-level variable of another function
        (heap-clone namespaces count as their base function).
        """
        escaping: Set[MemObject] = set()
        clone_base = self.pointers.clone_base
        for node, locs in self.pointers.pts.items():
            if isinstance(node, MemLoc):
                escaping.update(loc.obj for loc in locs)
                continue
            assert isinstance(node, PVar)
            holder = clone_base.get(node.func, node.func)
            for loc in locs:
                obj = loc.obj
                if obj.func is None or obj.is_function:
                    continue
                if holder != obj.func or node.name == "<ret>":
                    escaping.add(obj)
        return escaping

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def func_accessed(self, func: str) -> Set[MemLoc]:
        """ref ∪ mod — the function's virtual parameters (Figure 4)."""
        return self.ref[func] | self.mod[func]

    def callsite_mod(self, call: ins.Call) -> Set[MemLoc]:
        """Locations a call may modify (χ at the call site)."""
        out: Set[MemLoc] = set()
        for callee in self.callgraph.callees.get(call.uid, ()):
            out |= self._lift(self.mod[callee], callee, call.uid)
        return out

    def callsite_ref(self, call: ins.Call) -> Set[MemLoc]:
        """Locations a call may read (μ ∪ χ-old at the call site)."""
        out: Set[MemLoc] = set()
        for callee in self.callgraph.callees.get(call.uid, ()):
            out |= self._lift(self.ref[callee], callee, call.uid)
        return out
