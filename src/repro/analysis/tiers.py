"""The precision-tier knob of the tiered solving stack.

Every entry point that runs the pointer analysis —
:func:`repro.analysis.andersen.analyze_pointers`,
:func:`repro.core.usher.prepare_module`, :func:`repro.api.analyze`,
the ``repro`` CLI and the fuzzing harness — resolves its tier through
:func:`resolve_tier`, so one knob controls them all:

1. an explicit ``tier=`` argument wins;
2. otherwise a session default installed by :func:`default_tier`
   (the ``repro report --tier X`` path);
3. otherwise the ``REPRO_TIER`` environment variable (the CI lane runs
   the whole tier-1 suite under ``REPRO_TIER=unified``);
4. otherwise ``"full"`` — the plain eager Andersen fixpoint.

The tiers (see ``docs/internals.md`` § Tiered solving):

- ``full`` — eager Andersen fixpoint, wave-scheduled (the default).
- ``lazy`` — defer the fixpoint; demand forces only the constraint
  slice reachable backward from what is actually queried, memoized
  across queries.  Through :func:`repro.api.analyze` the whole static
  pipeline defers until the first query.
- ``unified`` — Steensgaard-style pre-collapse
  (:mod:`repro.analysis.unify`) union-finds the copy graph before
  solving, with the no-oversharing guard, then solves eagerly on the
  smaller node universe.

Every tier produces bit-identical results (warned uids, Γ verdicts,
:class:`~repro.analysis.andersen.PointerResult` contents); the knob
only trades *when* and *how much* solving work is done.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: The recognized precision tiers, cheapest-semantics first.
TIERS = ("full", "lazy", "unified")

#: Environment variable consulted when no explicit ``tier=`` is given.
TIER_ENV = "REPRO_TIER"

_default_tier: Optional[str] = None


class InvalidTierError(ValueError):
    """A tier name outside :data:`TIERS`."""


def parse_tier(raw: str, origin: str = "--tier") -> str:
    """Validate a user-supplied tier name (CLI flag or env var).

    Raises :class:`InvalidTierError` with a one-line, human-readable
    message — the CLI turns it into a clean non-zero exit instead of a
    traceback."""
    text = (raw or "").strip().lower() if isinstance(raw, str) else raw
    if text not in TIERS:
        known = ", ".join(TIERS)
        raise InvalidTierError(
            f"{origin} must be one of {known}; got {raw!r}"
        )
    return text


def resolve_tier(tier: Optional[str] = None) -> str:
    """The effective solving tier for one analysis (always a member of
    :data:`TIERS`).

    An unset ``REPRO_TIER`` means ``"full"``; a *malformed* one raises
    :class:`InvalidTierError` — a typo'd tier silently running the
    default is exactly the kind of quiet misconfiguration the
    observability layer exists to prevent."""
    if tier is not None:
        return parse_tier(tier, origin="tier")
    if _default_tier is not None:
        return _default_tier
    raw = os.environ.get(TIER_ENV)
    if raw is None:
        return "full"
    return parse_tier(raw, origin=TIER_ENV)


@contextmanager
def default_tier(tier: Optional[str]) -> Iterator[None]:
    """Install ``tier`` as the session default for the enclosed block.

    ``None`` is a no-op (callers can pass an optional CLI argument
    straight through).  Nesting restores the previous default on exit.
    """
    global _default_tier
    if tier is None:
        yield
        return
    previous = _default_tier
    _default_tier = parse_tier(tier, origin="tier")
    try:
        yield
    finally:
        _default_tier = previous
