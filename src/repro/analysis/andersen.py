"""Offset-based field-sensitive Andersen's pointer analysis.

This is the "pointer analysis" box of Figure 3, configured exactly as
Section 4.1 describes the evaluated implementation:

- inclusion-based (Andersen-style) constraint solving,
- field-sensitive with constant offsets, arrays collapsed to a whole,
- on-the-fly call graph for calls through function pointers,
- 1-callsite-sensitive heap cloning for allocation wrapper functions.

Heap cloning works by *constraint instantiation*: for every direct call
site of an allocation wrapper (a non-recursive function returning a heap
object it allocated), the wrapper's constraints are re-generated in a
call-site-specific namespace and its heap objects are cloned with that
call site as context.  After solving, clone points-to sets are merged
back into the wrapper's base variables so downstream phases (memory SSA,
VFG) see the union while still distinguishing per-call-site objects.

Two constraint solvers share the constraint generator:

- :class:`DeltaSolver` (the default) is the scalable engine: points-to
  sets are interned integer bitsets, each worklist pop propagates only
  the node's *delta* (facts added since it was last processed), and
  copy-edge cycles are collapsed online onto a union-find
  representative via lazy cycle detection.  Its default worklist
  discipline is *wave scheduling* (``schedule="wave"``): instead of
  popping nodes one at a time, each wave topologically orders the
  copy-edge DAG reachable from the dirty frontier and pops in that
  order, so a delta crosses the whole DAG in one sweep and every node
  is offered its merged delta once per wave.  ``schedule="fifo"``
  restores the plain pop loop (the PR-1 behavior, kept for
  differential testing and benchmarking).
- :class:`ReferenceSolver` (``use_reference=True``) is the original
  naive worklist that re-propagates full points-to sets; it is kept as
  the differential-testing oracle.

With ``jobs > 1`` (or ``REPRO_JOBS`` set), per-function constraint
generation is sharded across a fork-start process pool
(:mod:`repro.analysis.shardgen`): each worker interns its own symbols
and returns a compact op tape, and the parent replays the tapes in
module order through a per-shard table remap — the solver state after
the merge is exactly the serial generator's, so results cannot differ.

Every schedule/jobs combination produces bit-for-bit identical
:class:`PointerResult` contents (SCC representatives are expanded back
to their members before results are built) and all report their work
through :class:`~repro.analysis.solverstats.SolverStats`.
"""

from __future__ import annotations

import heapq
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Value, Var
from repro.analysis.memobjects import (
    HEAP,
    MemLoc,
    MemObject,
    PVar,
    function_object,
    global_object,
)
from repro.analysis.bitsets import (
    Bitset,
    bitset_count,
    bitset_packed_size,
    pack_lids,
    resolve_storage,
)
from repro.analysis.parallel import resolve_jobs
from repro.analysis.solverstats import SolverStats
from repro.analysis.tiers import resolve_tier
from repro.obs.registry import REGISTRY
from repro.obs.trace import TRACE

Node = Union[PVar, MemLoc]

#: Op-tape tags of the sharded constraint generator (see
#: :mod:`repro.analysis.shardgen`); kept here so both the shard
#: collector and the replaying solvers agree on the encoding.
OP_PTS = 0
OP_COPY = 1
OP_LOAD = 2
OP_STORE = 3
OP_GEP = 4
OP_ICALL = 5

try:  # int.bit_count is 3.10+; the fallback keeps 3.9 working.
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover

    def _popcount(bits: int) -> int:
        return bin(bits).count("1")


class PointerResult:
    """Result of the pointer analysis.

    Attributes:
        pts: Points-to sets for top-level variables and memory locations.
        alloc_objects: Abstract objects created by each allocation
            instruction (more than one when heap-cloned).
        global_objects / function_objects: By name.
        call_targets: Resolved callee function names per call uid.
        wrappers: Names of the detected allocation wrapper functions.
        solver_stats: Work counters and phase timings of the solver
            run(s) that produced this result.
    """

    def __init__(self) -> None:
        self.pts: Dict[Node, Set[MemLoc]] = {}
        self.alloc_objects: Dict[int, List[MemObject]] = {}
        self.global_objects: Dict[str, MemObject] = {}
        self.function_objects: Dict[str, MemObject] = {}
        self.call_targets: Dict[int, Set[str]] = {}
        self.wrappers: Set[str] = set()
        #: clone namespace -> base function name (heap cloning)
        self.clone_base: Dict[str, str] = {}
        self.solver_stats: Optional[SolverStats] = None

    def pts_of(self, node: Node) -> FrozenSet[MemLoc]:
        return frozenset(self.pts.get(node, ()))

    def pts_var(self, func: str, var: Var) -> FrozenSet[MemLoc]:
        """Points-to set of top-level variable ``var`` in ``func``.

        SSA versions are ignored: the pointer analysis is performed on
        the pre-SSA program (Figure 3) and is flow-insensitive.
        """
        return self.pts_of(PVar(func, var.name))

    def data_pts_var(self, func: str, var: Var) -> FrozenSet[MemLoc]:
        """Like :meth:`pts_var` but with function targets filtered out."""
        return frozenset(
            loc for loc in self.pts_var(func, var) if not loc.obj.is_function
        )

    def callees_of(self, call: ins.Call) -> FrozenSet[str]:
        return frozenset(self.call_targets.get(call.uid, ()))

    def all_objects(self) -> List[MemObject]:
        objs: Dict[str, MemObject] = {}
        for obj in self.global_objects.values():
            objs[obj.name] = obj
        for obj_list in self.alloc_objects.values():
            for obj in obj_list:
                objs[obj.name] = obj
        return list(objs.values())


def analyze_pointers(
    module: Module,
    heap_cloning: bool = True,
    use_reference: bool = False,
    schedule: Optional[str] = None,
    jobs: Optional[int] = None,
    tier: Optional[str] = None,
    storage: Optional[str] = None,
) -> PointerResult:
    """Run Andersen's analysis on ``module``.

    With ``heap_cloning`` enabled (the paper's configuration), allocation
    wrappers are detected with a context-insensitive pre-pass and the
    analysis is re-run with their heap objects cloned per call site.

    ``use_reference=True`` selects the original naive worklist solver
    (:class:`ReferenceSolver`) instead of the scalable
    :class:`DeltaSolver`; the results are identical — the flag exists
    for differential testing and benchmarking.

    ``schedule`` picks the :class:`DeltaSolver` worklist discipline:
    ``"wave"`` (the default) or ``"fifo"`` (the PR-1 pop loop); the
    reference solver ignores it.  ``jobs`` shards constraint generation
    across that many worker processes (``None`` defers to the session
    default / ``REPRO_JOBS``; defaulted counts fall back to serial below
    :data:`~repro.analysis.parallel.PARALLEL_MIN_OPS` instructions —
    logged in ``SolverStats.gen_serial_fallbacks``; 1 is strictly
    serial).  ``tier`` picks the solving tier (``None`` defers to the
    session default / ``REPRO_TIER``): ``"full"`` solves eagerly,
    ``"unified"`` runs the :mod:`repro.analysis.unify` Steensgaard-style
    pre-collapse before each solve pass, ``"lazy"`` defers the fixpoint
    so callers force only the slices they query.  ``storage`` picks the
    :class:`DeltaSolver` points-to representation (``None`` defers to
    the session default / ``REPRO_STORAGE``): ``"int"`` keeps dense int
    bitsets, ``"compressed"`` stores each set as roaring-style chunked
    containers (:mod:`repro.analysis.bitsets`), ``"auto"`` switches to
    compressed above
    :data:`~repro.analysis.bitsets.COMPRESSED_MIN_OPS` instructions.
    None of these knobs can change the result — all are pure
    wall-clock/memory choices (the reference solver ignores ``tier``
    and ``storage``).
    """
    tier = resolve_tier(tier)
    if schedule is None:
        schedule = "wave"
    if schedule not in ("wave", "fifo"):
        raise ValueError(f"unknown solver schedule: {schedule!r}")
    module_ops = sum(
        1
        for function in module.functions.values()
        for _ in function.instructions()
    )
    storage = resolve_storage(storage, ops=module_ops)
    effective_jobs = resolve_jobs(jobs, ops=module_ops)
    serial_fallback = (
        jobs is None and effective_jobs == 1 and resolve_jobs(jobs) > 1
    )

    if use_reference:
        stats = SolverStats(
            solver=ReferenceSolver.kind, schedule="fifo", tier="full"
        )

        def make(wrappers: FrozenSet[str]) -> "_SolverBase":
            if serial_fallback:
                stats.gen_serial_fallbacks += 1
            return ReferenceSolver(
                module, wrappers=wrappers, stats=stats, jobs=effective_jobs
            )

    else:
        stats = SolverStats(
            solver=DeltaSolver.kind,
            schedule=schedule,
            tier=tier,
            storage=storage,
        )
        lazy = tier == "lazy"

        def make(wrappers: FrozenSet[str]) -> "_SolverBase":
            if serial_fallback:
                stats.gen_serial_fallbacks += 1
            solver = DeltaSolver(
                module,
                wrappers=wrappers,
                stats=stats,
                jobs=effective_jobs,
                schedule=schedule,
                lazy=lazy,
                storage=storage,
            )
            if tier == "unified":
                from repro.analysis.unify import presolve_unify

                presolve_unify(solver)
            return solver

    def finish(solver: "_SolverBase") -> PointerResult:
        # Lazy tier: settle any deferred work outside the finalize
        # phase so solve time is attributed to "solve", not "finalize".
        if isinstance(solver, DeltaSolver):
            solver.force_all()
        result = solver.result()
        REGISTRY.record_solver(
            stats, schedule=stats.schedule, jobs=effective_jobs
        )
        return result

    with TRACE.span(
        "pointer_analysis",
        tier=stats.tier,
        storage=stats.storage,
        schedule=stats.schedule,
        jobs=effective_jobs,
    ):
        base = make(frozenset())
        base.solve()
        if not heap_cloning:
            return finish(base)
        if isinstance(base, DeltaSolver):
            base.force_wrapper_candidates()
        with stats.phase("wrappers"):
            wrappers = base.detect_wrappers()
        if not wrappers:
            return finish(base)
        refined = make(frozenset(wrappers))
        refined.solve()
        result = finish(refined)
        result.wrappers = set(wrappers)
        return result


class _SolverBase:
    """Constraint generation, call binding and result construction.

    Subclasses supply the constraint store and the fixpoint loop via the
    primitive hooks ``_add_pts`` / ``_add_copy`` / ``_add_load`` /
    ``_add_store`` / ``_add_gep`` / ``_add_icall`` / ``solve`` plus the
    result accessors ``_node_pts`` / ``_final_pts``.
    """

    kind = "abstract"

    def __init__(
        self,
        module: Module,
        wrappers: FrozenSet[str],
        stats: Optional[SolverStats] = None,
        jobs: int = 1,
        recursive: Optional[Set[str]] = None,
    ) -> None:
        self.module = module
        self.wrappers = wrappers
        self.stats = stats if stats is not None else SolverStats(solver=self.kind)
        self.jobs = max(1, jobs)

        self.global_objects: Dict[str, MemObject] = {}
        self.function_objects: Dict[str, MemObject] = {}
        self.alloc_objects: Dict[int, List[MemObject]] = {}
        self.call_targets: Dict[int, Set[str]] = {}
        #: (call uid, callee) pairs already bound through a function
        #: pointer — the guard that keeps recursive function-pointer
        #: cycles from re-binding (and hence re-touching) forever.
        self.bound_icalls: Set[Tuple[int, str]] = set()
        #: clone namespace -> base function name
        self.clone_base: Dict[str, str] = {}
        #: (wrapper, callsite uid) namespaces already instantiated
        self._instantiated: Set[Tuple[str, int]] = set()
        self._recursive = (
            recursive if recursive is not None else _recursive_functions(module)
        )

        with self.stats.phase("constraints"):
            self._seed()

    # ------------------------------------------------------------------
    # Primitive hooks (constraint store)
    # ------------------------------------------------------------------
    def _add_pts(self, node: Node, loc: MemLoc) -> None:
        raise NotImplementedError

    def _add_copy(self, src: Node, dst: Node) -> None:
        raise NotImplementedError

    def _add_load(self, ptr: Node, dst: Node) -> None:
        raise NotImplementedError

    def _add_store(self, ptr: Node, src: Node) -> None:
        raise NotImplementedError

    def _add_gep(self, base: Node, dst: Node, offset: Optional[int]) -> None:
        raise NotImplementedError

    def _add_icall(
        self,
        callee_node: Node,
        call_uid: int,
        arg_nodes: List[Optional[Node]],
        dst_node: Optional[Node],
    ) -> None:
        raise NotImplementedError

    def solve(self) -> None:
        raise NotImplementedError

    def _node_pts(self, node: Node) -> Set[MemLoc]:
        """Current points-to set of ``node`` (post-solve)."""
        raise NotImplementedError

    def _final_pts(self) -> Dict[Node, Set[MemLoc]]:
        """Per-node points-to sets with any internal sharing expanded
        back to the original nodes."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Constraint generation
    # ------------------------------------------------------------------
    def _seed(self) -> None:
        for glob in self.module.globals.values():
            self.global_objects[glob.name] = global_object(
                glob.name, glob.initialized, glob.size, glob.is_array
            )
        for name in self.module.functions:
            self.function_objects[name] = function_object(name)
        if self.jobs > 1 and len(self.module.functions) > 1:
            from repro.analysis import shardgen

            shards = shardgen.generate_shards(
                self.module, self.wrappers, self._recursive, self.jobs
            )
            if shards is not None:
                self._merge_shards(shards)
                return
        for function in self.module.functions.values():
            self._gen_function(function, ns=function.name, clone_ctx=None)

    def _merge_shards(self, shards) -> None:
        """Deterministically fold sharded constraint generation into
        this solver's store.

        Shards cover contiguous runs of functions in module order and
        each shard's op tape is in generation order, so replaying them
        in sequence reproduces exactly the constraint stream the serial
        ``_seed`` loop would have produced — including the order
        ``alloc_objects`` lists accumulate, which downstream consumers
        rely on.
        """
        for shard in shards:
            self.stats.gen_shards += 1
            if TRACE.enabled and getattr(shard, "spans", None):
                TRACE.adopt(shard.spans)
            self._replay_shard(shard)
            for uid, targets in shard.call_targets.items():
                self.call_targets.setdefault(uid, set()).update(targets)
            self.clone_base.update(shard.clone_base)
            self._instantiated.update(shard.instantiated)
            for uid, objs in shard.alloc_objects.items():
                known = self.alloc_objects.setdefault(uid, [])
                for obj in objs:
                    if obj not in known:
                        known.append(obj)

    def _replay_shard(self, shard) -> None:
        """Replay a shard's flat word arena through the object-level
        hooks — index arithmetic over the ``int64`` buffer, no op
        tuples materialized.

        :class:`DeltaSolver` overrides this with an id-level replay
        that crosses the interning boundary once per distinct symbol
        instead of once per op.
        """
        from repro.analysis.shardgen import GEP_NONE

        syms = shard.syms
        words = shard.words
        i = 0
        n = len(words)
        while i < n:
            tag = words[i]
            if tag == OP_COPY:
                self._add_copy(syms[words[i + 1]], syms[words[i + 2]])
                i += 3
            elif tag == OP_PTS:
                self._add_pts(syms[words[i + 1]], syms[words[i + 2]])
                i += 3
            elif tag == OP_LOAD:
                self._add_load(syms[words[i + 1]], syms[words[i + 2]])
                i += 3
            elif tag == OP_STORE:
                self._add_store(syms[words[i + 1]], syms[words[i + 2]])
                i += 3
            elif tag == OP_GEP:
                offset = words[i + 3]
                self._add_gep(
                    syms[words[i + 1]],
                    syms[words[i + 2]],
                    None if offset == GEP_NONE else offset,
                )
                i += 4
            else:  # OP_ICALL
                nargs = words[i + 3]
                args = [
                    syms[a] if a >= 0 else None
                    for a in words[i + 4 : i + 4 + nargs]
                ]
                dst_sid = words[i + 4 + nargs]
                dst = syms[dst_sid] if dst_sid >= 0 else None
                self._add_icall(syms[words[i + 1]], words[i + 2], args, dst)
                i += 5 + nargs

    def _ret_node(self, ns: str) -> PVar:
        return PVar(ns, "<ret>")

    def _alloc_object(
        self, instr: ins.Alloc, func: str, ctx: Optional[int]
    ) -> MemObject:
        suffix = f"@cs{ctx}" if ctx is not None else ""
        obj = MemObject(
            name=f"{instr.obj_name}{suffix}",
            kind=instr.kind,
            initialized=instr.initialized,
            is_array=instr.is_array,
            size=instr.size,
            func=func,
            alloc_uid=instr.uid,
            context=ctx,
        )
        self.alloc_objects.setdefault(instr.uid, [])
        if obj not in self.alloc_objects[instr.uid]:
            self.alloc_objects[instr.uid].append(obj)
        return obj

    def _gen_function(
        self, function: Function, ns: str, clone_ctx: Optional[int]
    ) -> None:
        """Generate constraints for ``function`` under namespace ``ns``."""
        for instr in function.instructions():
            self._gen_instr(function, instr, ns, clone_ctx)

    def _gen_instr(
        self,
        function: Function,
        instr: ins.Instr,
        ns: str,
        clone_ctx: Optional[int],
    ) -> None:
        def node(value: Value) -> Optional[Node]:
            if isinstance(value, Var):
                return PVar(ns, value.name)
            return None

        if isinstance(instr, ins.Alloc):
            obj = self._alloc_object(instr, function.name, clone_ctx)
            self._add_pts(PVar(ns, instr.dst.name), MemLoc(obj, 0))
        elif isinstance(instr, ins.GlobalAddr):
            obj = self.global_objects[instr.global_name]
            self._add_pts(PVar(ns, instr.dst.name), MemLoc(obj, 0))
        elif isinstance(instr, ins.FuncAddr):
            obj = self.function_objects[instr.func_name]
            self._add_pts(PVar(ns, instr.dst.name), MemLoc(obj, 0))
        elif isinstance(instr, ins.Copy):
            src = node(instr.src)
            if src is not None:
                self._add_copy(src, PVar(ns, instr.dst.name))
        elif isinstance(instr, ins.Phi):
            for value in instr.incomings.values():
                src = node(value)
                if src is not None:
                    self._add_copy(src, PVar(ns, instr.dst.name))
        elif isinstance(instr, ins.Gep):
            base = node(instr.base)
            if base is not None:
                self._add_gep(base, PVar(ns, instr.dst.name), instr.static_offset)
        elif isinstance(instr, ins.Load):
            ptr = node(instr.ptr)
            if ptr is not None:
                self._add_load(ptr, PVar(ns, instr.dst.name))
        elif isinstance(instr, ins.Store):
            ptr = node(instr.ptr)
            src = node(instr.value)
            if ptr is not None and src is not None:
                self._add_store(ptr, src)
        elif isinstance(instr, ins.Ret):
            value = node(instr.value) if instr.value is not None else None
            if value is not None:
                self._add_copy(value, self._ret_node(ns))
        elif isinstance(instr, ins.Call):
            self._gen_call(instr, ns)

    def _gen_call(self, call: ins.Call, ns: str) -> None:
        arg_nodes: List[Optional[Node]] = [
            PVar(ns, a.name) if isinstance(a, Var) else None for a in call.args
        ]
        dst_node = PVar(ns, call.dst.name) if call.dst is not None else None
        if not call.is_indirect:
            self._bind_direct(call.callee, call.uid, arg_nodes, dst_node)
        else:
            callee_node = PVar(ns, call.callee.name)
            self._add_icall(callee_node, call.uid, arg_nodes, dst_node)

    def _bind_direct(
        self,
        callee: str,
        call_uid: int,
        arg_nodes: List[Optional[Node]],
        dst_node: Optional[Node],
    ) -> None:
        self.call_targets.setdefault(call_uid, set()).add(callee)
        target = self.module.functions[callee]
        if callee in self.wrappers and callee not in self._recursive:
            ns = self._instantiate_wrapper(callee, call_uid)
        else:
            ns = callee
        for formal, actual in zip(target.params, arg_nodes):
            if actual is not None:
                self._add_copy(actual, PVar(ns, formal))
        if dst_node is not None:
            self._add_copy(self._ret_node(ns), dst_node)

    def _instantiate_wrapper(self, callee: str, call_uid: int) -> str:
        """Clone ``callee``'s constraints for this call site; return the
        clone namespace."""
        ns = f"{callee}@cs{call_uid}"
        key = (callee, call_uid)
        if key not in self._instantiated:
            self._instantiated.add(key)
            self.clone_base[ns] = callee
            self._gen_function(self.module.functions[callee], ns, call_uid)
        return ns

    def _bind_indirect(
        self,
        callee: str,
        call_uid: int,
        arg_nodes: Iterable[Optional[Node]],
        dst_node: Optional[Node],
    ) -> None:
        """Bind a function-pointer target (no heap cloning through
        indirect calls)."""
        key = (call_uid, callee)
        if key in self.bound_icalls:
            return
        self.bound_icalls.add(key)
        self.stats.icall_bindings += 1
        self.call_targets.setdefault(call_uid, set()).add(callee)
        target = self.module.functions[callee]
        for formal, actual in zip(target.params, arg_nodes):
            if actual is not None:
                self._add_copy(actual, PVar(callee, formal))
        if dst_node is not None:
            self._add_copy(self._ret_node(callee), dst_node)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def detect_wrappers(self) -> Set[str]:
        """Allocation wrappers: non-recursive functions whose return
        value may point to a heap object they allocated."""
        wrappers: Set[str] = set()
        for name, function in self.module.functions.items():
            if name in self._recursive or name == "main":
                continue
            for loc in self._node_pts(self._ret_node(name)):
                if loc.obj.kind == HEAP and loc.obj.func == name:
                    wrappers.add(name)
                    break
        return wrappers

    def _record_memory_stats(self) -> None:
        """Fold this solver pass's memory profile into the stats:
        process peak RSS here, representation bytes in the
        :class:`DeltaSolver` override."""
        try:
            import resource
            import sys

            ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # ru_maxrss is KB on Linux, bytes on macOS.
            scale = 1 if sys.platform == "darwin" else 1024
            self.stats.peak_rss = max(self.stats.peak_rss, ru_maxrss * scale)
        except Exception:  # pragma: no cover - resource always on POSIX
            pass

    def result(self) -> PointerResult:
        with self.stats.phase("finalize"):
            self._record_memory_stats()
            result = PointerResult()
            result.global_objects = dict(self.global_objects)
            result.function_objects = dict(self.function_objects)
            stale = self._stale_base_objects()
            result.alloc_objects = {
                uid: [o for o in objs if o not in stale]
                for uid, objs in self.alloc_objects.items()
            }
            result.call_targets = {
                uid: set(t) for uid, t in self.call_targets.items()
            }
            result.clone_base = dict(self.clone_base)
            merged: Dict[Node, Set[MemLoc]] = {}
            final = self._final_pts()
            # Nodes of one collapsed SCC share a single set object;
            # filter each distinct object once.  The ids are stable
            # because ``final`` keeps every set alive for the loop.
            filtered: Dict[int, Set[MemLoc]] = {}
            for node, raw in final.items():
                locs = filtered.get(id(raw))
                if locs is None:
                    locs = {loc for loc in raw if loc.obj not in stale}
                    filtered[id(raw)] = locs
                if not locs:
                    continue
                target = node
                if isinstance(node, PVar) and node.func in self.clone_base:
                    target = PVar(self.clone_base[node.func], node.name)
                merged.setdefault(target, set()).update(locs)
                if target != node:
                    merged.setdefault(node, set()).update(locs)
            result.pts = merged
            result.solver_stats = self.stats
        return result

    def _stale_base_objects(self) -> Set[MemObject]:
        """Base (context-free) objects of wrappers all of whose call
        sites were cloned.  Nothing can concretely refer to them: every
        actual allocation is represented by a per-call-site clone."""
        stale: Set[MemObject] = set()
        for wrapper in self.wrappers:
            if wrapper in self._recursive:
                continue
            call_uids = {
                uid
                for uid, targets in self.call_targets.items()
                if wrapper in targets
            }
            if not call_uids:
                continue
            cloned_uids = {
                uid for (name, uid) in self._instantiated if name == wrapper
            }
            if not call_uids <= cloned_uids:
                continue
            for objs in self.alloc_objects.values():
                for obj in objs:
                    if obj.func == wrapper and obj.context is None:
                        stale.add(obj)
        return stale


class ReferenceSolver(_SolverBase):
    """The original naive worklist solver (the differential oracle).

    Every pop re-propagates the node's *entire* points-to set across all
    of its copy / gep / load / store / icall edges; copy cycles are
    re-iterated until fixpoint instead of being collapsed.  Kept
    intentionally simple — its whole value is being obviously correct.
    """

    kind = "reference"

    def __init__(
        self,
        module: Module,
        wrappers: FrozenSet[str],
        stats: Optional[SolverStats] = None,
        jobs: int = 1,
        recursive: Optional[Set[str]] = None,
    ) -> None:
        self.pts: Dict[Node, Set[MemLoc]] = {}
        self.copy_edges: Dict[Node, Set[Node]] = {}
        self.loads: Dict[Node, List[Node]] = {}
        self.stores: Dict[Node, List[Node]] = {}
        self.geps: Dict[Node, List[Tuple[Node, Optional[int]]]] = {}
        self.icalls: Dict[
            Node, List[Tuple[int, List[Optional[Node]], Optional[Node]]]
        ] = {}
        self.worklist: List[Node] = []
        self.dirty: Set[Node] = set()
        super().__init__(module, wrappers, stats, jobs=jobs, recursive=recursive)

    # -- constraint store ----------------------------------------------
    def _points(self, node: Node) -> Set[MemLoc]:
        return self.pts.setdefault(node, set())

    def _touch(self, node: Node) -> None:
        if node not in self.dirty:
            self.dirty.add(node)
            self.worklist.append(node)
            self.stats.note_worklist(len(self.worklist))

    def _add_pts(self, node: Node, loc: MemLoc) -> None:
        if loc not in self._points(node):
            self.pts[node].add(loc)
            self._touch(node)

    def _add_copy(self, src: Node, dst: Node) -> None:
        edges = self.copy_edges.setdefault(src, set())
        if dst not in edges:
            edges.add(dst)
            self.stats.copy_edges += 1
            if self.pts.get(src):
                self._touch(src)

    def _add_load(self, ptr: Node, dst: Node) -> None:
        self.loads.setdefault(ptr, []).append(dst)
        self._touch(ptr)

    def _add_store(self, ptr: Node, src: Node) -> None:
        self.stores.setdefault(ptr, []).append(src)
        self._touch(ptr)

    def _add_gep(self, base: Node, dst: Node, offset: Optional[int]) -> None:
        self.geps.setdefault(base, []).append((dst, offset))
        self._touch(base)

    def _add_icall(
        self,
        callee_node: Node,
        call_uid: int,
        arg_nodes: List[Optional[Node]],
        dst_node: Optional[Node],
    ) -> None:
        self.icalls.setdefault(callee_node, []).append(
            (call_uid, arg_nodes, dst_node)
        )
        self._touch(callee_node)

    # -- fixpoint ------------------------------------------------------
    def solve(self) -> None:
        self.stats.solve_passes += 1
        with self.stats.phase("solve"):
            self._run()
        self.stats.live_copy_edges = sum(
            len(dsts) for dsts in self.copy_edges.values()
        )

    def _run(self) -> None:
        while self.worklist:
            node = self.worklist.pop()
            self.dirty.discard(node)
            current = frozenset(self._points(node))
            if not current:
                continue
            self.stats.pops += 1
            # Copy edges: pts(node) ⊆ pts(dst).
            for dst in list(self.copy_edges.get(node, ())):
                self._merge_into(dst, current)
            # Gep: shifted targets.
            for dst, offset in self.geps.get(node, ()):
                shifted = {
                    target
                    for loc in current
                    if not loc.obj.is_function
                    for target in loc.shifted(offset)
                }
                self._merge_into(dst, shifted)
            # Loads: *node -> dst.
            for dst in self.loads.get(node, ()):
                for loc in current:
                    if loc.obj.is_function:
                        continue
                    self._add_copy(loc, dst)
            # Stores: src -> *node.
            for src in self.stores.get(node, ()):
                for loc in current:
                    if loc.obj.is_function:
                        continue
                    self._add_copy(src, loc)
            # Indirect calls through node.
            for call_uid, args, dst in self.icalls.get(node, ()):
                for loc in current:
                    if (
                        loc.obj.is_function
                        and loc.obj.func in self.module.functions
                        and (call_uid, loc.obj.func) not in self.bound_icalls
                    ):
                        self._bind_indirect(loc.obj.func, call_uid, args, dst)

    def _merge_into(
        self, dst: Node, locs: "frozenset[MemLoc] | set[MemLoc]"
    ) -> None:
        if not locs:
            return
        self.stats.facts_propagated += len(locs)
        target = self._points(dst)
        if not locs <= target:
            added = len(locs - target)
            target.update(locs)
            self.stats.facts_added += added
            self._touch(dst)

    # -- results -------------------------------------------------------
    def _node_pts(self, node: Node) -> Set[MemLoc]:
        return self.pts.get(node, set())

    def _final_pts(self) -> Dict[Node, Set[MemLoc]]:
        return self.pts


class DeltaSolver(_SolverBase):
    """Scalable solver: difference propagation over interned bitsets
    with online copy-cycle collapsing.

    Representation
        Every :class:`MemLoc` is interned to an integer bit index, so a
        points-to set is a bitset over those ids and set algebra
        (union, difference, subset) is machine-word arithmetic.  With
        ``storage="int"`` (the default) each set is a plain Python int;
        ``storage="compressed"`` swaps in
        :class:`repro.analysis.bitsets.Bitset` — roaring-style chunked
        containers with the same operator surface, so the solver core
        below is storage-polymorphic and both modes run the identical
        code path (the int ``0`` is the shared empty-set sentinel, and
        compressed iteration is ascending like int low-bit-first, so
        every deterministic counter is bit-identical across storages).
        Every graph node (PVar or MemLoc) is likewise interned to a
        dense integer id; all solver-core state (bitsets, deltas,
        union-find parents, edge tables) lives in lists indexed by node
        id, so the hot loops never hash a dataclass.

    Difference propagation
        ``_bits[n]`` is the full set, ``_delta[n]`` the subset not yet
        pushed along ``n``'s outgoing edges.  A pop propagates only the
        delta; a *new* edge immediately receives the source's full set
        once, preserving the invariant that processed facts have crossed
        every edge that existed when they were processed.

    Online cycle elimination
        When pushing a delta along a copy edge changes nothing and both
        endpoints' sets are equal, the edge is suspected to close a
        cycle (lazy cycle detection, Hardekopf & Lin style; each edge
        triggers at most once).  A Tarjan sweep over the copy graph
        collapses every multi-node SCC onto a union-find
        representative, redirecting the copy / load / store / gep /
        icall edge tables through ``_find``.

    Wave scheduling
        With ``schedule="wave"`` (the default) the fixpoint loop runs
        in *waves*: each wave snapshots the dirty frontier, orders the
        copy-edge subgraph reachable from it in reverse postorder
        (topological once cycles are collapsed), and pops nodes in that
        order.  A delta entering the top of a copy chain reaches the
        bottom within the same wave, and because every downstream node
        is popped after all its in-wave predecessors, it is offered the
        *merged* delta exactly once — the FIFO loop would re-pop it per
        predecessor.  ``schedule="fifo"`` keeps the plain pop loop.
        Both reach the same least fixpoint (monotone confluence), so
        results are bit-identical; only the work profile differs.
    """

    kind = "delta"

    _LCD_BASE_THRESHOLD = 16
    _LCD_MAX_THRESHOLD = 4096

    def __init__(
        self,
        module: Module,
        wrappers: FrozenSet[str],
        stats: Optional[SolverStats] = None,
        jobs: int = 1,
        recursive: Optional[Set[str]] = None,
        schedule: str = "wave",
        lazy: bool = False,
        storage: str = "int",
    ) -> None:
        if schedule not in ("wave", "fifo"):
            raise ValueError(f"unknown solver schedule: {schedule!r}")
        if storage not in ("int", "compressed"):
            raise ValueError(f"unknown solver storage: {storage!r}")
        self.schedule = schedule
        #: points-to representation: dense Python ints or roaring-style
        #: compressed Bitsets (resolved — never "auto" here).
        self.storage = storage
        self._compressed = storage == "compressed"
        #: wave-mode bookkeeping: the ord-keyed heap of reps scheduled
        #: in the wave currently being processed (None outside a wave),
        #: the set of reps it holds, and the ord of the rep being popped
        #: right now.
        self._wave_heap: Optional[List[Tuple[int, int]]] = None
        self._wave_members: Set[int] = set()
        self._wave_cursor_ord = -1
        #: Pearce–Kelly incremental topological order: ``_ord[rep]`` is
        #: the rep's position.  Until :meth:`_init_pk_order` runs (at the
        #: first wave-mode solve) ords are creation indices and
        #: ``_pk_live`` is False; afterwards the order is maintained
        #: online per inserted copy edge and cycles are collapsed
        #: eagerly at insertion.
        self._ord: List[int] = []
        self._next_ord = 0
        self._pk_live = False
        self._offline_collapsed = False
        #: lazy tier: the demand-forced constraint slice — raw node ids
        #: whose backward closure has been pulled in, the union-find
        #: reps the restricted fixpoint is allowed to pop, and the
        #: one-shot conservative closures (stores once any MemLoc class
        #: enters the slice; indirect-call callees on the first force).
        self._lazy = lazy
        self._complete = False
        self._forcing = False
        self._slice: Set[int] = set()
        self._slice_reps: Set[int] = set()
        self._slice_grew = False
        self._stores_pulled = False
        self._store_pairs: List[Tuple[int, int]] = []
        self._icall_callee_ids: List[int] = []
        #: interning: MemLoc <-> bit index
        self._locs: List[MemLoc] = []
        self._loc_ids: Dict[MemLoc, int] = {}
        self._loc_nids: List[int] = []  #: bit index -> node id (lazy)
        self._func_mask = 0
        #: interning: graph node <-> dense node id.  Everything below is
        #: a list indexed by node id.
        self._nodes: List[Node] = []
        self._node_ids: Dict[Node, int] = {}
        self._parent: List[int] = []  #: union-find forest
        self._bits: List[int] = []  #: full points-to bitset
        self._delta: List[int] = []  #: unpropagated subset of _bits
        self._copy_out: List[Optional[Set[int]]] = []
        #: reverse copy adjacency (raw source ids per rep) — drives the
        #: Pearce–Kelly backward pass, the unify pre-collapse and the
        #: lazy backward closure
        self._copy_in: List[Optional[Set[int]]] = []
        #: lazy-tier reverse indexes: raw base/ptr ids per gep/load dst
        #: rep (populated only when ``lazy``)
        self._rev_geps: List[Optional[Set[int]]] = []
        self._rev_loads: List[Optional[Set[int]]] = []
        #: whether the node's union-find class contains a MemLoc (store
        #: targets — the oversharing guard and the lazy store closure)
        self._has_loc: List[bool] = []
        self._loads: List[Optional[Set[int]]] = []
        self._stores: List[Optional[Set[int]]] = []
        self._geps: List[Optional[Set[Tuple[int, Optional[int]]]]] = []
        #: entries are (call uid, arg node ids with -1 for None, dst
        #: node id or -1)
        self._icalls: List[Optional[Set[Tuple[int, Tuple[int, ...], int]]]] = []
        #: copy edges already considered by lazy cycle detection, packed
        #: as (src_rep << 32) | dst_rep
        self._checked_edges: Set[int] = set()
        #: source nodes of suspicious no-op edges seen since the last
        #: cycle sweep; a sweep is batched until enough accumulate
        #: (exponential back-off when a sweep finds nothing to collapse
        #: keeps the total sweep cost linear in practice) and is rooted
        #: at the suspects only — any copy cycle through a suspect edge
        #: is reachable from that edge's source
        self._lcd_suspects: List[int] = []
        self._lcd_threshold = self._LCD_BASE_THRESHOLD
        self.worklist: List[int] = []
        self.dirty: Set[int] = set()
        super().__init__(module, wrappers, stats, jobs=jobs, recursive=recursive)
        self.stats.schedule = schedule
        self.stats.storage = storage

    # -- interning -----------------------------------------------------
    def _nid(self, node: Node) -> int:
        nid = self._node_ids.get(node)
        if nid is None:
            nid = len(self._nodes)
            self._node_ids[node] = nid
            self._nodes.append(node)
            self._parent.append(nid)
            self._bits.append(0)
            self._delta.append(0)
            self._copy_out.append(None)
            self._copy_in.append(None)
            self._rev_geps.append(None)
            self._rev_loads.append(None)
            self._has_loc.append(isinstance(node, MemLoc))
            self._loads.append(None)
            self._stores.append(None)
            self._geps.append(None)
            self._icalls.append(None)
            self._ord.append(self._next_ord)
            self._next_ord += 1
        return nid

    def _single(self, lid: int):
        """The singleton set ``{lid}`` in this solver's storage."""
        if self._compressed:
            return Bitset.single(lid)
        return 1 << lid

    def _pack_lids(self, lids: Iterable[int]):
        """A set holding ``lids`` in this solver's storage (the int
        ``0`` when empty, in both modes)."""
        return pack_lids(lids, self._compressed)

    def _lid(self, loc: MemLoc) -> int:
        lid = self._loc_ids.get(loc)
        if lid is None:
            lid = len(self._locs)
            self._loc_ids[loc] = lid
            self._locs.append(loc)
            self._loc_nids.append(-1)
            if loc.obj.is_function:
                self._func_mask |= self._single(lid)
        return lid

    def _loc_node(self, lid: int) -> int:
        """Node id of the MemLoc with bit index ``lid``."""
        nid = self._loc_nids[lid]
        if nid < 0:
            nid = self._nid(self._locs[lid])
            self._loc_nids[lid] = nid
        return nid

    def _iter_lids(self, bits) -> Iterator[int]:
        if type(bits) is int:
            while bits:
                low = bits & -bits
                yield low.bit_length() - 1
                bits ^= low
        else:
            yield from bits.iter_lids()

    def _iter_locs(self, bits) -> Iterator[MemLoc]:
        locs = self._locs
        if type(bits) is int:
            while bits:
                low = bits & -bits
                yield locs[low.bit_length() - 1]
                bits ^= low
        else:
            for lid in bits.iter_lids():
                yield locs[lid]

    def _shift_bits(self, bits, offset: Optional[int]):
        lids: List[int] = []
        for loc in self._iter_locs(bits):
            for target in loc.shifted(offset):
                lids.append(self._lid(target))
        return self._pack_lids(lids)

    # -- union-find ----------------------------------------------------
    def _find(self, nid: int) -> int:
        parent = self._parent
        root = parent[nid]
        if root == nid:
            return nid
        while parent[root] != root:
            root = parent[root]
        while parent[nid] != root:
            parent[nid], nid = root, parent[nid]
        return root

    # -- constraint store ----------------------------------------------
    def _touch(self, rep: int) -> None:
        if rep in self.dirty:
            return
        self.dirty.add(rep)
        heap = self._wave_heap
        if heap is not None and self._ord[rep] > self._wave_cursor_ord:
            # Dirtied mid-wave at a downstream position: schedule it
            # into the current wave instead of deferring to the next.
            if rep not in self._wave_members:
                self._wave_members.add(rep)
                heapq.heappush(heap, (self._ord[rep], rep))
            return
        self.worklist.append(rep)
        self.stats.note_worklist(len(self.worklist))

    def _processed(self, rep: int) -> int:
        """Facts of ``rep`` already pushed along its existing edges —
        what a newly added edge must catch up on."""
        return self._bits[rep] & ~self._delta[rep]

    def _pts_ids(self, nid: int, lid: int) -> None:
        rep = self._find(nid)
        bit = self._single(lid)
        if not self._bits[rep] & bit:
            self._bits[rep] |= bit
            self._delta[rep] |= bit
            self.stats.facts_added += 1
            self._touch(rep)

    def _add_pts(self, node: Node, loc: MemLoc) -> None:
        self._pts_ids(self._nid(node), self._lid(loc))

    def _offer(self, dst: int, bits) -> bool:
        """Push ``bits`` into ``dst``'s set; True if anything was new."""
        if not bits:
            return False
        rep = self._find(dst)
        self.stats.facts_propagated += bitset_count(bits)
        cur = self._bits[rep]
        new = bits & ~cur
        if not new:
            return False
        self._bits[rep] = cur | new
        self._delta[rep] |= new
        self.stats.facts_added += bitset_count(new)
        if rep in self.dirty:
            # Already scheduled.  In wave mode, if the recipient sits
            # later in the current wave's topological order, these bits
            # ride along with its single in-wave pop — a FIFO loop
            # would have queued a separate re-pop for them.
            if (
                self._wave_heap is not None
                and rep in self._wave_members
                and self._ord[rep] > self._wave_cursor_ord
            ):
                self.stats.wave_reoffers_avoided += 1
        else:
            self._touch(rep)
        return True

    def _copy_ids(self, src: int, dst: int) -> None:
        s, d = self._find(src), self._find(dst)
        if s == d:
            return
        out = self._copy_out[s]
        if out is None:
            out = self._copy_out[s] = set()
        elif d in out:
            return
        out.add(d)
        ins_ = self._copy_in[d]
        if ins_ is None:
            ins_ = self._copy_in[d] = set()
        ins_.add(s)
        self.stats.copy_edges += 1
        if self._pk_live and self._ord[d] < self._ord[s]:
            self._pk_insert(s, d)
            s = self._find(s)
            d = self._find(d)
            if s == d:
                return
        if (
            self._forcing
            and d in self._slice_reps
            and s not in self._slice_reps
        ):
            # A dynamic edge landed inside the demand slice from
            # outside: grow the slice so the source's facts flow.
            self._extend_slice(s)
        # A new edge must catch up on the facts the source has already
        # propagated; the unprocessed delta crosses it at the next pop.
        bits = self._bits[s] & ~self._delta[s]
        if bits:
            self._offer(d, bits)

    def _add_copy(self, src: Node, dst: Node) -> None:
        self._copy_ids(self._nid(src), self._nid(dst))

    def _load_ids(self, ptr_id: int, dst_id: int) -> None:
        rep = self._find(ptr_id)
        dsts = self._loads[rep]
        if dsts is None:
            dsts = self._loads[rep] = set()
        elif dst_id in dsts:
            return
        dsts.add(dst_id)
        if self._lazy:
            drep = self._find(dst_id)
            ptrs = self._rev_loads[drep]
            if ptrs is None:
                ptrs = self._rev_loads[drep] = set()
            ptrs.add(ptr_id)
        for lid in self._iter_lids(self._processed(rep) & ~self._func_mask):
            self._copy_ids(self._loc_node(lid), dst_id)

    def _add_load(self, ptr: Node, dst: Node) -> None:
        self._load_ids(self._nid(ptr), self._nid(dst))

    def _store_ids(self, ptr_id: int, src_id: int) -> None:
        rep = self._find(ptr_id)
        srcs = self._stores[rep]
        if srcs is None:
            srcs = self._stores[rep] = set()
        elif src_id in srcs:
            return
        srcs.add(src_id)
        if self._lazy:
            self._store_pairs.append((ptr_id, src_id))
        for lid in self._iter_lids(self._processed(rep) & ~self._func_mask):
            self._copy_ids(src_id, self._loc_node(lid))

    def _add_store(self, ptr: Node, src: Node) -> None:
        self._store_ids(self._nid(ptr), self._nid(src))

    def _gep_ids(self, base_id: int, dst_id: int, offset: Optional[int]) -> None:
        rep = self._find(base_id)
        entry = (dst_id, offset)
        entries = self._geps[rep]
        if entries is None:
            entries = self._geps[rep] = set()
        elif entry in entries:
            return
        entries.add(entry)
        if self._lazy:
            drep = self._find(dst_id)
            bases = self._rev_geps[drep]
            if bases is None:
                bases = self._rev_geps[drep] = set()
            bases.add(base_id)
        bits = self._processed(rep) & ~self._func_mask
        if bits:
            self._offer(dst_id, self._shift_bits(bits, offset))

    def _add_gep(self, base: Node, dst: Node, offset: Optional[int]) -> None:
        self._gep_ids(self._nid(base), self._nid(dst), offset)

    def _add_icall(
        self,
        callee_node: Node,
        call_uid: int,
        arg_nodes: List[Optional[Node]],
        dst_node: Optional[Node],
    ) -> None:
        args = tuple(-1 if a is None else self._nid(a) for a in arg_nodes)
        dst_id = -1 if dst_node is None else self._nid(dst_node)
        self._icall_ids(self._nid(callee_node), call_uid, args, dst_id)

    def _icall_ids(
        self,
        callee_id: int,
        call_uid: int,
        args: Tuple[int, ...],
        dst_id: int,
    ) -> None:
        rep = self._find(callee_id)
        entry = (call_uid, args, dst_id)
        entries = self._icalls[rep]
        if entries is None:
            entries = self._icalls[rep] = set()
        elif entry in entries:
            return
        entries.add(entry)
        if self._lazy:
            self._icall_callee_ids.append(callee_id)
        locs = self._locs
        for lid in self._iter_lids(self._processed(rep) & self._func_mask):
            name = locs[lid].obj.func
            if (
                name in self.module.functions
                and (call_uid, name) not in self.bound_icalls
            ):
                self._bind_icall_ids(name, call_uid, args, dst_id)

    def _bind_icall_ids(
        self, name: str, call_uid: int, args: Tuple[int, ...], dst_id: int
    ) -> None:
        nodes = self._nodes
        self._bind_indirect(
            name,
            call_uid,
            [nodes[a] if a >= 0 else None for a in args],
            nodes[dst_id] if dst_id >= 0 else None,
        )

    # -- shard replay --------------------------------------------------
    def _replay_shard(self, shard) -> None:
        """Id-level shard replay straight off the flat word arena:
        remap each shard-local symbol to a dense node id once (the
        merge is a table remap), then drive the id-level constraint
        store with index arithmetic over the ``int64`` buffer — the
        hot path materializes no op tuples and never hashes a
        dataclass more than once per distinct symbol."""
        from repro.analysis.shardgen import GEP_NONE

        syms = shard.syms
        words = shard.words
        node_ids: List[int] = [-1] * len(syms)

        def nid(local: int) -> int:
            mapped = node_ids[local]
            if mapped < 0:
                mapped = node_ids[local] = self._nid(syms[local])
            return mapped

        i = 0
        n = len(words)
        while i < n:
            tag = words[i]
            if tag == OP_COPY:
                self._copy_ids(nid(words[i + 1]), nid(words[i + 2]))
                i += 3
            elif tag == OP_PTS:
                self._pts_ids(nid(words[i + 1]), self._lid(syms[words[i + 2]]))
                i += 3
            elif tag == OP_LOAD:
                self._load_ids(nid(words[i + 1]), nid(words[i + 2]))
                i += 3
            elif tag == OP_STORE:
                self._store_ids(nid(words[i + 1]), nid(words[i + 2]))
                i += 3
            elif tag == OP_GEP:
                offset = words[i + 3]
                self._gep_ids(
                    nid(words[i + 1]),
                    nid(words[i + 2]),
                    None if offset == GEP_NONE else offset,
                )
                i += 4
            else:  # OP_ICALL
                nargs = words[i + 3]
                args = tuple(
                    nid(a) if a >= 0 else -1
                    for a in words[i + 4 : i + 4 + nargs]
                )
                dst_sid = words[i + 4 + nargs]
                dst = nid(dst_sid) if dst_sid >= 0 else -1
                self._icall_ids(nid(words[i + 1]), words[i + 2], args, dst)
                i += 5 + nargs

    # -- fixpoint ------------------------------------------------------
    def solve(self) -> None:
        self.stats.solve_passes += 1
        if self._lazy and not self._complete:
            # Lazy tier: the fixpoint is deferred.  force_nodes() /
            # force_all() run restricted / complete fixpoints on demand.
            return
        with self.stats.phase("solve"):
            if self.schedule == "wave":
                self._run_wave()
            else:
                self._run_fifo()
        self.stats.live_copy_edges = self._count_live_copy_edges()

    def _count_live_copy_edges(self) -> int:
        """Distinct rep-level copy edges surviving all collapsing —
        the graph the solver actually propagated over, as opposed to
        ``stats.copy_edges`` which counts edges at insertion time."""
        find = self._find
        parent = self._parent
        total = 0
        for nid, out in enumerate(self._copy_out):
            if not out or parent[nid] != nid:
                continue
            dsts = {find(raw) for raw in out}
            dsts.discard(nid)
            total += len(dsts)
        return total

    def _run_fifo(self) -> None:
        worklist = self.worklist
        dirty = self.dirty
        delta_of = self._delta
        while worklist:
            rep = self._find(worklist.pop())
            if rep not in dirty:
                continue
            dirty.discard(rep)
            delta = delta_of[rep]
            if not delta:
                continue
            delta_of[rep] = 0
            self.stats.pops += 1
            self._propagate(rep, delta)

    def _run_wave(self) -> None:
        """Wave/deep propagation: drain the worklist in topological
        sweeps of the copy-edge DAG instead of one pop at a time.

        Each wave heapifies the dirty frontier keyed by the
        Pearce–Kelly order (:meth:`_init_pk_order` /
        :meth:`_pk_insert`) and pops in ascending order.  Because the
        order is maintained online as copy edges are inserted, no
        per-wave reverse-postorder recomputation is needed; nodes
        dirtied *mid-wave* downstream of the cursor are pushed into the
        same wave's heap, so their merged delta is popped once in this
        wave rather than once per incoming edge.  Mid-wave SCC
        collapses are handled by re-resolving each popped entry through
        ``_find``; stale heap entries are skipped via the dirty check.
        The fixpoint reached is the same as FIFO's — only the schedule
        (and hence pops / propagated facts) differs.
        """
        if not self._pk_live:
            self._init_pk_order()
        worklist = self.worklist
        dirty = self.dirty
        delta_of = self._delta
        find = self._find
        ord_ = self._ord
        stats = self.stats
        heappop = heapq.heappop
        while worklist:
            entries: List[Tuple[int, int]] = []
            members: Set[int] = set()
            for nid in worklist:
                rep = find(nid)
                if rep in dirty and rep not in members:
                    members.add(rep)
                    entries.append((ord_[rep], rep))
            worklist.clear()
            if not entries:
                continue
            heapq.heapify(entries)
            stats.waves += 1
            # Per-wave span — guarded so the hot loop pays only one
            # attribute check per wave when tracing is off.
            wave_span = (
                TRACE.span("wave", index=stats.waves)
                if TRACE.enabled
                else None
            )
            if wave_span is not None:
                wave_span.__enter__()
            self._wave_heap = entries
            self._wave_members = members
            width = 0
            try:
                while entries:
                    key, scheduled = heappop(entries)
                    members.discard(scheduled)
                    self._wave_cursor_ord = key
                    rep = find(scheduled)
                    if rep not in dirty:
                        continue
                    dirty.discard(rep)
                    delta = delta_of[rep]
                    if not delta:
                        continue
                    delta_of[rep] = 0
                    width += 1
                    stats.pops += 1
                    self._propagate(rep, delta)
            finally:
                self._wave_heap = None
                self._wave_members = set()
                self._wave_cursor_ord = -1
                if wave_span is not None:
                    wave_span.tag(width=width)
                    wave_span.__exit__(None, None, None)
            if width > stats.peak_wave_width:
                stats.peak_wave_width = width

    # -- Pearce–Kelly incremental topological order --------------------
    def _init_pk_order(self) -> None:
        """Batch-initialize the incremental order: collapse every SCC
        of the copy graph built so far (one offline Tarjan sweep), then
        number the condensation in reverse postorder.  From here on the
        order is maintained per inserted edge by :meth:`_pk_insert` and
        cycles are collapsed eagerly at insertion, so wave mode never
        needs the lazy-cycle-detection suspect machinery."""
        self._offline_collapse()
        find = self._find
        copy_out = self._copy_out
        parent = self._parent
        ord_ = self._ord
        total = len(self._nodes)
        visited = bytearray(total)
        post: List[int] = []
        for root in range(total):
            if parent[root] != root or visited[root]:
                continue
            visited[root] = 1
            frames: List[Tuple[int, Iterator[int]]] = [
                (root, iter(copy_out[root] or ()))
            ]
            while frames:
                node, succs = frames[-1]
                advanced = False
                for raw in succs:
                    succ = find(raw)
                    if not visited[succ]:
                        visited[succ] = 1
                        frames.append((succ, iter(copy_out[succ] or ())))
                        advanced = True
                        break
                if not advanced:
                    frames.pop()
                    post.append(node)
        # Reverse postorder over all roots is a topological order of
        # the (now acyclic) condensation.
        for position, node in enumerate(reversed(post)):
            ord_[node] = position
        # Nodes created later slot in above everything numbered so far
        # (they are edge-free at creation, so appending is valid).
        self._next_ord = total
        self._pk_live = True

    def _pk_insert(self, s: int, d: int) -> None:
        """Restore the order's invariant after inserting copy edge
        ``s -> d`` with ``ord[d] < ord[s]`` (Pearce & Kelly 2006).

        Forward DFS from ``d`` bounded by ``ord < ord[s]``: every
        existing edge respects the order, so any path from ``d`` back
        to ``s`` stays inside the bound — reaching ``s`` exactly
        detects that the new edge closed a cycle, which is collapsed
        eagerly.  Otherwise the affected region (backward set of ``s``
        above ``ord[d]``, forward set of ``d`` below ``ord[s]``) is
        permuted within its own slots, keeping the order valid.
        """
        ord_ = self._ord
        find = self._find
        ub = ord_[s]
        lb = ord_[d]
        seen_f: Set[int] = {d}
        rf: List[int] = [d]
        stack: List[int] = [d]
        cycle = False
        while stack:
            node = stack.pop()
            out = self._copy_out[node]
            if not out:
                continue
            for raw in out:
                m = find(raw)
                if m == s:
                    cycle = True
                elif m not in seen_f and ord_[m] < ub:
                    seen_f.add(m)
                    rf.append(m)
                    stack.append(m)
        if cycle:
            self._pk_collapse_cycle(s, seen_f)
            return
        seen_b: Set[int] = {s}
        rb: List[int] = [s]
        stack = [s]
        while stack:
            node = stack.pop()
            ins_ = self._copy_in[node]
            if not ins_:
                continue
            for raw in ins_:
                m = find(raw)
                if m not in seen_b and ord_[m] > lb:
                    seen_b.add(m)
                    rb.append(m)
                    stack.append(m)
        self.stats.pk_reorders += 1
        rb.sort(key=ord_.__getitem__)
        rf.sort(key=ord_.__getitem__)
        region = rb + rf
        slots = sorted(ord_[node] for node in region)
        for slot, node in zip(slots, region):
            ord_[node] = slot

    def _pk_collapse_cycle(self, s: int, forward: Set[int]) -> None:
        """The new edge ``s -> d`` closed a cycle: its members are the
        nodes of the bounded forward set that reach ``s`` backward.
        Collapse them eagerly, then repair any in-edges of the merged
        representative the collapse left violated (the graph is acyclic
        again, so each repair is a plain reorder)."""
        find = self._find
        members: List[int] = [s]
        mseen: Set[int] = {s}
        stack: List[int] = [s]
        while stack:
            node = stack.pop()
            ins_ = self._copy_in[node]
            if not ins_:
                continue
            for raw in ins_:
                m = find(raw)
                if m in forward and m not in mseen:
                    mseen.add(m)
                    members.append(m)
                    stack.append(m)
        ord_ = self._ord
        floor = min(ord_[member] for member in members)
        self._collapse(members)
        rep = find(s)
        # The window floor keeps every out-edge of the merged rep valid
        # (all members' successors sat above their member's slot).
        ord_[rep] = floor
        ins_ = self._copy_in[rep]
        if ins_:
            pending = sorted(
                {find(raw) for raw in ins_} - {rep}, key=ord_.__getitem__
            )
            for u in pending:
                u = find(u)
                if u != rep and ord_[u] > ord_[rep]:
                    self._pk_insert(u, rep)

    def _propagate(self, rep: int, delta: int) -> None:
        # Copy edges: pts(rep) ⊆ pts(dst), pushing only the delta.
        out = self._copy_out[rep]
        if out:
            find = self._find
            bits_of = self._bits
            checked = self._checked_edges
            seen: Set[int] = set()
            for raw in list(out):
                dst = find(raw)
                if dst == rep or dst in seen:
                    continue
                seen.add(dst)
                if self._offer(dst, delta):
                    continue
                if self._pk_live:
                    # Pearce–Kelly collapses cycles eagerly at edge
                    # insertion, so a no-op push can never mean an
                    # undetected cycle here.
                    continue
                key = (rep << 32) | dst
                if key in checked:
                    continue
                checked.add(key)
                if bits_of[dst] == bits_of[rep]:
                    # No-op push between equal sets: suspected cycle.
                    self._lcd_suspects.append(rep)
                    if len(self._lcd_suspects) < self._lcd_threshold:
                        continue
                    self._collapse_cycles()
                    new_rep = find(rep)
                    if new_rep != rep:
                        # This node was folded away mid-pop; hand the
                        # remaining delta to the representative (the
                        # re-push below is idempotent).
                        self._delta[new_rep] |= delta
                        self._touch(new_rep)
                        return
        data = delta & ~self._func_mask
        if data:
            geps = self._geps[rep]
            if geps:
                for dst, offset in list(geps):
                    self._offer(dst, self._shift_bits(data, offset))
            lds = self._loads[rep]
            if lds:
                for lid in self._iter_lids(data):
                    loc_id = self._loc_node(lid)
                    for dst in list(lds):
                        self._copy_ids(loc_id, dst)
            sts = self._stores[rep]
            if sts:
                for lid in self._iter_lids(data):
                    loc_id = self._loc_node(lid)
                    for src in list(sts):
                        self._copy_ids(src, loc_id)
        fbits = delta & self._func_mask
        if fbits:
            ics = self._icalls[rep]
            if ics:
                locs = self._locs
                for lid in self._iter_lids(fbits):
                    name = locs[lid].obj.func
                    if name not in self.module.functions:
                        continue
                    for call_uid, args, dst_id in list(ics):
                        if (call_uid, name) not in self.bound_icalls:
                            self._bind_icall_ids(name, call_uid, args, dst_id)

    # -- cycle elimination ---------------------------------------------
    def _collapse_cycles(self) -> None:
        """One Tarjan sweep over the copy subgraph reachable from the
        pending suspects; collapse every multi-node SCC found.  Sweeps
        are batched: this runs only after ``_lcd_threshold`` suspicious
        edges accumulated, and a fruitless sweep doubles the threshold
        so total sweep cost stays near linear even on cycle-free
        graphs."""
        self.stats.lcd_triggers += 1
        roots = {self._find(node) for node in self._lcd_suspects}
        components = self._tarjan_components(roots)
        for component in components:
            self._collapse(component)
        self._lcd_suspects.clear()
        if components:
            self._lcd_threshold = self._LCD_BASE_THRESHOLD
        else:
            self._lcd_threshold = min(
                self._lcd_threshold * 2, self._LCD_MAX_THRESHOLD
            )

    def _offline_collapse(self) -> None:
        """Collapse every multi-node SCC of the whole copy graph in one
        Tarjan sweep (the batch counterpart of lazy cycle detection —
        used by :meth:`_init_pk_order` and the unify pre-pass).  Exact:
        cycle members provably share their fixpoint points-to set."""
        if self._offline_collapsed:
            return
        self._offline_collapsed = True
        roots = [
            nid
            for nid in range(len(self._nodes))
            if self._parent[nid] == nid and self._copy_out[nid]
        ]
        for component in self._tarjan_components(roots):
            self._collapse(component)

    def _tarjan_components(
        self, roots: Iterable[int]
    ) -> List[List[int]]:
        """Multi-node SCCs of the rep-level copy graph reachable from
        ``roots`` (iterative Tarjan)."""
        find = self._find
        copy_out = self._copy_out
        total = len(self._nodes)
        index = [-1] * total
        low = [0] * total
        on_stack = bytearray(total)
        scc_stack: List[int] = []
        components: List[List[int]] = []
        counter = 0

        def successors(node: int) -> List[int]:
            out = copy_out[node]
            if not out:
                return []
            reps = {find(raw) for raw in out}
            reps.discard(node)
            return list(reps)

        for start in roots:
            start = find(start)
            if index[start] >= 0:
                continue
            index[start] = low[start] = counter
            counter += 1
            scc_stack.append(start)
            on_stack[start] = 1
            frames: List[Tuple[int, Iterator[int]]] = [
                (start, iter(successors(start)))
            ]
            while frames:
                node, succ = frames[-1]
                advanced = False
                for nxt in succ:
                    if index[nxt] < 0:
                        index[nxt] = low[nxt] = counter
                        counter += 1
                        scc_stack.append(nxt)
                        on_stack[nxt] = 1
                        frames.append((nxt, iter(successors(nxt))))
                        advanced = True
                        break
                    if on_stack[nxt] and index[nxt] < low[node]:
                        low[node] = index[nxt]
                if advanced:
                    continue
                frames.pop()
                if frames:
                    parent = frames[-1][0]
                    if low[node] < low[parent]:
                        low[parent] = low[node]
                if low[node] == index[node]:
                    component: List[int] = []
                    while True:
                        member = scc_stack.pop()
                        on_stack[member] = 0
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(component)
        return components

    def _collapse(self, members: List[int], unify: bool = False) -> None:
        """Merge an SCC (or, with ``unify=True``, a unification group
        from the Steensgaard pre-pass) onto one representative — the
        first member."""
        reps: List[int] = []
        seen: Set[int] = set()
        for member in members:
            rep = self._find(member)
            if rep not in seen:
                seen.add(rep)
                reps.append(rep)
        if len(reps) < 2:
            return
        rep = reps[0]
        union_bits = 0
        processed_all = -1  # intersection of each member's processed set
        has_loc = False
        for member in reps:
            bits = self._bits[member]
            union_bits |= bits
            processed_all &= bits & ~self._delta[member]
            has_loc = has_loc or self._has_loc[member]
        tables = (
            self._copy_out,
            self._copy_in,
            self._rev_geps,
            self._rev_loads,
            self._loads,
            self._stores,
            self._geps,
            self._icalls,
        )
        for member in reps[1:]:
            self._parent[member] = rep
            for table in tables:
                moved = table[member]
                if moved:
                    target = table[rep]
                    if target is None:
                        table[rep] = moved
                    else:
                        target.update(moved)
                table[member] = None
            self._bits[member] = 0
            self._delta[member] = 0
            self.dirty.discard(member)
        self._has_loc[rep] = has_loc
        if self._slice_reps and not self._slice_reps.isdisjoint(seen):
            # Keep the demand slice closed under collapsing: facts of a
            # merged class live on the representative.
            self._slice_reps.add(rep)
        self._bits[rep] = union_bits
        # A fact needs (re-)propagation from the representative unless
        # every member had already pushed it along its own edges.
        pending = union_bits & ~processed_all
        self._delta[rep] = pending
        if pending:
            self._touch(rep)
        if unify:
            self.stats.unified_nodes += len(reps) - 1
        else:
            self.stats.sccs_collapsed += 1
            self.stats.scc_nodes_merged += len(reps) - 1

    # -- lazy demand forcing -------------------------------------------
    def force_nodes(self, nodes: Iterable[Node]) -> None:
        """Lazy tier: compute the exact points-to sets of ``nodes`` by
        solving only the constraint slice reachable backward from them
        (plus the conservative store / indirect-call closures), memoized
        across calls — facts already forced are never recomputed.  A
        no-op for eager solvers and after :meth:`force_all`."""
        if not self._lazy or self._complete:
            return
        node_ids = self._node_ids
        ids = [
            node_ids[node] for node in nodes if node in node_ids
        ]
        self._force_ids(ids)

    def force_wrapper_candidates(self) -> None:
        """Lazy tier: force exactly the ``<ret>`` slices that wrapper
        detection inspects, leaving the rest of the fixpoint deferred."""
        if not self._lazy or self._complete:
            return
        self.force_nodes(
            self._ret_node(name)
            for name in self.module.functions
            if name not in self._recursive and name != "main"
        )

    def force_all(self) -> None:
        """Lazy tier: settle the complete fixpoint (everything still
        deferred, including previously out-of-slice pops)."""
        if not self._lazy or self._complete:
            return
        self._complete = True
        with self.stats.phase("solve"):
            self._run_fifo()
        self.stats.lazy_forced_nodes = len(self._nodes)
        self.stats.live_copy_edges = self._count_live_copy_edges()

    def _force_ids(self, ids: List[int]) -> None:
        # Indirect-call resolution can rebind arguments anywhere, so
        # callee slices ride along with every force (idempotent).
        fresh = [raw for raw in ids if raw not in self._slice]
        fresh.extend(
            raw for raw in self._icall_callee_ids if raw not in self._slice
        )
        if not fresh:
            return
        with self.stats.phase("solve"):
            for raw in fresh:
                self._extend_slice(raw)
            self._forcing = True
            try:
                self._run_restricted()
            finally:
                self._forcing = False
        self.stats.lazy_forced_nodes = len(self._slice)

    def _extend_slice(self, raw: int) -> None:
        """Grow the demand slice by the backward closure of node
        ``raw`` over copy, gep and load constraints.  Stores are pulled
        wholesale the first time any MemLoc class enters the slice —
        facts reach memory locations only through stores, and which
        stores hit which location is itself a points-to question."""
        find = self._find
        slice_ids = self._slice
        slice_reps = self._slice_reps
        copy_in = self._copy_in
        rev_geps = self._rev_geps
        rev_loads = self._rev_loads
        stack = [raw]
        while stack:
            nid = stack.pop()
            if nid in slice_ids:
                continue
            slice_ids.add(nid)
            rep = find(nid)
            slice_reps.add(rep)
            if self._has_loc[rep] and not self._stores_pulled:
                self._stores_pulled = True
                for ptr, src in self._store_pairs:
                    stack.append(ptr)
                    stack.append(src)
            ins_ = copy_in[rep]
            if ins_:
                stack.extend(ins_)
            bases = rev_geps[rep]
            if bases:
                stack.extend(bases)
            ptrs = rev_loads[rep]
            if ptrs:
                stack.extend(ptrs)
        self._slice_grew = True

    def _run_restricted(self) -> None:
        """FIFO fixpoint restricted to the demand slice: pops outside
        the slice are deferred (they stay dirty), and any mid-run slice
        growth — a dynamic copy edge landing inside the slice — requeues
        the deferred pops.  On exit every slice rep is at its fixpoint
        and the deferred dirt is back on the worklist for a later
        force."""
        worklist = self.worklist
        dirty = self.dirty
        delta_of = self._delta
        find = self._find
        deferred: List[int] = []
        while True:
            self._slice_grew = False
            while worklist:
                rep = find(worklist.pop())
                if rep not in dirty:
                    continue
                if rep not in self._slice_reps:
                    deferred.append(rep)
                    continue
                dirty.discard(rep)
                delta = delta_of[rep]
                if not delta:
                    continue
                delta_of[rep] = 0
                self.stats.pops += 1
                self._propagate(rep, delta)
            if self._slice_grew and deferred:
                worklist.extend(deferred)
                deferred.clear()
                continue
            break
        worklist.extend(deferred)

    # -- results -------------------------------------------------------
    def _record_memory_stats(self) -> None:
        """Points-to representation bytes of this solve, summed over
        live union-find representatives: packed container bytes in
        compressed mode, dense limb bytes (``ceil(bit_length/8)``) in
        int mode — directly comparable, which is what the
        ``bytes_pts`` regression gate compares.  ``bytes_pts`` keeps
        the max across the base and heap-cloning-refined passes;
        ``container_mix`` reflects the latest pass."""
        super()._record_memory_stats()
        parent = self._parent
        total = 0
        mix: Dict[str, int] = {}
        for nid, bits in enumerate(self._bits):
            if parent[nid] != nid or not bits:
                continue
            size, bits_mix = bitset_packed_size(bits)
            total += size
            for kind, count in bits_mix.items():
                mix[kind] = mix.get(kind, 0) + count
        self.stats.bytes_pts = max(self.stats.bytes_pts, total)
        self.stats.container_mix = mix

    def _node_pts(self, node: Node) -> Set[MemLoc]:
        nid = self._node_ids.get(node)
        if nid is None:
            return set()
        if self._lazy and not self._complete:
            self._force_ids([nid])
        return set(self._iter_locs(self._bits[self._find(nid)]))

    def _final_pts(self) -> Dict[Node, Set[MemLoc]]:
        self.force_all()  # lazy tier: full results need the full fixpoint
        expanded: Dict[Node, Set[MemLoc]] = {}
        cache: Dict[int, Set[MemLoc]] = {}
        nodes = self._nodes
        for nid, node in enumerate(nodes):
            rep = self._find(nid)
            locs = cache.get(rep)
            if locs is None:
                locs = set(self._iter_locs(self._bits[rep]))
                cache[rep] = locs
            if locs:
                expanded[node] = locs
        return expanded


def _recursive_functions(module: Module) -> Set[str]:
    """Functions participating in call-graph cycles (direct calls only;
    indirect recursion is handled conservatively by the caller of this
    helper treating unresolved targets as non-cloneable)."""
    graph: Dict[str, Set[str]] = {name: set() for name in module.functions}
    for function in module.functions.values():
        for instr in function.instructions():
            if isinstance(instr, ins.Call) and not instr.is_indirect:
                if instr.callee in graph:
                    graph[function.name].add(instr.callee)
            elif isinstance(instr, ins.Call):
                # An indirect call may reach anything that has its address
                # taken; conservatively mark all address-taken functions.
                pass
    # Tarjan-free approach: iterative DFS cycle detection per node.
    recursive: Set[str] = set()
    for start in graph:
        stack = [start]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            for succ in graph[node]:
                if succ == start:
                    recursive.add(start)
                    stack = []
                    break
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
    return recursive
