"""Offset-based field-sensitive Andersen's pointer analysis.

This is the "pointer analysis" box of Figure 3, configured exactly as
Section 4.1 describes the evaluated implementation:

- inclusion-based (Andersen-style) constraint solving,
- field-sensitive with constant offsets, arrays collapsed to a whole,
- on-the-fly call graph for calls through function pointers,
- 1-callsite-sensitive heap cloning for allocation wrapper functions.

Heap cloning works by *constraint instantiation*: for every direct call
site of an allocation wrapper (a non-recursive function returning a heap
object it allocated), the wrapper's constraints are re-generated in a
call-site-specific namespace and its heap objects are cloned with that
call site as context.  After solving, clone points-to sets are merged
back into the wrapper's base variables so downstream phases (memory SSA,
VFG) see the union while still distinguishing per-call-site objects.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Value, Var
from repro.analysis.memobjects import (
    HEAP,
    MemLoc,
    MemObject,
    PVar,
    function_object,
    global_object,
)

Node = Union[PVar, MemLoc]


class PointerResult:
    """Result of the pointer analysis.

    Attributes:
        pts: Points-to sets for top-level variables and memory locations.
        alloc_objects: Abstract objects created by each allocation
            instruction (more than one when heap-cloned).
        global_objects / function_objects: By name.
        call_targets: Resolved callee function names per call uid.
        wrappers: Names of the detected allocation wrapper functions.
    """

    def __init__(self) -> None:
        self.pts: Dict[Node, Set[MemLoc]] = {}
        self.alloc_objects: Dict[int, List[MemObject]] = {}
        self.global_objects: Dict[str, MemObject] = {}
        self.function_objects: Dict[str, MemObject] = {}
        self.call_targets: Dict[int, Set[str]] = {}
        self.wrappers: Set[str] = set()
        #: clone namespace -> base function name (heap cloning)
        self.clone_base: Dict[str, str] = {}

    def pts_of(self, node: Node) -> FrozenSet[MemLoc]:
        return frozenset(self.pts.get(node, ()))

    def pts_var(self, func: str, var: Var) -> FrozenSet[MemLoc]:
        """Points-to set of top-level variable ``var`` in ``func``.

        SSA versions are ignored: the pointer analysis is performed on
        the pre-SSA program (Figure 3) and is flow-insensitive.
        """
        return self.pts_of(PVar(func, var.name))

    def data_pts_var(self, func: str, var: Var) -> FrozenSet[MemLoc]:
        """Like :meth:`pts_var` but with function targets filtered out."""
        return frozenset(
            loc for loc in self.pts_var(func, var) if not loc.obj.is_function
        )

    def callees_of(self, call: ins.Call) -> FrozenSet[str]:
        return frozenset(self.call_targets.get(call.uid, ()))

    def all_objects(self) -> List[MemObject]:
        objs: Dict[str, MemObject] = {}
        for obj in self.global_objects.values():
            objs[obj.name] = obj
        for obj_list in self.alloc_objects.values():
            for obj in obj_list:
                objs[obj.name] = obj
        return list(objs.values())


def analyze_pointers(
    module: Module, heap_cloning: bool = True
) -> PointerResult:
    """Run Andersen's analysis on ``module``.

    With ``heap_cloning`` enabled (the paper's configuration), allocation
    wrappers are detected with a context-insensitive pre-pass and the
    analysis is re-run with their heap objects cloned per call site.
    """
    base = _Solver(module, wrappers=frozenset())
    base.solve()
    if not heap_cloning:
        return base.result()
    wrappers = base.detect_wrappers()
    if not wrappers:
        return base.result()
    refined = _Solver(module, wrappers=frozenset(wrappers))
    refined.solve()
    result = refined.result()
    result.wrappers = set(wrappers)
    return result


class _Solver:
    def __init__(self, module: Module, wrappers: FrozenSet[str]) -> None:
        self.module = module
        self.wrappers = wrappers
        self.pts: Dict[Node, Set[MemLoc]] = {}
        self.copy_edges: Dict[Node, Set[Node]] = {}
        self.loads: Dict[Node, List[Node]] = {}
        self.stores: Dict[Node, List[Node]] = {}
        self.geps: Dict[Node, List[Tuple[Node, Optional[int]]]] = {}
        self.icalls: Dict[Node, List[Tuple[int, List[Node], Optional[Node]]]] = {}
        self.bound_icalls: Set[Tuple[int, str]] = set()
        self.worklist: List[Node] = []
        self.dirty: Set[Node] = set()

        self.global_objects: Dict[str, MemObject] = {}
        self.function_objects: Dict[str, MemObject] = {}
        self.alloc_objects: Dict[int, List[MemObject]] = {}
        self.call_targets: Dict[int, Set[str]] = {}
        #: clone namespace -> base function name
        self.clone_base: Dict[str, str] = {}
        #: (wrapper, callsite uid) namespaces already instantiated
        self._instantiated: Set[Tuple[str, int]] = set()
        self._recursive = _recursive_functions(module)

        self._seed()

    # ------------------------------------------------------------------
    # Constraint generation
    # ------------------------------------------------------------------
    def _seed(self) -> None:
        for glob in self.module.globals.values():
            self.global_objects[glob.name] = global_object(
                glob.name, glob.initialized, glob.size, glob.is_array
            )
        for name in self.module.functions:
            self.function_objects[name] = function_object(name)
        for function in self.module.functions.values():
            self._gen_function(function, ns=function.name, clone_ctx=None)

    def _ret_node(self, ns: str) -> PVar:
        return PVar(ns, "<ret>")

    def _alloc_object(self, instr: ins.Alloc, func: str, ctx: Optional[int]) -> MemObject:
        suffix = f"@cs{ctx}" if ctx is not None else ""
        obj = MemObject(
            name=f"{instr.obj_name}{suffix}",
            kind=instr.kind,
            initialized=instr.initialized,
            is_array=instr.is_array,
            size=instr.size,
            func=func,
            alloc_uid=instr.uid,
            context=ctx,
        )
        self.alloc_objects.setdefault(instr.uid, [])
        if obj not in self.alloc_objects[instr.uid]:
            self.alloc_objects[instr.uid].append(obj)
        return obj

    def _gen_function(self, function: Function, ns: str, clone_ctx: Optional[int]) -> None:
        """Generate constraints for ``function`` under namespace ``ns``."""
        for instr in function.instructions():
            self._gen_instr(function, instr, ns, clone_ctx)

    def _gen_instr(
        self,
        function: Function,
        instr: ins.Instr,
        ns: str,
        clone_ctx: Optional[int],
    ) -> None:
        def node(value: Value) -> Optional[Node]:
            if isinstance(value, Var):
                return PVar(ns, value.name)
            return None

        if isinstance(instr, ins.Alloc):
            obj = self._alloc_object(instr, function.name, clone_ctx)
            self._add_pts(PVar(ns, instr.dst.name), MemLoc(obj, 0))
        elif isinstance(instr, ins.GlobalAddr):
            obj = self.global_objects[instr.global_name]
            self._add_pts(PVar(ns, instr.dst.name), MemLoc(obj, 0))
        elif isinstance(instr, ins.FuncAddr):
            obj = self.function_objects[instr.func_name]
            self._add_pts(PVar(ns, instr.dst.name), MemLoc(obj, 0))
        elif isinstance(instr, ins.Copy):
            src = node(instr.src)
            if src is not None:
                self._add_copy(src, PVar(ns, instr.dst.name))
        elif isinstance(instr, ins.Phi):
            for value in instr.incomings.values():
                src = node(value)
                if src is not None:
                    self._add_copy(src, PVar(ns, instr.dst.name))
        elif isinstance(instr, ins.Gep):
            base = node(instr.base)
            if base is not None:
                self.geps.setdefault(base, []).append(
                    (PVar(ns, instr.dst.name), instr.static_offset)
                )
                self._touch(base)
        elif isinstance(instr, ins.Load):
            ptr = node(instr.ptr)
            if ptr is not None:
                self.loads.setdefault(ptr, []).append(PVar(ns, instr.dst.name))
                self._touch(ptr)
        elif isinstance(instr, ins.Store):
            ptr = node(instr.ptr)
            src = node(instr.value)
            if ptr is not None and src is not None:
                self.stores.setdefault(ptr, []).append(src)
                self._touch(ptr)
        elif isinstance(instr, ins.Ret):
            value = node(instr.value) if instr.value is not None else None
            if value is not None:
                self._add_copy(value, self._ret_node(ns))
        elif isinstance(instr, ins.Call):
            self._gen_call(instr, ns)

    def _gen_call(self, call: ins.Call, ns: str) -> None:
        arg_nodes: List[Optional[Node]] = [
            PVar(ns, a.name) if isinstance(a, Var) else None for a in call.args
        ]
        dst_node = PVar(ns, call.dst.name) if call.dst is not None else None
        if not call.is_indirect:
            self._bind_direct(call.callee, call.uid, arg_nodes, dst_node)
        else:
            callee_node = PVar(ns, call.callee.name)
            plain_args = [a for a in arg_nodes]
            self.icalls.setdefault(callee_node, []).append(
                (call.uid, plain_args, dst_node)
            )
            self._touch(callee_node)

    def _bind_direct(
        self,
        callee: str,
        call_uid: int,
        arg_nodes: List[Optional[Node]],
        dst_node: Optional[Node],
    ) -> None:
        self.call_targets.setdefault(call_uid, set()).add(callee)
        target = self.module.functions[callee]
        if callee in self.wrappers and callee not in self._recursive:
            ns = self._instantiate_wrapper(callee, call_uid)
        else:
            ns = callee
        for formal, actual in zip(target.params, arg_nodes):
            if actual is not None:
                self._add_copy(actual, PVar(ns, formal))
        if dst_node is not None:
            self._add_copy(self._ret_node(ns), dst_node)

    def _instantiate_wrapper(self, callee: str, call_uid: int) -> str:
        """Clone ``callee``'s constraints for this call site; return the
        clone namespace."""
        ns = f"{callee}@cs{call_uid}"
        key = (callee, call_uid)
        if key not in self._instantiated:
            self._instantiated.add(key)
            self.clone_base[ns] = callee
            self._gen_function(self.module.functions[callee], ns, call_uid)
        return ns

    def _bind_indirect(
        self,
        callee: str,
        call_uid: int,
        arg_nodes: List[Optional[Node]],
        dst_node: Optional[Node],
    ) -> None:
        """Bind a function-pointer target (no heap cloning through
        indirect calls)."""
        key = (call_uid, callee)
        if key in self.bound_icalls:
            return
        self.bound_icalls.add(key)
        self.call_targets.setdefault(call_uid, set()).add(callee)
        target = self.module.functions[callee]
        for formal, actual in zip(target.params, arg_nodes):
            if actual is not None:
                self._add_copy(actual, PVar(callee, formal))
        if dst_node is not None:
            self._add_copy(self._ret_node(callee), dst_node)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _points(self, node: Node) -> Set[MemLoc]:
        return self.pts.setdefault(node, set())

    def _touch(self, node: Node) -> None:
        if node not in self.dirty:
            self.dirty.add(node)
            self.worklist.append(node)

    def _add_pts(self, node: Node, loc: MemLoc) -> None:
        if loc not in self._points(node):
            self.pts[node].add(loc)
            self._touch(node)

    def _add_copy(self, src: Node, dst: Node) -> None:
        edges = self.copy_edges.setdefault(src, set())
        if dst not in edges:
            edges.add(dst)
            if self.pts.get(src):
                self._touch(src)

    def solve(self) -> None:
        while self.worklist:
            node = self.worklist.pop()
            self.dirty.discard(node)
            current = frozenset(self._points(node))
            if not current:
                continue
            # Copy edges: pts(node) ⊆ pts(dst).
            for dst in list(self.copy_edges.get(node, ())):
                self._merge_into(dst, current)
            # Gep: shifted targets.
            for dst, offset in self.geps.get(node, ()):  # type: ignore[assignment]
                shifted = {
                    target
                    for loc in current
                    if not loc.obj.is_function
                    for target in loc.shifted(offset)
                }
                self._merge_into(dst, shifted)
            # Loads: *node -> dst.
            for dst in self.loads.get(node, ()):
                for loc in current:
                    if loc.obj.is_function:
                        continue
                    self._add_copy(loc, dst)
            # Stores: src -> *node.
            for src in self.stores.get(node, ()):
                for loc in current:
                    if loc.obj.is_function:
                        continue
                    self._add_copy(src, loc)
            # Indirect calls through node.
            for call_uid, args, dst in self.icalls.get(node, ()):
                for loc in current:
                    if loc.obj.is_function and loc.obj.func in self.module.functions:
                        self._bind_indirect(loc.obj.func, call_uid, args, dst)

    def _merge_into(self, dst: Node, locs: "frozenset[MemLoc] | set[MemLoc]") -> None:
        target = self._points(dst)
        if not locs <= target:
            target.update(locs)
            self._touch(dst)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def detect_wrappers(self) -> Set[str]:
        """Allocation wrappers: non-recursive functions whose return
        value may point to a heap object they allocated."""
        wrappers: Set[str] = set()
        for name, function in self.module.functions.items():
            if name in self._recursive or name == "main":
                continue
            ret_pts = self.pts.get(self._ret_node(name), set())
            for loc in ret_pts:
                if loc.obj.kind == HEAP and loc.obj.func == name:
                    wrappers.add(name)
                    break
        return wrappers

    def result(self) -> PointerResult:
        result = PointerResult()
        result.global_objects = dict(self.global_objects)
        result.function_objects = dict(self.function_objects)
        stale = self._stale_base_objects()
        result.alloc_objects = {
            uid: [o for o in objs if o not in stale]
            for uid, objs in self.alloc_objects.items()
        }
        result.call_targets = {
            uid: set(t) for uid, t in self.call_targets.items()
        }
        result.clone_base = dict(self.clone_base)
        merged: Dict[Node, Set[MemLoc]] = {}
        for node, locs in self.pts.items():
            locs = {loc for loc in locs if loc.obj not in stale}
            if not locs:
                continue
            target = node
            if isinstance(node, PVar) and node.func in self.clone_base:
                target = PVar(self.clone_base[node.func], node.name)
            merged.setdefault(target, set()).update(locs)
            if target != node:
                merged.setdefault(node, set()).update(locs)
        result.pts = merged
        return result

    def _stale_base_objects(self) -> Set[MemObject]:
        """Base (context-free) objects of wrappers all of whose call
        sites were cloned.  Nothing can concretely refer to them: every
        actual allocation is represented by a per-call-site clone."""
        stale: Set[MemObject] = set()
        for wrapper in self.wrappers:
            if wrapper in self._recursive:
                continue
            call_uids = {
                uid
                for uid, targets in self.call_targets.items()
                if wrapper in targets
            }
            if not call_uids:
                continue
            cloned_uids = {
                uid for (name, uid) in self._instantiated if name == wrapper
            }
            if not call_uids <= cloned_uids:
                continue
            for objs in self.alloc_objects.values():
                for obj in objs:
                    if obj.func == wrapper and obj.context is None:
                        stale.add(obj)
        return stale


def _recursive_functions(module: Module) -> Set[str]:
    """Functions participating in call-graph cycles (direct calls only;
    indirect recursion is handled conservatively by the caller of this
    helper treating unresolved targets as non-cloneable)."""
    graph: Dict[str, Set[str]] = {name: set() for name in module.functions}
    for function in module.functions.values():
        for instr in function.instructions():
            if isinstance(instr, ins.Call) and not instr.is_indirect:
                if instr.callee in graph:
                    graph[function.name].add(instr.callee)
            elif isinstance(instr, ins.Call):
                # An indirect call may reach anything that has its address
                # taken; conservatively mark all address-taken functions.
                pass
    # Tarjan-free approach: iterative DFS cycle detection per node.
    recursive: Set[str] = set()
    for start in graph:
        stack = [start]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            for succ in graph[node]:
                if succ == start:
                    recursive.add(start)
                    stack = []
                    break
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
    return recursive
