"""Process-parallel constraint generation for the Andersen solvers.

The constraint generator walks every function (plus any allocation-
wrapper clones its call sites instantiate) and emits pts / copy / load /
store / gep / icall constraints.  That walk is embarrassingly parallel
across functions — the only shared state is the symbol interner and the
solver's constraint store — so with ``jobs > 1`` it is sharded:

1. The module's functions are split into **contiguous** chunks in
   module order (:func:`repro.analysis.parallel.chunk_evenly`).
2. Each worker process runs a :class:`_ShardCollector` — the real
   generator (``_SolverBase._gen_function``, including nested wrapper
   clone instantiation) with the constraint hooks swapped for recorders
   — and returns a :class:`ShardResult`: a per-shard symbol table (its
   own interning, local ids) plus a flat ``int64`` word arena over
   those ids.  Generation *streams* into the arena: each hook appends
   its op's words directly, so no per-function tuple lists are ever
   materialized — the tape's peak memory is its final size, and the
   same buffer ships verbatim through ``multiprocessing.shared_memory``
   (:class:`repro.service.pool.FlatTape`) without an encode step.
3. The parent replays the word streams **in shard order** through the
   solver's id-level constraint hooks, remapping each shard-local
   symbol to a dense solver id once (``DeltaSolver._replay_shard``).
   Because the chunks are contiguous and each arena is in generation
   order, the replayed constraint stream is exactly the serial
   generator's stream, so the post-merge solver state — and therefore
   every downstream result — is bit-identical to ``jobs=1``.

Workers inherit the module / wrappers / recursive-set snapshot through
``fork`` copy-on-write (nothing is pickled on the way in); only the
compact :class:`ShardResult` arenas are pickled on the way back, which
is what keeps the shard round-trip cheaper than the generation it
replaces.  When ``fork`` is unavailable (or a pool cannot be created),
:func:`generate_shards` returns ``None`` and the caller falls back to
the serial loop.

Word encoding (one op = one run of ``int64`` words, tags from
:mod:`repro.analysis.andersen`):

- ``PTS/COPY/LOAD/STORE`` → ``[tag, a, b]``
- ``GEP`` → ``[tag, base, dst, offset]`` (``None`` offset encoded as
  :data:`GEP_NONE`)
- ``ICALL`` → ``[tag, callee, call_uid, nargs, arg..., dst]`` (``-1``
  encodes a missing arg / dst)
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.memobjects import MemLoc, MemObject
from repro.analysis.parallel import chunk_evenly, fork_available, fork_pool
from repro.analysis.solverstats import SolverStats
from repro.ir.module import Module
from repro.obs.trace import TRACE

#: ``None`` GEP-offset sentinel — far outside any field index.
GEP_NONE = -(2**62)


def encode_ops(ops: Sequence[tuple]) -> "array":
    """Encode symbol-id op tuples as a flat ``int64`` word arena
    (the inverse of :func:`decode_words`)."""
    from repro.analysis.andersen import OP_GEP, OP_ICALL

    words = array("q")
    append = words.append
    for op in ops:
        tag = op[0]
        if tag == OP_ICALL:
            args = op[3]
            append(tag)
            append(op[1])
            append(op[2])
            append(len(args))
            words.extend(args)
            append(op[4])
        elif tag == OP_GEP:
            append(tag)
            append(op[1])
            append(op[2])
            append(GEP_NONE if op[3] is None else op[3])
        else:
            append(tag)
            append(op[1])
            append(op[2])
    return words


def iter_ops(words: Sequence[int]) -> Iterator[tuple]:
    """Decode a word arena op by op (no list materialized).

    Raises :class:`ValueError` on a truncated buffer — an op whose
    encoding runs past the end of ``words`` — or an unknown tag, so a
    corrupt shared-memory transfer fails loudly instead of replaying a
    prefix.
    """
    from repro.analysis.andersen import (
        OP_COPY,
        OP_GEP,
        OP_ICALL,
        OP_LOAD,
        OP_PTS,
        OP_STORE,
    )

    i = 0
    n = len(words)
    while i < n:
        tag = words[i]
        if tag == OP_ICALL:
            if i + 4 > n:
                raise ValueError("truncated op tape: ICALL header")
            nargs = words[i + 3]
            end = i + 5 + nargs
            if nargs < 0 or end > n:
                raise ValueError("truncated op tape: ICALL args")
            args = tuple(words[i + 4 : i + 4 + nargs])
            yield (tag, words[i + 1], words[i + 2], args, words[end - 1])
            i = end
        elif tag == OP_GEP:
            if i + 4 > n:
                raise ValueError("truncated op tape: GEP")
            offset = words[i + 3]
            yield (
                tag,
                words[i + 1],
                words[i + 2],
                None if offset == GEP_NONE else offset,
            )
            i += 4
        elif tag in (OP_PTS, OP_COPY, OP_LOAD, OP_STORE):
            if i + 3 > n:
                raise ValueError("truncated op tape: binary op")
            yield (tag, words[i + 1], words[i + 2])
            i += 3
        else:
            raise ValueError(f"unknown op tag {tag} in tape")


def decode_words(words: Sequence[int]) -> List[tuple]:
    """The word arena as a list of op tuples (tests / comparisons)."""
    return list(iter_ops(words))


@dataclass
class ShardResult:
    """One worker's contribution: a symbol table, a flat word arena
    over it, and the generation side-tables the parent must merge."""

    #: shard-local id -> symbol (PVar or MemLoc, in first-use order)
    syms: List[object] = field(default_factory=list)
    #: the op tape as a flat ``int64`` word arena (see the module
    #: docstring for the encoding); appended to directly during
    #: generation and shipped verbatim over shared memory
    words: "array" = field(default_factory=lambda: array("q"))
    #: call uid -> direct-call targets seen during generation
    call_targets: Dict[int, Set[str]] = field(default_factory=dict)
    #: clone namespace -> base function name
    clone_base: Dict[str, str] = field(default_factory=dict)
    #: (wrapper, callsite uid) clones this shard instantiated
    instantiated: Set[Tuple[str, int]] = field(default_factory=set)
    #: alloc uid -> objects, in generation order
    alloc_objects: Dict[int, List[MemObject]] = field(default_factory=dict)
    #: finished worker spans (``Tracer.export_spans`` tuples) when the
    #: parent had tracing on at fork time; stitched back with
    #: ``TRACE.adopt`` so the trace shows one track per worker pid
    spans: List[tuple] = field(default_factory=list)

    @property
    def ops(self) -> List[tuple]:
        """The tape decoded to op tuples — a compatibility view for
        non-hot consumers (normalized-tape comparison, the reference
        solver's object-level replay); the solvers walk ``words``."""
        return decode_words(self.words)


def _collector_class():
    # Deferred: andersen imports this module lazily (inside _seed) and
    # importing it here at top level would be circular.
    from repro.analysis import andersen

    class _ShardCollector(andersen._SolverBase):
        """The constraint generator with recording hooks.

        Runs ``_gen_function`` (and everything it pulls in — wrapper
        clone instantiation, direct-call binding) for one contiguous
        chunk of functions, interning symbols shard-locally and
        streaming each emitted constraint's words straight into the
        shard arena.  It never solves; its only products are the arena
        and the side-tables.
        """

        kind = "shard"

        def __init__(
            self,
            module: Module,
            wrappers: FrozenSet[str],
            recursive: Set[str],
            names: List[str],
        ) -> None:
            self._names = names
            self.result_shard = ShardResult()
            self._words = self.result_shard.words
            self._sids: Dict[object, int] = {}
            super().__init__(
                module,
                wrappers,
                stats=SolverStats(solver=self.kind),
                recursive=recursive,
            )

        def _seed(self) -> None:
            for glob in self.module.globals.values():
                self.global_objects[glob.name] = andersen.global_object(
                    glob.name, glob.initialized, glob.size, glob.is_array
                )
            for name in self.module.functions:
                self.function_objects[name] = andersen.function_object(name)
            for name in self._names:
                function = self.module.functions[name]
                self._gen_function(function, ns=function.name, clone_ctx=None)
            shard = self.result_shard
            shard.call_targets = self.call_targets
            shard.clone_base = self.clone_base
            shard.instantiated = self._instantiated
            shard.alloc_objects = self.alloc_objects

        # -- recording hooks ------------------------------------------
        def _sid(self, sym: object) -> int:
            sid = self._sids.get(sym)
            if sid is None:
                sid = len(self.result_shard.syms)
                self._sids[sym] = sid
                self.result_shard.syms.append(sym)
            return sid

        def _emit3(self, tag: int, a: int, b: int) -> None:
            words = self._words
            words.append(tag)
            words.append(a)
            words.append(b)

        def _add_pts(self, node, loc: MemLoc) -> None:
            self._emit3(andersen.OP_PTS, self._sid(node), self._sid(loc))

        def _add_copy(self, src, dst) -> None:
            self._emit3(andersen.OP_COPY, self._sid(src), self._sid(dst))

        def _add_load(self, ptr, dst) -> None:
            self._emit3(andersen.OP_LOAD, self._sid(ptr), self._sid(dst))

        def _add_store(self, ptr, src) -> None:
            self._emit3(andersen.OP_STORE, self._sid(ptr), self._sid(src))

        def _add_gep(self, base, dst, offset: Optional[int]) -> None:
            words = self._words
            words.append(andersen.OP_GEP)
            words.append(self._sid(base))
            words.append(self._sid(dst))
            words.append(GEP_NONE if offset is None else offset)

        def _add_icall(self, callee_node, call_uid, arg_nodes, dst_node) -> None:
            words = self._words
            words.append(andersen.OP_ICALL)
            words.append(self._sid(callee_node))
            words.append(call_uid)
            words.append(len(arg_nodes))
            for a in arg_nodes:
                words.append(-1 if a is None else self._sid(a))
            words.append(-1 if dst_node is None else self._sid(dst_node))

    return _ShardCollector


#: Fork-inherited work description: (module, wrappers, recursive).
#: Set in the parent immediately before the pool forks; workers read it
#: from their copy-on-write heap instead of unpickling the module.
_WORK: Optional[Tuple[Module, FrozenSet[str], Set[str]]] = None


def _collect_chunk(names: List[str]) -> ShardResult:
    """Worker entry point: generate one chunk's constraint tape."""
    assert _WORK is not None, "shard worker started without fork context"
    module, wrappers, recursive = _WORK
    if TRACE.enabled:
        # The fork copied the parent's event list; drop it so the
        # worker exports only its own spans for the parent to adopt.
        TRACE.clear()
        with TRACE.span("shard.collect", functions=len(names)):
            collector = _collector_class()(module, wrappers, recursive, names)
        collector.result_shard.spans = TRACE.export_spans()
        return collector.result_shard
    collector = _collector_class()(module, wrappers, recursive, names)
    return collector.result_shard


def generate_shards(
    module: Module,
    wrappers: FrozenSet[str],
    recursive: Set[str],
    jobs: int,
) -> Optional[List[ShardResult]]:
    """Shard constraint generation across ``jobs`` worker processes.

    Returns the shard results in module order, or ``None`` when
    parallel generation is unavailable (no ``fork``, a pool cannot be
    created, or there is nothing to split) — callers then run the
    serial generator.  Worker *failures* are not swallowed: a bug in
    the collector must surface, not silently degrade to serial.
    """
    if jobs < 2 or not fork_available():
        return None
    chunks = chunk_evenly(list(module.functions), jobs)
    if len(chunks) < 2:
        return None
    global _WORK
    _WORK = (module, wrappers, set(recursive))
    try:
        try:
            pool = fork_pool(len(chunks))
        except (OSError, AssertionError):
            # Can't fork here (resource limits, daemonic process, ...):
            # degrade to serial generation.
            return None
        with pool:
            return pool.map(_collect_chunk, chunks)
    finally:
        _WORK = None
