"""Static analysis substrates: pointer analysis, call graph, mod/ref.

These are the prerequisites of Figure 3's pipeline: the value-flow
analysis works with any pointer analysis done a priori; this package
provides the configuration the paper evaluated (offset-based
field-sensitive Andersen's analysis with 1-callsite heap cloning).
"""

from repro.analysis.andersen import (
    DeltaSolver,
    PointerResult,
    ReferenceSolver,
    analyze_pointers,
)
from repro.analysis.callgraph import CallGraph
from repro.analysis.solverstats import SolverStats
from repro.analysis.memobjects import (
    FUNC,
    GLOBAL,
    HEAP,
    STACK,
    MemLoc,
    MemObject,
    PVar,
)
from repro.analysis.modref import ModRefResult
from repro.analysis.tiers import (
    TIERS,
    InvalidTierError,
    default_tier,
    parse_tier,
    resolve_tier,
)
from repro.analysis.unify import presolve_unify

__all__ = [
    "DeltaSolver",
    "PointerResult",
    "ReferenceSolver",
    "SolverStats",
    "analyze_pointers",
    "CallGraph",
    "FUNC",
    "GLOBAL",
    "HEAP",
    "STACK",
    "MemLoc",
    "MemObject",
    "PVar",
    "ModRefResult",
    "TIERS",
    "InvalidTierError",
    "default_tier",
    "parse_tier",
    "resolve_tier",
    "presolve_unify",
]
