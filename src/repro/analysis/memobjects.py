"""Abstract memory objects and locations.

The pointer analysis abstracts runtime memory into *abstract objects*:
one per allocation site (possibly cloned per call site for allocation
wrappers — the paper's "1-callsite-sensitive heap cloning"), one per
global variable, and one per function (for function pointers).

Field sensitivity is offset-based: an object with ``n`` fields yields the
locations ``(obj, 0) .. (obj, n-1)``.  Arrays are collapsed to a single
field ("arrays are treated as a whole", Section 4.1).  A
:class:`MemLoc` — an ``(object, field)`` pair — is the paper's
"address-taken variable" ρ: the unit of μ/χ annotation, memory SSA and
VFG construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

STACK = "stack"
HEAP = "heap"
GLOBAL = "global"
FUNC = "func"


@dataclass(frozen=True)
class MemObject:
    """An abstract memory object.

    Attributes:
        name: Unique identifier (allocation-site name, global name or
            function name; heap clones append their call-site id).
        kind: ``"stack"``, ``"heap"``, ``"global"`` or ``"func"``.
        initialized: Whether the object's storage starts defined
            (``alloc_T``: calloc-style allocation or a C global).
        is_array: Collapses all accesses to field 0.
        size: Number of runtime cells (= fields unless an array).
        func: Owning function for stack/heap objects, target function
            name for function objects, ``None`` for globals.
        alloc_uid: uid of the allocating instruction (``None`` for
            globals and functions).
        context: Call-site uid for heap-cloned objects, else ``None``.
    """

    name: str
    kind: str
    initialized: bool = False
    is_array: bool = False
    size: int = 1
    func: Optional[str] = None
    alloc_uid: Optional[int] = None
    context: Optional[int] = None

    @property
    def num_fields(self) -> int:
        return 1 if self.is_array else self.size

    @property
    def is_function(self) -> bool:
        return self.kind == FUNC

    def locs(self) -> List["MemLoc"]:
        """All locations of this object."""
        return [MemLoc(self, f) for f in range(self.num_fields)]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MemLoc:
    """An address-taken variable ρ: an ``(object, field)`` pair."""

    obj: MemObject
    field: int = 0

    def shifted(self, offset: Optional[int]) -> Tuple["MemLoc", ...]:
        """The locations ``offset`` fields further into the object.

        Arrays are collapsed to their single field.  A constant offset
        is clamped to the object's field count (mirroring the
        offset-based model of [10]); a non-constant offset (``None``)
        may land on *any* field, so all of them are returned.
        """
        if self.obj.is_array:
            return (MemLoc(self.obj, 0),)
        if offset is None:
            return tuple(MemLoc(self.obj, f) for f in range(self.obj.num_fields))
        target = min(self.field + offset, self.obj.num_fields - 1)
        return (MemLoc(self.obj, target),)

    def __str__(self) -> str:
        if self.obj.num_fields > 1:
            return f"{self.obj.name}#{self.field}"
        return self.obj.name


@dataclass(frozen=True)
class PVar:
    """A top-level pointer-analysis variable, qualified by function.

    ``func`` is ``None`` for synthetic whole-program variables.
    """

    func: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.func or '<global>'}::{self.name}"


def global_object(name: str, initialized: bool, size: int, is_array: bool) -> MemObject:
    return MemObject(
        name=f"g:{name}",
        kind=GLOBAL,
        initialized=initialized,
        is_array=is_array,
        size=size,
    )


def function_object(name: str) -> MemObject:
    return MemObject(name=f"fn:{name}", kind=FUNC, initialized=True, func=name)
