"""Call graph construction on top of the pointer analysis results."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir import instructions as ins
from repro.ir.module import Module
from repro.analysis.andersen import PointerResult


class CallGraph:
    """Whole-program call graph with resolved indirect calls.

    Attributes:
        callees: Callee function names per call-site uid.
        call_sites: Call uids contained in each function.
        callers: Caller call-site uids per function.
        recursive: Functions participating in a call-graph cycle
            (including through function pointers).
    """

    def __init__(self, module: Module, pointers: PointerResult) -> None:
        self.module = module
        self.callees: Dict[int, Set[str]] = {}
        self.call_sites: Dict[str, List[int]] = {name: [] for name in module.functions}
        self.callers: Dict[str, Set[int]] = {name: set() for name in module.functions}
        self.containing: Dict[int, str] = {}

        for function in module.functions.values():
            for instr in function.instructions():
                if not isinstance(instr, ins.Call):
                    continue
                targets = set(pointers.call_targets.get(instr.uid, ()))
                targets &= set(module.functions)
                self.callees[instr.uid] = targets
                self.call_sites[function.name].append(instr.uid)
                self.containing[instr.uid] = function.name
                for target in targets:
                    self.callers[target].add(instr.uid)

        self.recursive = self._find_recursive()

    def callees_of(self, call: ins.Call) -> Set[str]:
        return self.callees.get(call.uid, set())

    def successors(self, func: str) -> Set[str]:
        out: Set[str] = set()
        for uid in self.call_sites.get(func, ()):
            out |= self.callees.get(uid, set())
        return out

    def _find_recursive(self) -> Set[str]:
        """Functions in SCCs of size > 1 or with a self-loop (Tarjan)."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        recursive: Set[str] = set()
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(self.successors(root))))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = lowlink[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(sorted(self.successors(child)))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if not advanced:
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[node])
                    if lowlink[node] == index[node]:
                        scc: List[str] = []
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            scc.append(member)
                            if member == node:
                                break
                        if len(scc) > 1 or node in self.successors(node):
                            recursive.update(scc)

        for name in self.module.functions:
            if name not in index:
                strongconnect(name)
        return recursive

    def topo_order_bottom_up(self) -> List[str]:
        """Functions ordered callees-first (cycles broken arbitrarily)."""
        visited: Set[str] = set()
        order: List[str] = []

        for start in self.module.functions:
            if start in visited:
                continue
            stack: List[tuple] = [(start, iter(sorted(self.successors(start))))]
            visited.add(start)
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if child not in visited:
                        visited.add(child)
                        stack.append((child, iter(sorted(self.successors(child)))))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()
        return order
