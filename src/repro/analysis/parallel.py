"""Process-parallelism plumbing shared by the analysis pipeline.

Every parallel path in the system — sharded constraint generation
(:mod:`repro.analysis.shardgen`) and batched demand queries
(:meth:`repro.vfg.demand.DemandEngine.query_sites`) — funnels its
worker-count decision through :func:`resolve_jobs`, so one knob
controls them all:

1. an explicit ``jobs=`` argument wins;
2. otherwise a session default installed by :func:`default_jobs`
   (the ``repro report --jobs N`` path, where threading an argument
   through every harness builder would be noise);
3. otherwise the ``REPRO_JOBS`` environment variable (the CI smoke
   lane runs the whole tier-1 suite under ``REPRO_JOBS=2``);
4. otherwise 1 — strictly serial, the default.

Defaulted worker counts (cases 2-3) are additionally subject to a
workload-size floor: below :data:`PARALLEL_MIN_OPS` instructions the
phase runs serially anyway, because fork-pool setup and the shard
merge cost more than they save on small modules.  Explicit ``jobs=``
arguments are taken literally.

All pools are ``fork``-start: workers inherit the module / VFG /
wrappers / memo snapshot through copy-on-write memory instead of
pickling them, which is what makes per-call pools affordable.  On
platforms without ``fork`` every parallel path silently degrades to
the serial code — results are identical either way (that is the
contract the differential suite enforces), parallelism is purely a
wall-clock optimization.
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, TypeVar

#: Environment variable consulted when no explicit ``jobs=`` is given.
JOBS_ENV = "REPRO_JOBS"

#: Module size (instruction count) below which a *defaulted* worker
#: count falls back to serial.  Forking a pool, pickling op tapes back
#: and replaying the merge costs more than it saves on small modules:
#: the ``parallel_constraint_gen`` benchmark shows jobs=4 running ~5x
#: slower than serial at ~4.7k instructions (factor-8 pointer-heavy),
#: so the break-even sits comfortably above every corpus-scale module.
#: An explicit ``jobs=`` argument bypasses the threshold — differential
#: tests and benchmarks must be able to force sharding at any size.
PARALLEL_MIN_OPS = 10_000

_default_jobs: Optional[int] = None

T = TypeVar("T")


class InvalidJobsError(ValueError):
    """A worker count that is not a positive integer."""


def parse_jobs(raw: str, origin: str = "--jobs") -> int:
    """Validate a user-supplied worker count (CLI flag or env var).

    Raises :class:`InvalidJobsError` with a one-line, human-readable
    message — the CLI turns it into a clean non-zero exit instead of a
    traceback."""
    try:
        jobs = int(raw)
    except (TypeError, ValueError):
        raise InvalidJobsError(
            f"{origin} must be a positive integer, got {raw!r}"
        ) from None
    if jobs < 1:
        raise InvalidJobsError(
            f"{origin} must be a positive integer, got {raw!r}"
        )
    return jobs


def resolve_jobs(
    jobs: Optional[int] = None, *, ops: Optional[int] = None
) -> int:
    """The effective worker count for one parallel phase (>= 1).

    An unset ``REPRO_JOBS`` means serial; a *malformed* one raises
    :class:`InvalidJobsError` — a typo'd worker count silently running
    the whole analysis serially is exactly the kind of quiet
    misconfiguration the observability layer exists to prevent.

    ``ops`` is the workload size (module instruction count).  When the
    worker count came from the session default or the environment —
    not an explicit ``jobs=`` argument — and ``ops`` is below
    :data:`PARALLEL_MIN_OPS`, the phase runs serially: fork-pool
    overhead dominates at that size, and "parallel by default" must
    not be a slowdown by default.  Callers that care log the fallback
    (``SolverStats.gen_serial_fallbacks``)."""
    if jobs is not None:
        return max(1, int(jobs))
    if _default_jobs is not None:
        resolved = _default_jobs
    else:
        raw = os.environ.get(JOBS_ENV)
        if raw is None:
            return 1
        resolved = parse_jobs(raw, origin=JOBS_ENV)
    if resolved > 1 and ops is not None and ops < PARALLEL_MIN_OPS:
        return 1
    return resolved


@contextmanager
def default_jobs(jobs: Optional[int]) -> Iterator[None]:
    """Install ``jobs`` as the session default for the enclosed block.

    ``None`` is a no-op (callers can pass an optional CLI argument
    straight through).  Nesting restores the previous default on exit.
    """
    global _default_jobs
    if jobs is None:
        yield
        return
    previous = _default_jobs
    _default_jobs = max(1, int(jobs))
    try:
        yield
    finally:
        _default_jobs = previous


def fork_available() -> bool:
    """Whether fork-start pools exist on this platform (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


def fork_pool(processes: int):
    """A fork-start worker pool (callers own the ``with`` lifetime)."""
    return multiprocessing.get_context("fork").Pool(processes)


def chunk_evenly(items: Sequence[T], chunks: int) -> List[List[T]]:
    """Split ``items`` into up to ``chunks`` contiguous, near-even runs.

    Contiguity is load-bearing: the shard-merge protocol replays chunk
    results in order, so concatenating the chunks must reproduce the
    serial iteration order exactly.  Empty chunks are dropped.
    """
    items = list(items)
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out: List[List[T]] = []
    start = 0
    for index in range(chunks):
        stop = start + size + (1 if index < extra else 0)
        if stop > start:
            out.append(items[start:stop])
        start = stop
    return out
