"""Observability for the analysis engines (solver + demand queries).

:class:`SolverStats` counts the work the Andersen constraint solver
actually performs — worklist pops, facts offered along edges, novel
facts inserted, SCCs collapsed by online cycle elimination — and
records wall time per phase.  One instance is threaded through every
solver pass of a single
:func:`repro.analysis.andersen.analyze_pointers` call (the wrapper
pre-pass and the heap-cloned re-run accumulate into the same object)
and is surfaced on :class:`~repro.analysis.andersen.PointerResult`, the
harness report and the ``repro`` CLI.

The distinction between *propagated* and *added* facts is the whole
story of difference propagation: a naive solver re-offers a node's full
points-to set on every pop, so ``facts_propagated`` dwarfs
``facts_added``; the delta solver offers each fact along each edge
once, so the two counters stay within a small factor of each other.

:class:`QueryStats` is the same idea for the demand-driven definedness
engine (:mod:`repro.vfg.demand`): per-query latency, states and
distinct VFG nodes visited, memo hits and early ⊥-terminations.  The
headline figure is ``peak_nodes_visited`` against ``graph_nodes`` —
a demand query that touches a small fraction of the graph is the whole
point of slicing instead of resolving Γ for every node.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.obs.trace import TRACE


@dataclass
class SolverStats:
    """Work counters and phase timings for one pointer-analysis run.

    Attributes:
        solver: ``"delta"`` or ``"reference"``.
        schedule: Worklist discipline — ``"wave"`` (topological waves
            over the copy-edge DAG, the delta solver's default) or
            ``"fifo"`` (plain worklist pops).
        tier: Precision tier of the run — ``"full"``, ``"lazy"`` or
            ``"unified"`` (see :mod:`repro.analysis.tiers`).
        storage: Points-to representation — ``"int"`` (dense Python-int
            bitsets) or ``"compressed"`` (roaring-style chunked
            containers; see :mod:`repro.analysis.bitsets`).
        solve_passes: Number of ``solve()`` fixpoints run (2 with heap
            cloning: the wrapper-detection pre-pass plus the re-run).
        pops: Worklist pops that did propagation work.
        waves: Propagation waves executed (wave schedule only).
        peak_wave_width: Most nodes popped in a single wave.
        wave_reoffers_avoided: Deltas merged into a node still pending
            later in the current wave — each one a pop (and a re-offer
            of that node's delta) the FIFO schedule would have risked.
        gen_shards: Constraint-generation shards merged (0 when the
            generator ran serially).
        gen_serial_fallbacks: Constraint-generation passes that asked
            for parallel sharding (via the session default or
            ``REPRO_JOBS``) but fell back to serial because the module
            was below the fork-pool break-even size
            (:data:`repro.analysis.parallel.PARALLEL_MIN_OPS`).
        facts_propagated: Facts offered along constraint edges (the
            solver's raw propagation volume — the figure difference
            propagation shrinks).
        facts_added: Facts newly inserted into a points-to set.
        copy_edges: Distinct copy edges added to the constraint graph
            (counted at insertion, before any collapsing).
        live_copy_edges: Distinct representative-level copy edges left
            when solving finished — what unification and cycle collapse
            actually shrank the graph to.
        icall_bindings: Distinct (call site, callee) pairs bound for
            indirect calls.
        lcd_triggers: Lazy-cycle-detection sweeps started.
        sccs_collapsed: Copy-edge SCCs collapsed onto a representative.
        scc_nodes_merged: Total nodes folded into representatives.
        unified_nodes: Nodes folded into their single copy source by
            the Steensgaard-style pre-collapse
            (:mod:`repro.analysis.unify`; unified tier only).
        pk_reorders: Pearce–Kelly reorder operations performed to keep
            the incremental topological order valid as copy edges
            landed during solving (wave schedule only).
        lazy_forced_nodes: Distinct constraint-graph nodes pulled into
            the forced slice universe by demand queries (lazy tier
            only; a full ``force_all`` sets it to the node count).
        peak_worklist: High-water mark of the worklist.
        bytes_pts: Bytes of the points-to representation at finalize,
            summed over live union-find representatives — packed
            container bytes in compressed storage, dense limb bytes in
            int storage (max across solve passes).  The memory figure
            the ``tools/diff_solver_stats.py`` gate regresses on.
        peak_rss: Process peak resident set size in bytes
            (``ru_maxrss``) observed at finalize.
        container_mix: Histogram of packed container kinds across all
            live points-to sets — ``{"array": n, "bitmap": n,
            "run": n}`` for compressed storage, ``{"int": n}`` for int
            storage.
        phase_seconds: Wall time per phase (``constraints``, ``unify``,
            ``solve``, ``wrappers``, ``finalize``), accumulated across
            passes.
    """

    solver: str = "delta"
    schedule: str = "fifo"
    tier: str = "full"
    storage: str = "int"
    solve_passes: int = 0
    pops: int = 0
    waves: int = 0
    peak_wave_width: int = 0
    wave_reoffers_avoided: int = 0
    gen_shards: int = 0
    gen_serial_fallbacks: int = 0
    facts_propagated: int = 0
    facts_added: int = 0
    copy_edges: int = 0
    live_copy_edges: int = 0
    icall_bindings: int = 0
    lcd_triggers: int = 0
    sccs_collapsed: int = 0
    scc_nodes_merged: int = 0
    unified_nodes: int = 0
    pk_reorders: int = 0
    lazy_forced_nodes: int = 0
    peak_worklist: int = 0
    bytes_pts: int = 0
    peak_rss: int = 0
    container_mix: Dict[str, int] = field(default_factory=dict)
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall time of the enclosed block under ``name``.

        When tracing is enabled the block also becomes a span, so
        every ``stats.phase(...)`` site (constraint generation, unify,
        solve, wrappers, finalize) shows up in the trace tree for free.
        """
        span = (
            TRACE.span(name, tier=self.tier, storage=self.storage)
            if TRACE.enabled
            else None
        )
        if span is not None:
            span.__enter__()
        started = time.perf_counter()
        try:
            yield
        finally:
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + (
                time.perf_counter() - started
            )
            if span is not None:
                span.__exit__(None, None, None)

    def note_worklist(self, size: int) -> None:
        if size > self.peak_worklist:
            self.peak_worklist = size

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (used by the benchmark trajectory)."""
        return {
            "solver": self.solver,
            "schedule": self.schedule,
            "tier": self.tier,
            "storage": self.storage,
            "solve_passes": self.solve_passes,
            "pops": self.pops,
            "waves": self.waves,
            "peak_wave_width": self.peak_wave_width,
            "wave_reoffers_avoided": self.wave_reoffers_avoided,
            "gen_shards": self.gen_shards,
            "gen_serial_fallbacks": self.gen_serial_fallbacks,
            "facts_propagated": self.facts_propagated,
            "facts_added": self.facts_added,
            "copy_edges": self.copy_edges,
            "live_copy_edges": self.live_copy_edges,
            "icall_bindings": self.icall_bindings,
            "lcd_triggers": self.lcd_triggers,
            "sccs_collapsed": self.sccs_collapsed,
            "scc_nodes_merged": self.scc_nodes_merged,
            "unified_nodes": self.unified_nodes,
            "pk_reorders": self.pk_reorders,
            "lazy_forced_nodes": self.lazy_forced_nodes,
            "peak_worklist": self.peak_worklist,
            "bytes_pts": self.bytes_pts,
            "peak_rss": self.peak_rss,
            "container_mix": dict(sorted(self.container_mix.items())),
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.phase_seconds.items())
            },
            "total_seconds": round(self.total_seconds, 6),
        }

    def merge(self, other: "SolverStats") -> None:
        """Fold ``other``'s counters into this instance."""
        self.solve_passes += other.solve_passes
        self.pops += other.pops
        self.waves += other.waves
        self.peak_wave_width = max(self.peak_wave_width, other.peak_wave_width)
        self.wave_reoffers_avoided += other.wave_reoffers_avoided
        self.gen_shards += other.gen_shards
        self.gen_serial_fallbacks += other.gen_serial_fallbacks
        self.facts_propagated += other.facts_propagated
        self.facts_added += other.facts_added
        self.copy_edges += other.copy_edges
        self.live_copy_edges = max(
            self.live_copy_edges, other.live_copy_edges
        )
        self.icall_bindings += other.icall_bindings
        self.lcd_triggers += other.lcd_triggers
        self.sccs_collapsed += other.sccs_collapsed
        self.scc_nodes_merged += other.scc_nodes_merged
        self.unified_nodes += other.unified_nodes
        self.pk_reorders += other.pk_reorders
        self.lazy_forced_nodes = max(
            self.lazy_forced_nodes, other.lazy_forced_nodes
        )
        self.peak_worklist = max(self.peak_worklist, other.peak_worklist)
        self.bytes_pts = max(self.bytes_pts, other.bytes_pts)
        self.peak_rss = max(self.peak_rss, other.peak_rss)
        for kind, count in other.container_mix.items():
            self.container_mix[kind] = (
                self.container_mix.get(kind, 0) + count
            )
        for name, seconds in other.phase_seconds.items():
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + seconds
            )

    def format_summary(self) -> str:
        """Multi-line human-readable profile (CLI / harness report)."""
        lines = [
            f"solver profile ({self.solver}, {self.schedule} schedule, "
            f"{self.tier} tier, {self.storage} storage, "
            f"{self.solve_passes} solve pass(es)):",
            f"  pops              {self.pops:>10d}",
        ]
        if self.waves:
            lines.append(
                f"  waves             {self.waves:>10d} "
                f"(peak width {self.peak_wave_width}, "
                f"{self.wave_reoffers_avoided} re-offers avoided, "
                f"{self.pk_reorders} PK reorders)"
            )
        if self.gen_shards:
            lines.append(
                f"  gen shards        {self.gen_shards:>10d}"
            )
        if self.gen_serial_fallbacks:
            lines.append(
                f"  serial fallbacks  {self.gen_serial_fallbacks:>10d} "
                f"(module below the parallel-gen break-even size)"
            )
        lines += [
            f"  facts propagated  {self.facts_propagated:>10d}",
            f"  facts added       {self.facts_added:>10d}",
            f"  copy edges        {self.copy_edges:>10d} "
            f"({self.live_copy_edges} live post-solve)",
            f"  icall bindings    {self.icall_bindings:>10d}",
            f"  SCCs collapsed    {self.sccs_collapsed:>10d} "
            f"({self.scc_nodes_merged} nodes merged, "
            f"{self.lcd_triggers} LCD sweeps)",
        ]
        if self.unified_nodes:
            lines.append(
                f"  unified nodes     {self.unified_nodes:>10d} "
                f"(Steensgaard pre-collapse)"
            )
        if self.lazy_forced_nodes:
            lines.append(
                f"  lazy forced nodes {self.lazy_forced_nodes:>10d}"
            )
        lines.append(f"  peak worklist     {self.peak_worklist:>10d}")
        for name in ("constraints", "unify", "solve", "wrappers", "finalize"):
            if name in self.phase_seconds:
                lines.append(
                    f"  {name + ' time':<18s}{self.phase_seconds[name]:>9.4f}s"
                )
        for name in sorted(self.phase_seconds):
            if name not in ("constraints", "unify", "solve", "wrappers",
                            "finalize"):
                lines.append(
                    f"  {name + ' time':<18s}{self.phase_seconds[name]:>9.4f}s"
                )
        lines.append(f"  total time        {self.total_seconds:>9.4f}s")
        return "\n".join(lines)

    def format_memory_summary(self) -> str:
        """Human-readable memory profile (``repro check --mem-stats``)."""
        mix = ", ".join(
            f"{count} {kind}"
            for kind, count in sorted(self.container_mix.items())
        )
        lines = [
            f"memory profile ({self.storage} storage):",
            f"  points-to bytes   {self.bytes_pts:>12,d}",
            f"  peak RSS          {self.peak_rss:>12,d}"
            f"  ({self.peak_rss / (1024 * 1024):.1f} MiB)",
        ]
        if mix:
            lines.append(f"  containers        {mix}")
        return "\n".join(lines)


@dataclass
class QueryStats:
    """Work counters for one demand-driven definedness engine.

    Attributes:
        resolver: ``"callstring"`` or ``"summary"``.
        context_depth: Call-string depth (``-1`` for the summary mode).
        graph_nodes: Node count of the queried VFG (the denominator of
            the visited-fraction headline figure).
        queries: Definedness queries answered.
        bottom_verdicts: Queries that resolved ⊥ (maybe-undefined).
        memo_hits: Queries answered straight from the memo table,
            without visiting a single state.
        states_visited: (node, context) search states expanded, summed
            over all queries.
        nodes_visited: Distinct VFG nodes touched, summed per query.
        peak_nodes_visited: Largest single-query distinct-node count.
        early_cutoffs: Searches stopped the moment a ⊥-path was found
            (as opposed to exhausting the backward slice).
        memo_entries: Current size of the engine's verdict memo.
        query_seconds: Total wall time spent answering queries.
        max_query_seconds: Slowest single query.
        parallel_jobs: Largest worker count a batched
            ``query_sites(jobs=N)`` call fanned out to (1 = all
            queries ran serially).
        parallel_batches: Parallel ``query_sites`` fan-outs performed.
    """

    resolver: str = "callstring"
    context_depth: int = 1
    graph_nodes: int = 0
    queries: int = 0
    bottom_verdicts: int = 0
    memo_hits: int = 0
    states_visited: int = 0
    nodes_visited: int = 0
    peak_nodes_visited: int = 0
    early_cutoffs: int = 0
    memo_entries: int = 0
    query_seconds: float = 0.0
    max_query_seconds: float = 0.0
    parallel_jobs: int = 1
    parallel_batches: int = 0

    def note_query(
        self,
        *,
        bottom: bool,
        states: int,
        nodes: int,
        memo_hit: bool,
        early_cutoff: bool,
        seconds: float,
    ) -> None:
        """Record one answered query."""
        self.queries += 1
        if bottom:
            self.bottom_verdicts += 1
        if memo_hit:
            self.memo_hits += 1
        if early_cutoff:
            self.early_cutoffs += 1
        self.states_visited += states
        self.nodes_visited += nodes
        if nodes > self.peak_nodes_visited:
            self.peak_nodes_visited = nodes
        self.query_seconds += seconds
        if seconds > self.max_query_seconds:
            self.max_query_seconds = seconds

    @property
    def peak_visited_fraction(self) -> float:
        """Largest single-query share of the graph actually visited."""
        if not self.graph_nodes:
            return 0.0
        return self.peak_nodes_visited / self.graph_nodes

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (used by the benchmark trajectory)."""
        return {
            "resolver": self.resolver,
            "context_depth": self.context_depth,
            "graph_nodes": self.graph_nodes,
            "queries": self.queries,
            "bottom_verdicts": self.bottom_verdicts,
            "memo_hits": self.memo_hits,
            "states_visited": self.states_visited,
            "nodes_visited": self.nodes_visited,
            "peak_nodes_visited": self.peak_nodes_visited,
            "peak_visited_fraction": round(self.peak_visited_fraction, 6),
            "early_cutoffs": self.early_cutoffs,
            "memo_entries": self.memo_entries,
            "query_seconds": round(self.query_seconds, 6),
            "max_query_seconds": round(self.max_query_seconds, 6),
            "parallel_jobs": self.parallel_jobs,
            "parallel_batches": self.parallel_batches,
        }

    def merge(self, other: "QueryStats") -> None:
        """Fold ``other``'s counters into this instance."""
        self.queries += other.queries
        self.bottom_verdicts += other.bottom_verdicts
        self.memo_hits += other.memo_hits
        self.states_visited += other.states_visited
        self.nodes_visited += other.nodes_visited
        self.peak_nodes_visited = max(
            self.peak_nodes_visited, other.peak_nodes_visited
        )
        self.early_cutoffs += other.early_cutoffs
        self.memo_entries = max(self.memo_entries, other.memo_entries)
        self.graph_nodes = max(self.graph_nodes, other.graph_nodes)
        self.query_seconds += other.query_seconds
        self.max_query_seconds = max(
            self.max_query_seconds, other.max_query_seconds
        )
        self.parallel_jobs = max(self.parallel_jobs, other.parallel_jobs)
        self.parallel_batches += other.parallel_batches

    def format_summary(self) -> str:
        """Multi-line human-readable profile (CLI / harness report)."""
        depth = "∞" if self.context_depth < 0 else str(self.context_depth)
        lines = [
            f"demand-query profile ({self.resolver}, depth {depth}, "
            f"{self.graph_nodes} VFG nodes):",
            f"  queries           {self.queries:>10d} "
            f"({self.bottom_verdicts} ⊥, {self.memo_hits} memo hits)",
            f"  states visited    {self.states_visited:>10d}",
            f"  nodes visited     {self.nodes_visited:>10d} "
            f"(peak {self.peak_nodes_visited}, "
            f"{100 * self.peak_visited_fraction:.1f}% of graph)",
            f"  early ⊥ cutoffs   {self.early_cutoffs:>10d}",
            f"  memo entries      {self.memo_entries:>10d}",
            f"  query time        {self.query_seconds:>9.4f}s "
            f"(max {self.max_query_seconds:.4f}s)",
        ]
        if self.parallel_batches:
            lines.append(
                f"  parallel batches  {self.parallel_batches:>10d} "
                f"(up to {self.parallel_jobs} jobs)"
            )
        return "\n".join(lines)
