"""Overhead cost model: dynamic shadow work → slowdown percentage.

The paper reports wall-clock slowdown of compiled binaries; our
substrate is an interpreter, so absolute timing is meaningless.
Instead, slowdown is modelled as a linear function of the dynamic
shadow work — the same quantities the paper's Figure 11 shows drive its
Figure 10:

    slowdown% = 100 · (c_read·R + c_write·W + c_check·C) / N

where R/W/C are dynamic shadow reads/writes/checks and N is the number
of native instructions executed.  The default coefficients are
calibrated so that MSan-style full instrumentation of the bundled
workloads lands in the paper's reported 3x-slowdown regime; all
comparisons between tools divide out the coefficients' absolute scale,
so the *shape* of the results is insensitive to the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.events import ExecutionReport


@dataclass(frozen=True)
class CostModel:
    """Per-event cost coefficients, in units of one native operation."""

    read_cost: float = 1.5
    write_cost: float = 1.05
    check_cost: float = 1.35

    def shadow_work(self, report: ExecutionReport) -> float:
        events = report.events
        return (
            self.read_cost * events.shadow_reads
            + self.write_cost * events.shadow_writes
            + self.check_cost * events.checks
        )

    def slowdown_percent(self, report: ExecutionReport) -> float:
        """Relative slowdown over native, in percent (302.0 = 3.02x
        extra time, i.e. ~4x total, matching the paper's reporting)."""
        if report.native_ops == 0:
            return 0.0
        return 100.0 * self.shadow_work(report) / report.native_ops


DEFAULT_COST_MODEL = CostModel()
