"""A shadow-memory interpreter for the TinyC IR.

Stands in for the paper's compiled binaries: it executes a module in SSA
form while (a) tracking *ground-truth* definedness of every value and
memory cell (the oracle — what a perfect detector would know), and (b)
executing the shadow operations of an :class:`InstrumentationPlan`
exactly where a compiled MSan/Usher binary would.

Definedness is **bit-level precise** (§4.1): every value and shadow is
a 64-bit undefined mask, propagated by the rules of
:mod:`repro.runtime.bits` — bitwise operations can launder undefined
bits, non-bitwise operations spread them over the whole word.  The
oracle, MSan and Usher all use the same rules, so their reports are
exactly comparable.

The shadow machine enforces the paper's soundness invariant — "all
shadow values accessed by any shadow statement at run time are
well-defined": reading a shadow slot that no instrumentation ever wrote
raises :class:`ShadowProtocolError`, which the test-suite uses to verify
the guided instrumentation never under-instruments.

Total semantics (documented substitutions for C undefined behaviour):
division/modulo by zero yield 0; out-of-range element offsets clamp to
the object's bounds; values read from uninitialized storage are 0 with
all oracle-mask bits set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Const, Value, Var
from repro.core.plan import (
    AndShadowVar,
    BinOpShadow,
    Check,
    CopyShadowVar,
    InstrumentationPlan,
    LoadShadow,
    PhiShadow,
    RelayIn,
    RelayOut,
    SetShadowMem,
    SetShadowVar,
    ShadowOp,
    StoreShadow,
    UnOpShadow,
    VarSlot,
)
from repro.runtime.bits import (
    DEFINED,
    UNDEFINED,
    binop_mask,
    spread,
    unop_mask,
)
from repro.opt.localopt import fold_binop, fold_unop
from repro.runtime.events import DynamicEvents, ExecutionReport


class RuntimeFault(Exception):
    """The program performed an unrecoverable action (bad pointer,
    unresolved indirect call, stack overflow)."""


class StepLimitExceeded(Exception):
    """The step budget ran out (guards runaway random programs)."""


class ShadowProtocolError(Exception):
    """A shadow statement read a shadow value nothing initialized —
    the instrumentation plan is unsound (test oracle)."""


@dataclass
class _Cell:
    value: int = 0
    mask: int = UNDEFINED  # 64-bit undefined mask (0 = fully defined)


class _Frame:
    __slots__ = ("function", "env", "shadow")

    def __init__(self, function: Function) -> None:
        self.function = function
        #: (name, version) -> (value, oracle undefined-mask)
        self.env: Dict[VarSlot, Tuple[int, int]] = {}
        #: (name, version) -> shadow undefined-mask
        self.shadow: Dict[VarSlot, int] = {}


_MASK = (1 << 64) - 1


def _wrap(value: int) -> int:
    """Two's-complement 64-bit wrap-around."""
    value &= _MASK
    return value - (1 << 64) if value >= 1 << 63 else value


class Interpreter:
    """Executes a module, optionally under an instrumentation plan."""

    def __init__(
        self,
        module: Module,
        plan: Optional[InstrumentationPlan] = None,
        max_steps: int = 2_000_000,
        max_depth: int = 400,
    ) -> None:
        self.module = module
        self.plan = plan
        self.max_steps = max_steps
        self.max_depth = max_depth

        self.report = ExecutionReport()
        self.events = self.report.events

        #: flat memory: address -> cell
        self.memory: Dict[int, _Cell] = {}
        #: address -> (base, size) of its allocation
        self.extent: Dict[int, Tuple[int, int]] = {}
        #: address -> shadow undefined-mask
        self.shadow_memory: Dict[int, int] = {}
        self._next_addr = 16
        #: function name <-> code address
        self._func_addr: Dict[str, int] = {}
        self._addr_func: Dict[int, str] = {}
        #: global name -> base address
        self.global_addr: Dict[str, int] = {}
        #: σ_g relay slots
        self._relay: Dict[Union[int, str], int] = {}
        self._depth = 0
        self._steps = 0
        #: allocation provenance: base address -> ("alloc", uid) or
        #: ("global", name); used by trace_memory.
        self.origin: Dict[int, Tuple[str, object]] = {}
        self.trace_memory = False
        #: load/store uid -> set of origins actually accessed
        self.mem_accesses: Dict[int, set] = {}
        #: optional execution trace: first ``trace_limit`` executed
        #: instructions, as "func: instr" strings.
        self.trace_limit = 0
        self.trace_log: List[str] = []

        self._layout()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _layout(self) -> None:
        for index, name in enumerate(self.module.functions):
            addr = -(index + 1)
            self._func_addr[name] = addr
            self._addr_func[addr] = name
        for glob in self.module.globals.values():
            base = self._allocate(glob.size, glob.initialized)
            self.origin[base] = ("global", glob.name)
            self.global_addr[glob.name] = base
            if self.plan is not None:
                # Global shadow is static storage: initialized at load
                # time by both MSan and Usher.
                bit = DEFINED if glob.initialized else UNDEFINED
                for offset in range(glob.size):
                    self.shadow_memory[base + offset] = bit

    def _allocate(self, size: int, initialized: bool) -> int:
        base = self._next_addr
        self._next_addr += size + 1  # +1: red zone between objects
        mask = DEFINED if initialized else UNDEFINED
        for offset in range(size):
            self.memory[base + offset] = _Cell(0, mask)
            self.extent[base + offset] = (base, size)
        return base

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, args: Optional[List[int]] = None) -> ExecutionReport:
        import sys

        main = self.module.functions.get("main")
        if main is None:
            raise RuntimeFault("no main function")
        # Each simulated frame costs a handful of Python frames; make
        # sure the guest's max_depth guard fires before CPython's.
        needed = self.max_depth * 40 + 1000
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)
        values = [(v, DEFINED) for v in (args or [])]
        result = self._call(main, values)
        self.report.exit_value = result[0]
        self.report.steps = self._steps
        return self.report

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise StepLimitExceeded(f"exceeded {self.max_steps} steps")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _call(
        self, function: Function, args: List[Tuple[int, int]]
    ) -> Tuple[int, int]:
        self._depth += 1
        if self._depth > self.max_depth:
            raise RuntimeFault("call stack overflow")
        frame = _Frame(function)
        for formal, actual in zip(function.params, args):
            # SSA form names the entry definition version 1; pre-SSA
            # code uses the unversioned (version-0) slot.
            frame.env[(formal, 1)] = actual
            frame.env[(formal, 0)] = actual
        if self.plan is not None:
            for op in self.plan.entry_ops.get(function.name, ()):
                self._exec_op(op, frame, prev_label=None)

        block = function.entry
        prev_label: Optional[str] = None
        result: Tuple[int, int] = (0, DEFINED)
        while True:
            next_label, returned = self._exec_block(frame, block, prev_label)
            if next_label is None:
                result = returned  # type: ignore[assignment]
                break
            prev_label = block.label
            block = function.block(next_label)
        self._depth -= 1
        return result

    def _exec_block(self, frame, block, prev_label):
        # φs evaluate in parallel on block entry.
        phis = block.phis()
        if phis:
            staged = []
            for phi in phis:
                self._tick()
                self.report.native_ops += 1
                value = self._value(frame, phi.incomings[prev_label])
                staged.append((phi, value))
            for phi, value in staged:
                frame.env[(phi.dst.name, phi.dst.version or 0)] = value
                self._run_ops(phi, frame, prev_label, pre=False)

        for instr in block.instrs:
            if isinstance(instr, ins.Phi):
                continue
            self._tick()
            self.report.native_ops += 1
            if len(self.trace_log) < self.trace_limit:
                self.trace_log.append(
                    f"{frame.function.name}: {instr}"
                )
            self._run_ops(instr, frame, prev_label, pre=True)
            outcome = self._exec_instr(frame, instr, prev_label)
            if outcome is not None:
                kind, payload = outcome
                if kind == "jump":
                    return payload, None
                if kind == "ret":
                    return None, payload
            self._run_ops(instr, frame, prev_label, pre=False)
        raise RuntimeFault(f"block {block.label} fell through")

    def _run_ops(self, instr, frame, prev_label, pre: bool) -> None:
        if self.plan is None:
            return
        ops = self.plan.ops.get(instr.uid)
        if ops is None:
            return
        for op in ops.pre if pre else ops.post:
            self._exec_op(op, frame, prev_label, instr)

    # ------------------------------------------------------------------
    def _value(self, frame: _Frame, value: Value) -> Tuple[int, int]:
        if isinstance(value, Const):
            return (value.value, DEFINED)
        slot = (value.name, value.version or 0)
        return frame.env.get(slot, (0, UNDEFINED))

    def _exec_instr(self, frame: _Frame, instr: ins.Instr, prev_label):
        env = frame.env

        if isinstance(instr, ins.ConstCopy):
            env[_d(instr.dst)] = (instr.value, DEFINED)
        elif isinstance(instr, ins.Copy):
            env[_d(instr.dst)] = self._value(frame, instr.src)
        elif isinstance(instr, ins.UnOp):
            value, mask = self._value(frame, instr.operand)
            env[_d(instr.dst)] = (
                _wrap(fold_unop(instr.op, value)),
                unop_mask(instr.op, value, mask),
            )
        elif isinstance(instr, ins.BinOp):
            lhs, lm = self._value(frame, instr.lhs)
            rhs, rm = self._value(frame, instr.rhs)
            env[_d(instr.dst)] = (
                _wrap(fold_binop(instr.op, lhs, rhs)),
                binop_mask(instr.op, lhs, lm, rhs, rm),
            )
        elif isinstance(instr, ins.Alloc):
            base = self._allocate(instr.size, instr.initialized)
            self.origin[base] = ("alloc", instr.uid)
            env[_d(instr.dst)] = (base, DEFINED)
        elif isinstance(instr, ins.Gep):
            base, bm = self._value(frame, instr.base)
            offset, om = self._value(frame, instr.offset)
            env[_d(instr.dst)] = (self._element(base, offset), spread(bm | om))
        elif isinstance(instr, ins.GlobalAddr):
            env[_d(instr.dst)] = (self.global_addr[instr.global_name], DEFINED)
        elif isinstance(instr, ins.FuncAddr):
            env[_d(instr.dst)] = (self._func_addr[instr.func_name], DEFINED)
        elif isinstance(instr, ins.Load):
            addr, mask = self._value(frame, instr.ptr)
            self._oracle_check(instr, mask)
            cell = self._cell(addr)
            if self.trace_memory:
                self._trace(instr.uid, addr)
            env[_d(instr.dst)] = (cell.value, cell.mask)
        elif isinstance(instr, ins.Store):
            addr, mask = self._value(frame, instr.ptr)
            self._oracle_check(instr, mask)
            value, vmask = self._value(frame, instr.value)
            cell = self._cell(addr)
            if self.trace_memory:
                self._trace(instr.uid, addr)
            cell.value = value
            cell.mask = vmask
        elif isinstance(instr, ins.Call):
            result = self._exec_call(frame, instr)
            if instr.dst is not None:
                env[_d(instr.dst)] = result
        elif isinstance(instr, ins.Branch):
            cond, mask = self._value(frame, instr.cond)
            self._oracle_check(instr, mask)
            return ("jump", instr.then_label if cond else instr.else_label)
        elif isinstance(instr, ins.Jump):
            return ("jump", instr.target)
        elif isinstance(instr, ins.Ret):
            value = (
                self._value(frame, instr.value)
                if instr.value is not None
                else (0, DEFINED)
            )
            return ("ret", value)
        elif isinstance(instr, ins.Output):
            value, mask = self._value(frame, instr.value)
            self._oracle_check(instr, mask)
            self.report.outputs.append(value)
        else:
            raise RuntimeFault(f"cannot execute {instr}")
        return None

    def _exec_call(self, frame: _Frame, instr: ins.Call) -> Tuple[int, int]:
        args = [self._value(frame, a) for a in instr.args]
        if instr.is_indirect:
            addr, _mask = self._value(frame, instr.callee)
            target = self._addr_func.get(addr)
            if target is None:
                raise RuntimeFault(f"indirect call to non-function {addr}")
        else:
            target = instr.callee
        callee = self.module.functions.get(target)
        if callee is None:
            raise RuntimeFault(f"call to unknown function {target!r}")
        return self._call(callee, args)

    def _oracle_check(self, instr: ins.Instr, mask: int) -> None:
        if mask:
            self.report.true_undefined_uses.append(instr.uid)

    def _element(self, base: int, offset: int) -> int:
        extent = self.extent.get(base)
        if extent is None:
            # Address arithmetic on a junk pointer: C undefined
            # behaviour; kept total (the fault surfaces only if the
            # result is dereferenced).
            return base
        obj_base, size = extent
        index = (base - obj_base) + offset
        index = max(0, min(index, size - 1))  # clamp (documented)
        return obj_base + index

    def _trace(self, uid: int, addr: int) -> None:
        extent = self.extent.get(addr)
        if extent is None:
            return
        origin = self.origin.get(extent[0])
        if origin is not None:
            self.mem_accesses.setdefault(uid, set()).add(origin)

    def _cell(self, addr: int) -> _Cell:
        cell = self.memory.get(addr)
        if cell is None:
            raise RuntimeFault(f"access to unmapped address {addr}")
        return cell

    # ------------------------------------------------------------------
    # Shadow machine
    # ------------------------------------------------------------------
    def _shadow_var(self, frame: _Frame, slot: VarSlot) -> int:
        self.events.shadow_reads += 1
        value = frame.shadow.get(slot)
        if value is None:
            raise ShadowProtocolError(
                f"shadow of {slot[0]}.{slot[1]} read before any write "
                f"in {frame.function.name}"
            )
        return value

    def _shadow_mem(self, addr: int) -> int:
        self.events.shadow_reads += 1
        value = self.shadow_memory.get(addr)
        if value is None:
            raise ShadowProtocolError(
                f"shadow memory at {addr} read before any write"
            )
        return value

    def _shadow_operand(self, frame: _Frame, value: Value) -> Tuple[int, int]:
        """(runtime value, shadow mask) of a shadow-op operand."""
        if isinstance(value, Const):
            return (value.value, DEFINED)
        slot = (value.name, value.version or 0)
        runtime = frame.env.get(slot, (0, UNDEFINED))
        return (runtime[0], self._shadow_var(frame, slot))

    def _pointer_of(self, frame: _Frame, slot: VarSlot) -> int:
        value = frame.env.get(slot)
        if value is None:
            raise ShadowProtocolError(
                f"shadow op refers to unset pointer {slot[0]}.{slot[1]}"
            )
        return value[0]

    def _exec_op(
        self,
        op: ShadowOp,
        frame: _Frame,
        prev_label: Optional[str],
        instr: Optional[ins.Instr] = None,
    ) -> None:
        self._tick()
        if isinstance(op, SetShadowVar):
            frame.shadow[op.dst] = DEFINED if op.literal else UNDEFINED
            self.events.shadow_writes += 1
        elif isinstance(op, CopyShadowVar):
            frame.shadow[op.dst] = self._shadow_var(frame, op.src)
            self.events.shadow_writes += 1
        elif isinstance(op, AndShadowVar):
            # Conjunction of shadows: exact under full-spread semantics
            # (the sources are non-bitwise must-flow sources).
            combined = DEFINED
            for src in op.srcs:
                combined |= self._shadow_var(frame, src)
            frame.shadow[op.dst] = spread(combined)
            self.events.shadow_writes += 1
        elif isinstance(op, BinOpShadow):
            lhs, lm = self._shadow_operand(frame, op.lhs)
            rhs, rm = self._shadow_operand(frame, op.rhs)
            frame.shadow[op.dst] = binop_mask(op.op, lhs, lm, rhs, rm)
            self.events.shadow_writes += 1
        elif isinstance(op, UnOpShadow):
            operand, mask = self._shadow_operand(frame, op.operand)
            frame.shadow[op.dst] = unop_mask(op.op, operand, mask)
            self.events.shadow_writes += 1
        elif isinstance(op, SetShadowMem):
            addr = self._pointer_of(frame, op.ptr)
            bit = DEFINED if op.literal else UNDEFINED
            if op.whole_object:
                extent = self.extent.get(addr)
                if extent is None:
                    raise RuntimeFault(f"shadow set through bad pointer {addr}")
                base, size = extent
                for offset in range(size):
                    self.shadow_memory[base + offset] = bit
            else:
                self.shadow_memory[addr] = bit
            self.events.shadow_writes += 1
        elif isinstance(op, StoreShadow):
            addr = self._pointer_of(frame, op.ptr)
            bit = DEFINED if op.src is None else self._shadow_var(frame, op.src)
            self.shadow_memory[addr] = bit
            self.events.shadow_writes += 1
        elif isinstance(op, LoadShadow):
            addr = self._pointer_of(frame, op.ptr)
            frame.shadow[op.dst] = self._shadow_mem(addr)
            self.events.shadow_writes += 1
        elif isinstance(op, RelayOut):
            bit = DEFINED if op.src is None else self._shadow_var(frame, op.src)
            self._relay[op.slot] = bit
            self.events.shadow_writes += 1
        elif isinstance(op, RelayIn):
            bit = self._relay.get(op.slot)
            if bit is None:
                raise ShadowProtocolError(f"σ_g[{op.slot}] read before write")
            self.events.shadow_reads += 1
            frame.shadow[op.dst] = bit
            self.events.shadow_writes += 1
        elif isinstance(op, PhiShadow):
            incoming = dict(op.incomings).get(prev_label)
            bit = (
                DEFINED
                if incoming is None
                else self._shadow_var(frame, incoming)
            )
            frame.shadow[op.dst] = bit
            self.events.shadow_writes += 1
        elif isinstance(op, Check):
            mask = self._shadow_var(frame, op.operand)
            self.events.checks += 1
            if mask:
                self.report.warnings.append(op.label)
        else:
            raise RuntimeFault(f"unknown shadow op {op}")


def _d(var: Var) -> VarSlot:
    return (var.name, var.version or 0)


def run_native(
    module: Module, args: Optional[List[int]] = None, max_steps: int = 2_000_000
) -> ExecutionReport:
    """Execute ``module`` without instrumentation."""
    return Interpreter(module, plan=None, max_steps=max_steps).run(args)


def run_instrumented(
    module: Module,
    plan: InstrumentationPlan,
    args: Optional[List[int]] = None,
    max_steps: int = 8_000_000,
) -> ExecutionReport:
    """Execute ``module`` under ``plan``'s shadow operations."""
    return Interpreter(module, plan=plan, max_steps=max_steps).run(args)
