"""Dynamic substrate: the shadow-memory interpreter and cost model."""

from repro.runtime.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.runtime.events import DynamicEvents, ExecutionReport
from repro.runtime.interpreter import (
    Interpreter,
    RuntimeFault,
    ShadowProtocolError,
    StepLimitExceeded,
    run_instrumented,
    run_native,
)

__all__ = [
    "DEFAULT_COST_MODEL",
    "CostModel",
    "DynamicEvents",
    "ExecutionReport",
    "Interpreter",
    "RuntimeFault",
    "ShadowProtocolError",
    "StepLimitExceeded",
    "run_instrumented",
    "run_native",
]
