"""Bit-level definedness propagation (§4.1, after Memcheck [24]).

Both MSan and Usher are *bit-level precise*: each value carries a
64-bit **undefined mask** (bit set = that bit is undefined), and the
bitwise operations can *launder* undefinedness — ``x & 0`` is fully
defined even when ``x`` is not, a defined 0/1 bit dominates ``&``/``|``
regardless of the other operand, shifts move the mask along with the
bits.

Non-bitwise operations (arithmetic, comparisons) use the conservative
full-spread rule: any undefined input bit makes the whole result
undefined.  (Memcheck's left-spread for add/sub is tighter; full-spread
is the approximation this reproduction applies uniformly to the oracle,
to MSan and to Usher, so all three remain exactly comparable — and it
is the rule that makes Opt I's conjunction of source shadows exact for
non-bitwise must-flow closures, which is why Definition 2's expansion
stops at bitwise operators, §4.1.)

Masks are plain ints: ``DEFINED`` (0) and ``UNDEFINED`` (all 64 bits).
"""

from __future__ import annotations

WORD_BITS = 64
_MASK64 = (1 << WORD_BITS) - 1

DEFINED = 0
UNDEFINED = _MASK64

_BITWISE = frozenset({"&", "|", "^", "<<", ">>"})


def is_defined(mask: int) -> bool:
    return mask == 0


def spread(mask: int) -> int:
    """Full-spread: any undefined bit taints the whole word."""
    return UNDEFINED if mask else DEFINED


def _unsigned(value: int) -> int:
    return value & _MASK64


def binop_mask(op: str, lhs: int, lhs_mask: int, rhs: int, rhs_mask: int) -> int:
    """The undefined mask of ``lhs op rhs``.

    ``lhs``/``rhs`` are the runtime *values* (needed by the laundering
    rules for ``&`` and ``|``); masks are 64-bit undefined masks.
    """
    if op == "&":
        # A result bit is defined when both inputs are defined, or when
        # either input holds a *defined 0* there.
        defined0 = (~lhs_mask & ~_unsigned(lhs)) | (~rhs_mask & ~_unsigned(rhs))
        return (lhs_mask | rhs_mask) & ~defined0 & _MASK64
    if op == "|":
        # Dually, a defined 1 dominates.
        defined1 = (~lhs_mask & _unsigned(lhs)) | (~rhs_mask & _unsigned(rhs))
        return (lhs_mask | rhs_mask) & ~defined1 & _MASK64
    if op == "^":
        return (lhs_mask | rhs_mask) & _MASK64
    if op == "<<":
        if rhs_mask:
            return UNDEFINED
        return (lhs_mask << (rhs % WORD_BITS if rhs >= 0 else 0)) & _MASK64
    if op == ">>":
        if rhs_mask:
            return UNDEFINED
        shift = rhs % WORD_BITS if rhs >= 0 else 0
        # Arithmetic shift: the sign bit's definedness extends.
        sign_undef = lhs_mask >> (WORD_BITS - 1) & 1
        shifted = lhs_mask >> shift
        if sign_undef:
            shifted |= _MASK64 << max(WORD_BITS - shift, 0)
        return shifted & _MASK64
    # Non-bitwise (arithmetic, comparisons): full spread.
    return spread(lhs_mask | rhs_mask)


def unop_mask(op: str, operand: int, operand_mask: int) -> int:
    """The undefined mask of a unary operation."""
    if op == "~":
        return operand_mask & _MASK64
    # "-" and "!" are arithmetic/comparison-like: full spread.
    return spread(operand_mask)


def is_bitwise(op: str) -> bool:
    return op in _BITWISE
