"""Dynamic event counters and execution reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class DynamicEvents:
    """Counts of shadow work performed during one instrumented run.

    ``shadow_reads`` is the dynamic analogue of the paper's "shadow
    propagations"; ``checks`` counts executed runtime checks.
    """

    shadow_reads: int = 0
    shadow_writes: int = 0
    checks: int = 0

    def merge(self, other: "DynamicEvents") -> None:
        self.shadow_reads += other.shadow_reads
        self.shadow_writes += other.shadow_writes
        self.checks += other.checks

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class ExecutionReport:
    """The outcome of one program execution.

    Attributes:
        outputs: Values written by ``output`` statements, in order.
        exit_value: ``main``'s return value.
        native_ops: Number of IR instructions executed (the cost-model
            baseline).
        true_undefined_uses: Instruction uids where the *oracle* saw an
            undefined value used at a critical operation (ground truth,
            independent of any instrumentation).
        warnings: Instruction uids where an executed check fired
            (E(l) of Figure 7) — empty for uninstrumented runs.
        events: Shadow-work counters (zero for uninstrumented runs).
        steps: Total interpreter steps (native + shadow bookkeeping).
    """

    outputs: List[int] = field(default_factory=list)
    exit_value: Optional[int] = None
    native_ops: int = 0
    true_undefined_uses: List[int] = field(default_factory=list)
    warnings: List[int] = field(default_factory=list)
    events: DynamicEvents = field(default_factory=DynamicEvents)
    steps: int = 0

    @property
    def detected(self) -> bool:
        return bool(self.warnings)

    @property
    def has_true_bug(self) -> bool:
        return bool(self.true_undefined_uses)

    def warning_set(self) -> Set[int]:
        return set(self.warnings)

    def true_bug_set(self) -> Set[int]:
        return set(self.true_undefined_uses)
