"""Usher: static value-flow analysis for accelerating dynamic detection of
uses of undefined values (reproduction of Ye, Sui & Xue, CGO 2014).

The package is organised bottom-up:

- :mod:`repro.ir` — the TinyC intermediate representation (LLVM-IR-like).
- :mod:`repro.tinyc` — a C-subset front-end compiling to the IR.
- :mod:`repro.analysis` — Andersen's pointer analysis, call graph, mod/ref.
- :mod:`repro.memssa` — memory SSA (μ/χ) construction.
- :mod:`repro.vfg` — the value-flow graph and definedness resolution.
- :mod:`repro.core` — the paper's contribution: guided instrumentation
  (Figure 7), the MSan full-instrumentation baseline, and the two
  VFG-based optimizations.
- :mod:`repro.opt` — an LLVM-like optimizer substrate (mem2reg, inlining,
  const/copy propagation, DCE, CSE) arranged into O0+IM / O1 / O2
  pipelines.
- :mod:`repro.runtime` — a shadow-memory interpreter and the overhead
  cost model.
- :mod:`repro.workloads` — the 15 SPEC2000-shaped synthetic benchmarks and
  a random program generator.
- :mod:`repro.harness` — regenerates every table and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
