"""Fuzzing campaigns: generate → diff → minimize → triage.

The harness drives the differ over generated TinyC programs (or any
printed-IR text), within a seed list and an optional wall-clock
budget.  Each divergence is triaged into a bucket ``(config, kind)``;
with minimization enabled the offending module is shrunk with
:func:`repro.oracle.minimize.minimize_ir` under the predicate "this
exact bucket still diverges" and written out as a self-contained
``.ir`` reproducer.  Results stream to JSONL under
``benchmarks/results`` so campaigns are comparable across commits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core import prepare_module, run_msan, run_usher
from repro.ir.printer import module_to_str
from repro.opt import run_pipeline
from repro.oracle.differ import Divergence, diff_config
from repro.oracle.minimize import MinimizationResult, count_instructions, minimize_ir
from repro.runtime import RuntimeFault, StepLimitExceeded, run_native
from repro.tinyc import compile_source
from repro.workloads import GeneratorParams, generate_program

#: Generator parameters of the standard fuzz corpus — matches the
#: property suites' `prepared_random`, so seed numbers are comparable
#: across the fuzzers and the regression tests.
FUZZ_PARAMS = GeneratorParams(uninit_prob=0.3, call_prob=0.6)

#: The optimization pipeline applied before analysis.
FUZZ_PIPELINE = "O0+IM"

#: A hook mapping (config spec, prepared, plan) -> plan, used to plant
#: faults for oracle self-tests.
PlanHook = Callable[[str, object, object], object]


@dataclass
class CaseResult:
    """One examined module."""

    name: str
    seed: "Optional[int]"
    status: str  # ok | divergent | skipped
    divergences: "List[Divergence]" = field(default_factory=list)
    minimized: "Dict[str, int]" = field(default_factory=dict)
    reproducers: "List[str]" = field(default_factory=list)
    detail: str = ""


@dataclass
class CampaignResult:
    """Outcome of one :func:`run_campaign`."""

    cases: "List[CaseResult]" = field(default_factory=list)
    out_path: "Optional[str]" = None
    budget_exhausted: bool = False
    seeds_requested: int = 0

    @property
    def divergent(self) -> "List[CaseResult]":
        return [c for c in self.cases if c.status == "divergent"]

    @property
    def skipped(self) -> int:
        return sum(1 for c in self.cases if c.status == "skipped")

    def bucket_counts(self) -> "Dict[Tuple[str, str], int]":
        buckets: "Dict[Tuple[str, str], int]" = {}
        for case in self.divergent:
            for div in case.divergences:
                key = (div.config, div.kind)
                buckets[key] = buckets.get(key, 0) + 1
        return buckets


def _prepare_text(text: str, name: str, tier: "Optional[str]" = None):
    """Parse printed IR, run the standard pipeline, prepare for Usher."""
    from repro.ir.parser import parse_ir

    module = parse_ir(text)
    module.name = name
    run_pipeline(module, FUZZ_PIPELINE)
    return prepare_module(module, tier=tier)


def examine_text(
    text: str,
    name: str,
    matrix,
    plan_hook: "Optional[PlanHook]" = None,
    tier: "Optional[str]" = None,
    options=None,
    via_session: bool = False,
) -> "Tuple[str, List[Divergence]]":
    """Diff one printed-IR module against the matrix.

    ``tier`` picks the solving tier the preparation runs under
    (``None`` defers to the session default / ``REPRO_TIER``) — the
    campaign's ground-truth diff is how tier-invariance is enforced.
    ``options`` (:class:`repro.options.AnalysisOptions`) is the
    consolidated form; its set fields win over ``tier``.  With
    ``via_session=True`` every configuration is analyzed through an
    incrementally updated :class:`repro.service.session.AnalysisSession`
    instead of the one-shot pipeline — same diff against native ground
    truth, so a session-core bug shows up as a divergence.

    Returns ``(status, divergences)`` with status ``ok`` /
    ``divergent`` / ``skipped`` (native run exceeded the step limit or
    faulted — pathological inputs carry no soundness signal).
    """
    if options is not None:
        tier = options.or_keywords(tier=tier)["tier"]
    if via_session:
        return _examine_via_session(text, name, matrix, plan_hook, tier)
    prepared = _prepare_text(text, name, tier)
    try:
        native = run_native(prepared.module)
    except (StepLimitExceeded, RuntimeFault):
        return "skipped", []
    divergences: "List[Divergence]" = []
    for spec, config in matrix:
        if config is None:
            plan = run_msan(prepared)
        else:
            plan = run_usher(prepared, config).plan
        if plan_hook is not None:
            plan = plan_hook(spec, prepared, plan)
        divergences.extend(diff_config(prepared, native, spec, config, plan=plan))
    return ("divergent" if divergences else "ok"), divergences


def _examine_via_session(
    text: str, name: str, matrix, plan_hook, tier
) -> "Tuple[str, List[Divergence]]":
    """Examine through resident sessions: open, apply a semantics-
    preserving single-function edit (a dead constant copy after the
    entry label), incrementally re-analyze, then diff the *updated*
    session's plan against native execution of the session's own
    module.  Exercises the tape cache, warm solver restart, uid
    transplant and memo carryover on every corpus program."""
    from repro.options import AnalysisOptions
    from repro.service.session import AnalysisSession

    options = AnalysisOptions(tier=tier)
    divergences: "List[Divergence]" = []
    for spec, config in matrix:
        session = AnalysisSession.from_ir(
            text, name, options=options, usher_config=config
        )
        fname = session.function_names()[0]
        lines = session.function_text(fname).splitlines()
        for index, line in enumerate(lines):
            if line.endswith(":"):
                lines.insert(index + 1, "    %__svc0 := 0")
                break
        session.update(fname, "\n".join(lines))
        prepared = session.prepared
        try:
            native = run_native(prepared.module)
        except (StepLimitExceeded, RuntimeFault):
            return "skipped", []
        plan = run_msan(prepared) if config is None else session.plan
        if plan_hook is not None:
            plan = plan_hook(spec, prepared, plan)
        divergences.extend(
            diff_config(prepared, native, spec, config, plan=plan)
        )
    return ("divergent" if divergences else "ok"), divergences


def _bucket_predicate(matrix, bucket, plan_hook, tier=None, via_session=False):
    """Minimization predicate: the module still diverges in ``bucket``."""
    spec_wanted, kind_wanted = bucket

    def predicate(module) -> bool:
        text = module_to_str(module)
        status, divergences = examine_text(
            text, "minimize-candidate", matrix, plan_hook, tier,
            via_session=via_session,
        )
        return status == "divergent" and any(
            d.config == spec_wanted and d.kind == kind_wanted
            for d in divergences
        )

    return predicate


def seed_text(seed: int, params: "Optional[GeneratorParams]" = None) -> str:
    """The printed pre-analysis IR of one generated corpus program."""
    source = generate_program(seed, params or FUZZ_PARAMS)
    module = compile_source(source, f"seed{seed}")
    return module_to_str(module)


def _reproducer_path(directory: Path, name: str, bucket) -> Path:
    spec, kind = bucket
    safe = (
        spec.replace("@", "-").replace("+", "-").replace("*", "x")
    )
    return directory / f"{name}_{safe}_{kind}.ir"


def _emit_reproducer(
    path: Path, text: str, bucket, divergence: Divergence, origin: str
) -> None:
    spec, kind = bucket
    header = "\n".join(
        [
            f"; soundness-oracle reproducer: {kind} divergence under {spec}",
            f"; origin: {origin}",
            f"; warned={list(divergence.warned)} "
            f"ground-truth={list(divergence.expected)}",
            "; replay: repro fuzz --module " + path.name + " --configs " + spec,
            "",
        ]
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(header + text.rstrip() + "\n")


def run_campaign(
    seeds: "Iterable[int]",
    matrix,
    params: "Optional[GeneratorParams]" = None,
    budget_seconds: "Optional[float]" = None,
    minimize: bool = False,
    minimize_evals: int = 400,
    out_path: "Optional[str]" = None,
    reproducer_dir: "Optional[str]" = None,
    plan_hook: "Optional[PlanHook]" = None,
    texts: "Optional[Dict[str, str]]" = None,
    log: "Optional[Callable[[str], None]]" = None,
    tier: "Optional[str]" = None,
    options=None,
    via_session: bool = False,
) -> CampaignResult:
    """Run a differential fuzzing campaign.

    ``seeds`` drive the corpus generator (``params`` defaults to
    :data:`FUZZ_PARAMS`); ``texts`` adds supplied printed-IR modules
    (name → text) examined before the seeds.  The wall-clock budget,
    when given, bounds the whole campaign including minimization.
    ``tier`` runs every examination (and minimization replay) under
    one solving tier — since the diff is against *native* ground
    truth, a campaign per tier is exactly how tier-invariance of the
    tiered solving stack is enforced.  ``options``
    (:class:`repro.options.AnalysisOptions`) is the consolidated form
    of the same knobs; set fields win over the keywords.  With
    ``via_session=True`` every case routes through an edited resident
    :class:`repro.service.session.AnalysisSession` (see
    :func:`examine_text`) — the campaign then certifies the session's
    incremental re-analysis against native ground truth.  Results
    stream to ``out_path`` as JSONL (one record per case plus a
    trailing summary) when provided; minimized reproducers land in
    ``reproducer_dir``.
    """
    if options is not None:
        tier = options.or_keywords(tier=tier)["tier"]
    t0 = time.monotonic()

    def time_left() -> "Optional[float]":
        if budget_seconds is None:
            return None
        return budget_seconds - (time.monotonic() - t0)

    def say(message: str) -> None:
        if log is not None:
            log(message)

    result = CampaignResult()
    seed_list = list(seeds)
    result.seeds_requested = len(seed_list)
    repro_dir = Path(reproducer_dir) if reproducer_dir else None
    records: "List[dict]" = []

    work: "List[Tuple[str, Optional[int], str]]" = []
    for name, text in (texts or {}).items():
        work.append((name, None, text))
    for seed in seed_list:
        work.append((f"seed{seed}", seed, ""))

    from repro.obs.trace import TRACE

    for name, seed, text in work:
        left = time_left()
        if left is not None and left <= 0:
            result.budget_exhausted = True
            say(f"budget exhausted before {name}")
            break
        if seed is not None:
            text = seed_text(seed, params)
        case = CaseResult(name=name, seed=seed, status="ok")
        span = (
            TRACE.span("fuzz.case", case=name, seed=seed)
            if TRACE.enabled
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            case.status, case.divergences = examine_text(
                text, name, matrix, plan_hook, tier,
                via_session=via_session,
            )
        except Exception as exc:  # analysis crash: triage as its own kind
            case.status = "divergent"
            case.divergences = [
                Divergence("-", "crash", (), (), f"{type(exc).__name__}: {exc}")
            ]
        if case.status == "divergent":
            say(f"{name}: DIVERGENT — " + "; ".join(
                d.describe() for d in case.divergences
            ))
            if minimize and not any(
                d.kind == "crash" for d in case.divergences
            ):
                buckets = {(d.config, d.kind): d for d in case.divergences}
                for bucket, div in buckets.items():
                    left = time_left()
                    if left is not None and left <= 0:
                        result.budget_exhausted = True
                        break
                    try:
                        shrunk: MinimizationResult = minimize_ir(
                            text,
                            _bucket_predicate(
                                matrix, bucket, plan_hook, tier,
                                via_session=via_session,
                            ),
                            max_evals=minimize_evals,
                            budget_seconds=left,
                        )
                    except ValueError:
                        continue  # not reproducible in isolation
                    case.minimized["/".join(bucket)] = shrunk.instructions
                    if repro_dir is not None:
                        path = _reproducer_path(repro_dir, name, bucket)
                        _emit_reproducer(path, shrunk.text, bucket, div, name)
                        case.reproducers.append(str(path))
                        say(
                            f"{name}: minimized {bucket} to "
                            f"{shrunk.instructions} instructions → {path}"
                        )
        elif case.status == "skipped":
            say(f"{name}: skipped (step limit / fault in native run)")
        if span is not None:
            span.tag(status=case.status)
            span.__exit__(None, None, None)
        result.cases.append(case)
        records.append(
            {
                "type": "case",
                "name": name,
                "seed": seed,
                "status": case.status,
                "divergences": [
                    {
                        "config": d.config,
                        "kind": d.kind,
                        "warned": list(d.warned),
                        "expected": list(d.expected),
                        "detail": d.detail,
                    }
                    for d in case.divergences
                ],
                "minimized": case.minimized,
                "reproducers": case.reproducers,
            }
        )

    from repro.analysis.tiers import resolve_tier

    records.append(
        {
            "type": "summary",
            "tier": resolve_tier(tier),
            "via_session": via_session,
            "cases": len(result.cases),
            "divergent": len(result.divergent),
            "skipped": result.skipped,
            "budget_exhausted": result.budget_exhausted,
            "buckets": {
                f"{c}/{k}": n for (c, k), n in result.bucket_counts().items()
            },
            "elapsed_seconds": round(time.monotonic() - t0, 3),
        }
    )
    if out_path is not None:
        from repro.obs.registry import append_jsonl

        path = Path(out_path)
        if path.exists():
            path.unlink()  # each campaign replaces the file wholesale
        for record in records:
            append_jsonl(path, record)
        result.out_path = str(path)
    return result


__all__ = [
    "FUZZ_PARAMS",
    "FUZZ_PIPELINE",
    "CampaignResult",
    "CaseResult",
    "examine_text",
    "run_campaign",
    "seed_text",
]
