"""Soundness oracle: differential fuzzing with case minimization.

Usher's pitch is that the pruned instrumentation set is *sound* — each
configuration must report the undefined-value uses that full MSan
interpretation reports, per the contracts of §3/§5.  This package is
the always-on referee for that claim:

* :mod:`repro.oracle.differ` runs a prepared module through a matrix
  of :class:`repro.core.UsherConfig` settings and diffs the warned-uid
  sets against the native interpreter's ground truth, classifying each
  mismatch (spurious / missed / lost-detection / protocol /
  transparency) per that configuration's contract.
* :mod:`repro.oracle.minimize` shrinks a divergent module with ddmin
  over functions → blocks → instructions, re-validating each candidate
  with the IR verifier, until the reproducer is minimal.
* :mod:`repro.oracle.faults` plants known-unsound behavior (a dropped
  or spurious check, the historical pre-grouping Opt I) so the oracle
  and minimizer can be tested against themselves.
* :mod:`repro.oracle.harness` drives fuzzing campaigns over generated
  seeds with a time/seed budget, emitting JSONL results and
  self-contained ``.ir`` reproducers — the engine behind ``repro
  fuzz`` and the property suites.
"""

from repro.oracle.differ import (
    CONFIG_FACTORIES,
    Divergence,
    build_config,
    build_config_matrix,
    diff_config,
    diff_module,
)
from repro.oracle.faults import corrupt_plan, legacy_opt1
from repro.oracle.harness import CampaignResult, CaseResult, run_campaign
from repro.oracle.minimize import MinimizationResult, count_instructions, minimize_ir

__all__ = [
    "CONFIG_FACTORIES",
    "Divergence",
    "build_config",
    "build_config_matrix",
    "diff_config",
    "diff_module",
    "corrupt_plan",
    "legacy_opt1",
    "CampaignResult",
    "CaseResult",
    "run_campaign",
    "MinimizationResult",
    "count_instructions",
    "minimize_ir",
]
