"""Test-case minimization: ddmin over printed IR.

A divergent module is shrunk on its *pre-SSA* textual form (the shape
:func:`repro.ir.parser.parse_ir` round-trips) at three granularities —
whole functions, then blocks, then single instructions — with the
classic ddmin complement loop at each level: partition the deletable
units into chunks, try deleting each chunk, halve the chunk size when
nothing helps, and repeat the whole cascade until a fixpoint.

Every candidate is re-parsed and re-checked with the IR verifier
before the (expensive) divergence predicate runs; a candidate that no
longer parses or verifies — a deleted function that is still called, a
branch into a deleted block, a block left without a terminator — is
simply skipped, which is what keeps the deletions honest without any
dependency bookkeeping.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.ir.module import Module
from repro.ir.parser import IRParseError, parse_ir
from repro.ir.verifier import VerificationError, verify_module

#: Matches a block label line (``name:``).
_LABEL_RE = re.compile(r"^[%A-Za-z_][%A-Za-z0-9_.@:\-]*:$")


@dataclass
class MinimizationResult:
    """Outcome of one :func:`minimize_ir` run."""

    text: str
    instructions: int
    evals: int
    rounds: int
    reduced: bool

    @property
    def module(self) -> Module:
        return parse_ir(self.text)


class _Budget:
    def __init__(self, max_evals: int, deadline: "Optional[float]") -> None:
        self.max_evals = max_evals
        self.deadline = deadline
        self.evals = 0

    def spent(self) -> bool:
        if self.evals >= self.max_evals:
            return True
        return self.deadline is not None and time.monotonic() >= self.deadline


def count_instructions(text: str) -> int:
    """Instruction lines in printed IR (labels/defs/globals excluded)."""
    return sum(len(instrs) for _, instrs in _scan_blocks(text.splitlines()))


def _scan_functions(lines: "List[str]") -> "List[Tuple[int, int]]":
    """Inclusive line ranges of each ``def … { … }``."""
    ranges = []
    start = None
    for i, raw in enumerate(lines):
        line = raw.strip()
        if line.startswith("def ") and line.endswith("{"):
            start = i
        elif line == "}" and start is not None:
            ranges.append((start, i))
            start = None
    return ranges


def _scan_blocks(lines: "List[str]") -> "List[Tuple[Tuple[int, int], List[int]]]":
    """Per block: its inclusive line range and its instruction lines."""
    blocks = []
    in_function = False
    label_line: "Optional[int]" = None
    instrs: "List[int]" = []

    def flush(end: int) -> None:
        nonlocal label_line, instrs
        if label_line is not None:
            blocks.append(((label_line, end), instrs))
        label_line, instrs = None, []

    for i, raw in enumerate(lines):
        line = raw.strip()
        if line.startswith("def ") and line.endswith("{"):
            in_function = True
            continue
        if line == "}":
            flush(i - 1)
            in_function = False
            continue
        if not in_function or not line or line.startswith(";"):
            continue
        if _LABEL_RE.fullmatch(line):
            flush(i - 1)
            label_line = i
        elif label_line is not None:
            instrs.append(i)
    return blocks


def _delete(lines: "List[str]", doomed: "set[int]") -> str:
    return "\n".join(l for i, l in enumerate(lines) if i not in doomed)


def _unit_lines(unit) -> "set[int]":
    if isinstance(unit, tuple):  # an inclusive (start, end) range
        return set(range(unit[0], unit[1] + 1))
    return {unit}


def _ddmin_pass(
    text: str,
    units_of: "Callable[[List[str]], list]",
    check: "Callable[[str], bool]",
    budget: _Budget,
) -> "Tuple[str, bool]":
    """One ddmin complement loop at a single granularity."""
    reduced = False
    chunks = 2
    while not budget.spent():
        lines = text.splitlines()
        units = units_of(lines)
        if not units:
            break
        chunks = min(chunks, len(units))
        size = max(1, len(units) // chunks)
        progressed = False
        pos = 0
        while pos < len(units) and not budget.spent():
            doomed: "set[int]" = set()
            for unit in units[pos : pos + size]:
                doomed |= _unit_lines(unit)
            candidate = _delete(lines, doomed)
            if check(candidate):
                text = candidate
                lines = text.splitlines()
                units = units_of(lines)
                if not units:
                    break
                size = max(1, min(size, len(units)))
                reduced = progressed = True
                # stay at the same position: the list shifted left
            else:
                pos += size
        if progressed:
            chunks = 2  # coarse chunks may work again on the smaller text
        elif size == 1:
            break  # single-unit pass with no progress: fixpoint
        else:
            chunks = min(len(units), chunks * 2)
    return text, reduced


def minimize_ir(
    text: str,
    predicate: "Callable[[Module], bool]",
    max_evals: int = 2000,
    budget_seconds: "Optional[float]" = None,
) -> MinimizationResult:
    """Shrink IR text while ``predicate`` holds on the parsed module.

    ``predicate`` receives a freshly parsed, verifier-clean module for
    every candidate (it may mutate it — e.g. run the optimization
    pipeline); it must return True iff the interesting behavior (the
    divergence) is still present.  Any exception it raises counts as
    "not interesting", so interpreter faults on mangled candidates
    need no special-casing by callers.
    """
    deadline = (
        time.monotonic() + budget_seconds if budget_seconds is not None else None
    )
    budget = _Budget(max_evals, deadline)

    def check(candidate: str) -> bool:
        if budget.spent():
            return False
        budget.evals += 1
        try:
            module = parse_ir(candidate)
            verify_module(module)
            return bool(predicate(module))
        except (IRParseError, VerificationError):
            return False
        except Exception:
            return False

    if not check(text):
        raise ValueError(
            "minimize_ir: predicate does not hold on the initial module"
        )

    levels = (
        lambda lines: _scan_functions(lines),
        lambda lines: [rng for rng, _ in _scan_blocks(lines)],
        lambda lines: [i for _, instrs in _scan_blocks(lines) for i in instrs],
    )
    rounds = 0
    reduced_any = False
    while not budget.spent():
        rounds += 1
        progressed = False
        for units_of in levels:
            text, reduced = _ddmin_pass(text, units_of, check, budget)
            progressed = progressed or reduced
        reduced_any = reduced_any or progressed
        if not progressed:
            break
    return MinimizationResult(
        text=text,
        instructions=count_instructions(text),
        evals=budget.evals,
        rounds=rounds,
        reduced=reduced_any,
    )


__all__ = ["MinimizationResult", "count_instructions", "minimize_ir"]
