"""Differential soundness checking of Usher configurations.

Each configuration carries a contract against the native interpreter's
ground truth (``ExecutionReport.true_bug_set()``):

* ``msan``, ``tl``, ``tl_at``, ``opt_i`` — *exact*: the warned uids
  must equal the true-bug uids.  Every check these plans emit receives
  a bit-precise shadow, and Γ-⊤ sites are statically proven defined,
  so both a spurious and a missing uid indicate a bug in the analysis
  or the instrumentation rules.
* ``full``, ``ext`` (Opt II on top) — *subset + detection*: Opt II
  deliberately suppresses dominated rippled reports, so warned ⊆ true
  bugs, and a buggy run must still warn at least once.  A spurious uid
  or a silently unreported buggy run is a divergence.

Every configuration must additionally be *transparent* (outputs and
exit value equal the native run's) and respect the shadow protocol
(no shadow read before its instrumentation item wrote it).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional

from repro.core import PreparedModule, UsherConfig, run_msan, run_usher
from repro.runtime import (
    ExecutionReport,
    RuntimeFault,
    ShadowProtocolError,
    StepLimitExceeded,
    run_instrumented,
    run_native,
)

#: Short config names accepted by the oracle and ``repro fuzz``.
CONFIG_FACTORIES: "Dict[str, Callable[[], Optional[UsherConfig]]]" = {
    "msan": lambda: None,  # the full-instrumentation baseline
    "tl": UsherConfig.tl,
    "tl_at": UsherConfig.tl_at,
    "opt_i": UsherConfig.opt_i,
    "full": UsherConfig.full,
    "ext": UsherConfig.extended,
}

#: Configurations whose warned set must equal the ground truth exactly.
EXACT_NAMES = frozenset({"msan", "tl", "tl_at", "opt_i"})


class UnknownConfigError(ValueError):
    """An unrecognized configuration name was requested."""


@dataclass(frozen=True)
class Divergence:
    """One contract violation of one configuration on one module."""

    config: str
    kind: str  # spurious | missed | lost-detection | protocol | transparency
    warned: "tuple[int, ...]"
    expected: "tuple[int, ...]"
    detail: str = ""

    def describe(self) -> str:
        return (
            f"{self.config}: {self.kind} — warned {list(self.warned)}, "
            f"ground truth {list(self.expected)}"
            + (f" ({self.detail})" if self.detail else "")
        )


def build_config(name: str) -> "tuple[str, Optional[UsherConfig]]":
    """Resolve a config spec to ``(display_name, UsherConfig | None)``.

    ``None`` stands for the MSan baseline.  Specs compose variant
    suffixes onto a base name: ``full@summary`` switches the resolver,
    ``opt_i+demand`` resolves Γ demand-driven, ``full*2`` fans demand
    batches across two worker processes.  Raises
    :class:`UnknownConfigError` for anything else.
    """
    spec = name.strip()
    base = spec
    resolver: Optional[str] = None
    demand = False
    jobs: Optional[int] = None
    if "@" in base:
        base, resolver = base.split("@", 1)
    if "*" in base:
        base, jobs_text = base.split("*", 1)
        if not jobs_text.isdigit() or int(jobs_text) < 1:
            raise UnknownConfigError(
                f"invalid jobs suffix in config {spec!r}"
            )
        jobs = int(jobs_text)
    if base.endswith("+demand"):
        base, demand = base[: -len("+demand")], True
    factory = CONFIG_FACTORIES.get(base)
    if factory is None:
        known = ", ".join(sorted(CONFIG_FACTORIES))
        raise UnknownConfigError(
            f"unknown config {spec!r} (known: {known})"
        )
    config = factory()
    if config is None:
        if resolver or demand or jobs:
            raise UnknownConfigError(
                f"config {spec!r}: msan takes no variant suffixes"
            )
        return spec, None
    if resolver is not None:
        if resolver not in ("callstring", "summary"):
            raise UnknownConfigError(
                f"config {spec!r}: unknown resolver {resolver!r}"
            )
        config = replace(config, resolver=resolver)
    if demand:
        config = replace(config, demand=True)
    if jobs is not None:
        config = replace(config, jobs=jobs)
    return spec, config


def build_config_matrix(
    names: "Iterable[str]",
) -> "List[tuple[str, Optional[UsherConfig]]]":
    """Resolve a list of config specs, preserving order, rejecting dups."""
    matrix: "List[tuple[str, Optional[UsherConfig]]]" = []
    seen = set()
    for name in names:
        spec, config = build_config(name)
        if spec in seen:
            raise UnknownConfigError(f"duplicate config {spec!r}")
        seen.add(spec)
        matrix.append((spec, config))
    return matrix


def _contract_base(spec: str) -> str:
    base = spec.split("@", 1)[0].split("*", 1)[0]
    if base.endswith("+demand"):
        base = base[: -len("+demand")]
    return base


def diff_config(
    prepared: PreparedModule,
    native: ExecutionReport,
    spec: str,
    config: "Optional[UsherConfig]",
    plan=None,
) -> "List[Divergence]":
    """Diff one configuration's run against the native ground truth.

    ``plan`` overrides the computed instrumentation plan — the fault
    injection hooks use this to hand in a deliberately corrupted plan.
    """
    if plan is None:
        if config is None:
            plan = run_msan(prepared)
        else:
            plan = run_usher(prepared, config).plan
    oracle = native.true_bug_set()
    expected = tuple(sorted(oracle))
    try:
        report = run_instrumented(prepared.module, plan)
    except ShadowProtocolError as exc:
        return [Divergence(spec, "protocol", (), expected, str(exc))]
    warned = report.warning_set()
    divergences: "List[Divergence]" = []
    if (
        report.outputs != native.outputs
        or report.exit_value != native.exit_value
    ):
        divergences.append(
            Divergence(
                spec,
                "transparency",
                tuple(sorted(warned)),
                expected,
                "outputs or exit value differ from the native run",
            )
        )
    spurious = warned - oracle
    if spurious:
        divergences.append(
            Divergence(spec, "spurious", tuple(sorted(warned)), expected)
        )
    if _contract_base(spec) in EXACT_NAMES:
        if oracle - warned:
            divergences.append(
                Divergence(spec, "missed", tuple(sorted(warned)), expected)
            )
    elif oracle and not warned:
        divergences.append(
            Divergence(
                spec, "lost-detection", (), expected,
                "buggy run left entirely unreported",
            )
        )
    return divergences


def diff_module(
    prepared: PreparedModule,
    matrix: "List[tuple[str, Optional[UsherConfig]]]",
    native: "Optional[ExecutionReport]" = None,
) -> "List[Divergence]":
    """Diff every configuration in ``matrix`` on one prepared module.

    Raises :class:`repro.runtime.StepLimitExceeded` /
    :class:`repro.runtime.RuntimeFault` from the *native* run so
    callers can skip pathological inputs; instrumented runs inherit
    the native verdict (a fault there that the native run did not hit
    would surface as a transparency divergence anyway).
    """
    if native is None:
        native = run_native(prepared.module)
    divergences: "List[Divergence]" = []
    for spec, config in matrix:
        divergences.extend(diff_config(prepared, native, spec, config))
    return divergences


__all__ = [
    "CONFIG_FACTORIES",
    "EXACT_NAMES",
    "UnknownConfigError",
    "Divergence",
    "build_config",
    "build_config_matrix",
    "diff_config",
    "diff_module",
    "RuntimeFault",
    "StepLimitExceeded",
]
