"""Fault injection: plant known-unsound behavior to test the oracle.

An oracle that has never caught anything is untested.  These hooks
deliberately break soundness in controlled ways so the differ and the
minimizer can be validated against live prey:

* :func:`corrupt_plan` mangles a finished instrumentation plan —
  dropping a check (→ a *missed* divergence) or planting one that
  always fires with an impossible label (→ a *spurious* divergence).
* :func:`legacy_opt1` re-enables the historical pre-grouping Opt I
  behavior (spreading the source conjunction over mask-preserving
  sinks), the exact bug class of ROADMAP item 1 that the committed
  seed-185 reproducer pins down.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.core.plan import Check, InstrumentationPlan, InstrOps, SetShadowVar

#: Shadow slot reserved for planted always-undefined checks.
_PLANTED_SLOT = ("%__planted", 0)


def _clone(plan: InstrumentationPlan) -> InstrumentationPlan:
    clone = InstrumentationPlan(f"{plan.name}+fault")
    for func, ops in plan.entry_ops.items():
        clone.entry_ops[func] = list(ops)
    for uid, instr_ops in plan.ops.items():
        clone.ops[uid] = InstrOps(list(instr_ops.pre), list(instr_ops.post))
    return clone


def _checks(plan: InstrumentationPlan):
    """All (uid, where, position, op) check occurrences, deterministic."""
    found = []
    for uid in sorted(plan.ops):
        instr_ops = plan.ops[uid]
        for where, ops in (("pre", instr_ops.pre), ("post", instr_ops.post)):
            for pos, op in enumerate(ops):
                if isinstance(op, Check):
                    found.append((uid, where, pos, op))
    return found


def corrupt_plan(
    plan: InstrumentationPlan,
    mode: str,
    index: int = 0,
    label: "Optional[int]" = None,
) -> InstrumentationPlan:
    """Return a copy of ``plan`` with one planted soundness fault.

    ``mode="drop-check"`` removes one runtime check: the ``index``-th
    in deterministic uid order, or — with ``label`` — every check
    reporting that uid (guaranteeing the fault bites when the label is
    a known true bug).  ``mode="spurious-check"`` adds a check that
    always fires, reporting the impossible uid ``-1`` (or ``label``).
    """
    corrupted = _clone(plan)
    if mode == "drop-check":
        checks = _checks(corrupted)
        if label is not None:
            doomed = [c for c in checks if c[3].label == label]
            if not doomed:
                raise ValueError(f"plan has no check labelled {label}")
        else:
            if not checks:
                raise ValueError("plan has no checks to drop")
            doomed = [checks[index % len(checks)]]
        for uid, where, pos, op in doomed:
            ops = getattr(corrupted.ops[uid], where)
            ops.remove(op)
        return corrupted
    if mode == "spurious-check":
        checks = _checks(corrupted)
        if not checks:
            raise ValueError("plan has no checks to anchor the fault on")
        uid, where, _, _ = checks[index % len(checks)]
        planted_label = -1 if label is None else label
        ops = getattr(corrupted.ops[uid], where)
        ops.insert(0, SetShadowVar(_PLANTED_SLOT, literal=False))
        ops.insert(1, Check(_PLANTED_SLOT, planted_label))
        return corrupted
    raise ValueError(
        f"unknown fault mode {mode!r} (drop-check, spurious-check)"
    )


@contextlib.contextmanager
def legacy_opt1() -> "Iterator[None]":
    """Temporarily restore the pre-grouping Opt I (ROADMAP item 1).

    Within the context, guided instrumentation computes must-flow-from
    closures without the grouping rule, so Opt I emits its spread
    conjunction even for mask-preserving sinks — the historical
    unsoundness that produced a spurious warning on
    ``prepared_random(185)``.  Used by the oracle's self-tests and by
    the minimizer run that produced the committed reproducer.
    """
    from repro.core import instrument
    from repro.vfg.mfc import compute_mfc

    def ungrouped(vfg, module, sink, grouping=False):
        return compute_mfc(vfg, module, sink, grouping=False)

    original = instrument.compute_mfc
    instrument.compute_mfc = ungrouped
    try:
        yield
    finally:
        instrument.compute_mfc = original


__all__ = ["corrupt_plan", "legacy_opt1"]
