"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``check FILE``   — compile, analyze and execute a TinyC program under
  a chosen instrumentation configuration; report undefined-value uses
  with source lines (a sanitizer-style workflow).
- ``run FILE``     — execute natively (no instrumentation).
- ``ir FILE``      — dump the IR at a chosen pipeline stage.
- ``vfg FILE``     — export the value-flow graph as GraphViz DOT, with
  definedness coloring.
- ``sweep``        — regenerate the paper's figures on the bundled
  SPEC-shaped workloads.
- ``report``       — regenerate the *entire* evaluation as one markdown
  document (the source of EXPERIMENTS.md's numbers).
- ``fuzz``         — differential soundness fuzzing: diff every
  configuration's warnings against the native ground truth over
  generated (or supplied) modules, minimizing any divergence to a
  small reproducer (see :mod:`repro.oracle`).
- ``serve``        — resident analysis service: a localhost HTTP/JSON
  endpoint over long-lived :class:`repro.service.AnalysisSession`
  objects with incremental re-analysis (see :mod:`repro.service`).
- ``bench``        — the scenario-factory matrix orchestrator: run a
  declarative workload × config × tier × storage × schedule × jobs
  matrix across a crash-isolated process pool, write schema-stamped
  rows to a JSONL log, diff against a committed baseline, and promote
  oracle-minimized reproducers into the permanent corpus (see
  :mod:`repro.bench`).

``check``, ``report``, ``fuzz`` and ``serve`` share one analysis-options
flag group (``--jobs`` / ``--tier`` / ``--demand``), resolved through
:class:`repro.options.AnalysisOptions` (explicit flag > session default
> ``REPRO_JOBS``/``REPRO_TIER`` environment > built-in default).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.api import CONFIG_ORDER, analyze
from repro.ir import module_to_str, verify_module
from repro.opt import OPT_LEVELS, run_pipeline
from repro.options import (
    InvalidJobsError,
    InvalidStorageError,
    InvalidTierError,
    add_analysis_options,
    options_from_args,
    session_options,
)
from repro.runtime import DEFAULT_COST_MODEL, RuntimeFault, run_native
from repro.tinyc import LoweringError, TinyCSyntaxError, compile_source


class UsageError(Exception):
    """Invalid command-line input: one-line message, exit code 2."""


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _parse_seeds(spec: str) -> List[int]:
    """Seed list syntax: ``A:B`` (half-open), single ``N``, commas mix."""
    seeds: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            lo_text, hi_text = part.split(":", 1)
            if not (lo_text.lstrip("-").isdigit() and hi_text.lstrip("-").isdigit()):
                raise UsageError(f"invalid seed range {part!r} (expected A:B)")
            lo, hi = int(lo_text), int(hi_text)
            if lo < 0 or hi < lo:
                raise UsageError(f"invalid seed range {part!r} (expected 0 <= A <= B)")
            seeds.extend(range(lo, hi))
        elif part.isdigit():
            seeds.append(int(part))
        else:
            raise UsageError(f"invalid seed {part!r} (expected an integer or A:B)")
    if not seeds:
        raise UsageError(f"empty seed specification {spec!r}")
    return seeds


def _parse_budget(spec: "Optional[str]") -> "Optional[float]":
    """Budget syntax: seconds (``120``/``120s``) or minutes (``2m``)."""
    if spec is None:
        return None
    text = spec.strip().lower()
    scale = 1.0
    if text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        text, scale = text[:-1], 60.0
    try:
        seconds = float(text) * scale
    except ValueError:
        raise UsageError(
            f"invalid budget {spec!r} (expected e.g. 120s or 2m)"
        ) from None
    if seconds <= 0:
        raise UsageError(f"invalid budget {spec!r} (must be positive)")
    return seconds


def _format_warning(analysis, uid: int) -> str:
    instr = analysis.module.instr_by_uid()[uid]
    func = instr.block.function.name if instr.block else "?"
    line = f"line {instr.line}" if instr.line is not None else "<unknown line>"
    return f"  {line}, in {func}(): use of undefined value at `{instr}`"


def cmd_check(args: argparse.Namespace) -> int:
    source = _read(args.file)
    tracing = getattr(args, "trace", None)
    if tracing:
        from repro.obs import TRACE

        TRACE.clear()
        TRACE.enable()
    try:
        analysis = analyze(
            source=source,
            name=args.file,
            level=args.level,
            configs=[args.config],
            options=options_from_args(args),
        )
    finally:
        if tracing:
            TRACE.disable()
            spans = TRACE.write_chrome_trace(tracing)
            print(f"trace: wrote {spans} span(s) to {tracing}")
    plan = analysis.plans[args.config]
    if args.solver_stats:
        stats = analysis.prepared.solver_stats
        if stats is not None:
            print(stats.format_summary())
        else:
            print(
                "no solver stats recorded for this run (the pointer-"
                "analysis phase did not produce a profile)"
            )
        print()
    if args.mem_stats:
        stats = analysis.prepared.solver_stats
        if stats is not None:
            print(stats.format_memory_summary())
        else:
            print(
                "no memory stats recorded for this run (the pointer-"
                "analysis phase did not produce a profile)"
            )
        print()
    if args.show_plan:
        print(f"instrumentation plan ({plan.describe()}):")
        by_uid = analysis.module.instr_by_uid()
        for func, ops in sorted(plan.entry_ops.items()):
            for op in ops:
                print(f"  entry of {func}(): {op}")
        for uid in sorted(plan.ops):
            for op in plan.ops[uid].pre + plan.ops[uid].post:
                print(f"  at `{by_uid[uid]}`: {op}")
        print()
    try:
        report = analysis.run(args.config)
    except RuntimeFault as fault:
        print(f"runtime fault: {fault}", file=sys.stderr)
        return 2
    slowdown = DEFAULT_COST_MODEL.slowdown_percent(report)
    print(
        f"{args.file}: {report.native_ops} ops executed, "
        f"{plan.count_propagations()} static shadow propagations, "
        f"{plan.count_checks()} static checks, "
        f"modelled slowdown {slowdown:.1f}%"
    )
    if report.outputs:
        print(f"program output: {report.outputs}")
    warnings = sorted(report.warning_set())
    status = 0
    if warnings:
        print(f"\n{len(warnings)} use(s) of undefined values detected:")
        for uid in warnings:
            print(_format_warning(analysis, uid))
        if args.explain:
            _explain_warnings(analysis, args.config, warnings)
        status = 1
    else:
        print("no uses of undefined values detected")
    if args.query_stats:
        _print_query_stats(analysis, args.config)
    return status


def _explain_warnings(analysis, config: str, warnings) -> None:
    """Trace each warning back to F, demand-driven: only the warned
    sites' backward slices are visited, never the whole VFG."""
    explain_config = config if config in analysis.results else None
    for uid in warnings:
        steps = analysis.explain(uid, config=explain_config)
        if steps is None:
            continue
        print(f"\nhow the undefined value reaches uid {uid}:")
        for step in steps:
            print(step.render())


def _print_query_stats(analysis, config: str) -> None:
    """Profile of every demand engine this run touched: the Γ
    resolution's (with --demand) and the --explain queries'."""
    result = analysis.results.get(config)
    printed = False
    if result is not None and result.query_stats is not None:
        print()
        print(result.query_stats.format_summary())
        printed = True
    stats = analysis.query_stats(config if config in analysis.results else None)
    if stats is not None:
        print()
        print(stats.format_summary())
        printed = True
    if not printed:
        print("\nno demand queries were issued (nothing to profile)")


def cmd_run(args: argparse.Namespace) -> int:
    from repro.runtime import Interpreter

    module = compile_source(_read(args.file), args.file)
    run_pipeline(module, args.level)
    interp = Interpreter(module)
    interp.trace_limit = args.trace
    try:
        report = interp.run()
    except RuntimeFault as fault:
        print(f"runtime fault: {fault}", file=sys.stderr)
        return 2
    for line in interp.trace_log:
        print(f"trace: {line}")
    for value in report.outputs:
        print(value)
    return report.exit_value or 0


def cmd_ir(args: argparse.Namespace) -> int:
    module = compile_source(_read(args.file), args.file)
    run_pipeline(module, args.level)
    verify_module(module)
    if args.ssa:
        from repro.core import prepare_module

        prepare_module(module)
    print(module_to_str(module, show_uids=args.uids))
    return 0


def cmd_vfg(args: argparse.Namespace) -> int:
    from repro.core import UsherConfig, prepare_module, run_usher
    from repro.vfg.dot import vfg_to_dot

    module = compile_source(_read(args.file), args.file)
    run_pipeline(module, args.level)
    prepared = prepare_module(module)
    if args.demand:
        # On-demand coloring: build the VFG but resolve Γ only for the
        # nodes actually rendered (with --function, a fraction of the
        # graph), via the backward-slicing demand engine.
        from repro.vfg.builder import build_vfg
        from repro.vfg.demand import DemandEngine

        vfg = build_vfg(
            prepared.module,
            prepared.pointers,
            prepared.callgraph,
            prepared.modref,
        )
        engine = DemandEngine(vfg)
        gamma = engine.gamma()
    else:
        result = run_usher(prepared, UsherConfig.tl_at())
        vfg, gamma, engine = result.vfg, result.gamma, None
    dot = vfg_to_dot(
        vfg,
        gamma,
        only_function=args.function,
        max_nodes=args.max_nodes,
    )
    if args.solver_stats:
        stats = prepared.solver_stats
        if stats is not None:
            print(stats.format_summary(), file=sys.stderr)
        else:
            print(
                "no solver stats recorded for this run (the pointer-"
                "analysis phase did not produce a profile)",
                file=sys.stderr,
            )
    if args.query_stats:
        if engine is not None:
            print(engine.stats.format_summary(), file=sys.stderr)
        else:
            print(
                "no demand queries were issued (nothing to profile; "
                "re-run with --demand to resolve definedness through "
                "the demand engine)",
                file=sys.stderr,
            )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dot)
        print(f"wrote {args.output}")
    else:
        print(dot)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness import (
        build_figure10,
        build_figure11,
        format_figure10,
        format_figure11,
    )

    figure10 = build_figure10(scale=args.scale, level=args.level)
    print(format_figure10(figure10))
    print()
    print(format_figure11(build_figure11(scale=args.scale, level=args.level)))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import build_report

    text = build_report(
        scale=args.scale,
        sections=args.sections or None,
        options=options_from_args(args),
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.oracle import build_config_matrix, run_campaign

    matrix = build_config_matrix(
        [c for c in args.configs.split(",") if c.strip()]
    )
    seeds = _parse_seeds(args.seeds) if args.seeds else []
    if not seeds and not args.module:
        raise UsageError("nothing to fuzz: give --seeds and/or --module")
    budget = _parse_budget(args.budget)
    opts = options_from_args(args)
    texts = {}
    for path in args.module or []:
        text = _read(path)
        # Validate at the boundary: a malformed supplied module is a
        # usage error, not a campaign crash to triage.
        from repro.ir.parser import parse_ir

        parse_ir(text)
        texts[path.rsplit("/", 1)[-1]] = text
    out_path = args.out
    if out_path is None:
        stamp = time.strftime("%Y%m%d_%H%M%S")
        out_path = f"benchmarks/results/fuzz_{stamp}.jsonl"
    say = (lambda message: None) if args.quiet else print
    with session_options(opts):
        result = run_campaign(
            seeds,
            matrix,
            budget_seconds=budget,
            minimize=args.minimize,
            minimize_evals=args.minimize_evals,
            out_path=out_path,
            reproducer_dir=args.reproducers,
            texts=texts or None,
            log=say,
            options=opts,
            via_session=args.via_session,
        )
    configs = ", ".join(spec for spec, _ in matrix)
    print(
        f"fuzz: {len(result.cases)}/{result.seeds_requested + len(texts)} "
        f"cases examined ({result.skipped} skipped) under [{configs}]"
        + (" — budget exhausted" if result.budget_exhausted else "")
    )
    print(f"results: {result.out_path}")
    buckets = result.bucket_counts()
    if not buckets:
        print("no divergences: every configuration honored its contract")
        return 0
    print(f"{len(result.divergent)} divergent case(s):")
    for (config, kind), count in sorted(buckets.items()):
        print(f"  {config}/{kind}: {count}")
    for case in result.divergent:
        for path in case.reproducers:
            print(f"  reproducer: {path}")
    return 1


def _bench_workload_names(spec: str, corpus_dir) -> List[str]:
    """Resolve the ``--workloads`` argument: ``all`` (registry +
    corpus), ``spec`` (the 19 generated programs), ``corpus`` (bred
    seeds only), or an explicit comma list of names."""
    from repro.workloads import ALL_WORKLOADS
    from repro.workloads.corpus import corpus_names

    named = {
        "all": [w.name for w in ALL_WORKLOADS] + corpus_names(corpus_dir),
        "spec": [w.name for w in ALL_WORKLOADS],
        "corpus": corpus_names(corpus_dir),
    }
    if spec in named:
        return named[spec]
    return [part.strip() for part in spec.split(",") if part.strip()]


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        MatrixSpec,
        diff_rows,
        format_bench_report,
        load_rows,
        promote,
        run_matrix,
        write_rows,
    )

    say = (lambda message: None) if args.quiet else print
    if args.promote:
        promoted = promote(
            args.promote,
            corpus_dir=args.corpus_dir,
            dry_run=args.dry_run,
            log=say,
        )
        verb = "validated" if args.dry_run else "promoted"
        print(f"bench: {verb} {len(promoted)} reproducer(s)")
        return 0
    workloads = _bench_workload_names(args.workloads, args.corpus_dir)
    spec = MatrixSpec.from_args(
        workloads=workloads,
        configs=args.configs,
        tiers=args.tiers,
        storages=args.storages,
        schedules=args.schedules,
        jobs=args.jobs_axis,
        scale=args.scale,
    )
    cells = spec.expand()
    pool = args.pool
    if pool == 0:
        import os as _os

        pool = max(1, min(4, (_os.cpu_count() or 2) - 1))
    say(
        f"bench: {len(cells)} cell(s) "
        f"({len(spec.workloads)} workloads x {len(spec.configs)} configs "
        f"x {len(spec.tiers)} tiers x {len(spec.storages)} storages "
        f"x {len(spec.schedules)} schedules x {len(spec.jobs)} job "
        f"levels), pool={pool}, scale={spec.scale:g}"
    )
    if args.dry_run:
        for cell in cells:
            print(f"  {cell.name}")
        return 0
    rows = run_matrix(
        cells,
        pool=pool,
        timeout=args.timeout,
        corpus_dir=args.corpus_dir,
        log=say,
    )
    written = write_rows(args.out, rows)
    errors = [row for row in written if row.get("status") != "ok"]
    print(
        f"bench: {len(written)} row(s) -> {args.out} "
        f"({len(written) - len(errors)} ok, {len(errors)} error)"
    )
    if args.report:
        text = format_bench_report(written)
        with open(args.report, "w") as handle:
            handle.write(text)
        print(f"report: wrote {args.report}")
    status = 1 if errors else 0
    if args.baseline:
        problems, compared = diff_rows(written, load_rows(args.baseline))
        if problems:
            print(
                f"baseline: {len(problems)} regression(s) against "
                f"{args.baseline}:"
            )
            for problem in problems:
                print(f"  {problem}")
            status = 1
        else:
            print(
                f"baseline: {compared} cell(s) match {args.baseline}"
            )
    return status


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    server = serve(
        host=args.host, port=args.port, options=options_from_args(args)
    )
    host, port = server.server_address[:2]
    print(f"repro serve listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Usher: value-flow-guided detection of undefined values",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="analyze + execute with detection")
    check.add_argument("file")
    check.add_argument("--config", default="usher", choices=list(CONFIG_ORDER))
    check.add_argument("--level", default="O0+IM", choices=list(OPT_LEVELS))
    check.add_argument("--show-plan", action="store_true")
    check.add_argument("--solver-stats", action="store_true",
                       help="print the constraint-solver work profile "
                            "(pops, propagated facts, collapsed SCCs, "
                            "phase timings)")
    check.add_argument("--mem-stats", action="store_true",
                       help="print the solver memory profile (points-to "
                            "representation bytes, container mix, peak "
                            "RSS); see --storage for the representation "
                            "knob")
    check.add_argument("--explain", action="store_true",
                       help="trace each warning's undefined value back "
                            "to its origin (demand-driven: only the "
                            "warned sites' backward slices are visited)")
    check.add_argument("--query-stats", action="store_true",
                       help="print the demand-query work profile "
                            "(states/nodes visited, memo hits, latency); "
                            "requires a demand engine to have run "
                            "(--demand or --explain), otherwise explains "
                            "that nothing was profiled")
    check.add_argument("--trace", default=None, metavar="PATH",
                       help="capture a span trace of the whole static "
                            "pipeline (parse, constraint gen, per-wave "
                            "solve, VFG build, Opt I/II, demand queries) "
                            "and write it as Chrome trace-event JSON "
                            "(load in chrome://tracing or Perfetto)")
    add_analysis_options(check, demand_flag=True)
    check.set_defaults(func=cmd_check)

    run = sub.add_parser("run", help="execute natively")
    run.add_argument("file")
    run.add_argument("--level", default="O0+IM", choices=list(OPT_LEVELS))
    run.add_argument("--trace", type=int, default=0, metavar="N",
                     help="print the first N executed instructions")
    run.set_defaults(func=cmd_run)

    ir = sub.add_parser("ir", help="dump the IR")
    ir.add_argument("file")
    ir.add_argument("--level", default="O0+IM", choices=list(OPT_LEVELS))
    ir.add_argument("--ssa", action="store_true", help="run memory SSA first")
    ir.add_argument("--uids", action="store_true", help="show instruction ids")
    ir.set_defaults(func=cmd_ir)

    vfg = sub.add_parser("vfg", help="export the VFG as GraphViz DOT")
    vfg.add_argument("file")
    vfg.add_argument("--level", default="O0+IM", choices=list(OPT_LEVELS))
    vfg.add_argument("--function", default=None,
                     help="restrict to one function")
    vfg.add_argument("--max-nodes", type=int, default=400)
    vfg.add_argument("--demand", action="store_true",
                     help="color definedness on demand (resolve only "
                          "the rendered nodes by backward slicing)")
    vfg.add_argument("--solver-stats", action="store_true",
                     help="print the constraint-solver work profile to "
                          "stderr (pops, propagated facts, collapsed "
                          "SCCs, phase timings); the profile comes from "
                          "the pointer-analysis phase this command "
                          "always runs")
    vfg.add_argument("--query-stats", action="store_true",
                     help="print the demand-query work profile to "
                          "stderr; requires the demand engine (--demand) "
                          "to have run, otherwise explains that nothing "
                          "was profiled")
    vfg.add_argument("-o", "--output", default=None)
    vfg.set_defaults(func=cmd_vfg)

    sweep = sub.add_parser("sweep", help="regenerate Figures 10/11")
    sweep.add_argument("--scale", type=float, default=0.25)
    sweep.add_argument("--level", default="O0+IM", choices=list(OPT_LEVELS))
    sweep.set_defaults(func=cmd_sweep)

    report = sub.add_parser("report", help="full experiment report (markdown)")
    report.add_argument("--scale", type=float, default=0.5)
    add_analysis_options(report)
    report.add_argument("-o", "--output", default=None)
    report.add_argument(
        "--sections",
        nargs="*",
        choices=["table1", "figure10", "figure11", "opt_levels",
                 "ablation", "warner", "extension", "solver", "trace"],
        default=None,
    )
    report.set_defaults(func=cmd_report)

    fuzz = sub.add_parser(
        "fuzz", help="differential soundness fuzzing with minimization"
    )
    fuzz.add_argument("--seeds", default="0:50", metavar="A:B",
                      help="corpus seeds: a half-open range A:B, single "
                           "integers, or a comma mix (default 0:50)")
    fuzz.add_argument("--configs", default="tl,tl_at,opt_i,full",
                      metavar="LIST",
                      help="comma list of configurations to diff; base "
                           "names msan,tl,tl_at,opt_i,full,ext with "
                           "variant suffixes @summary (resolver), "
                           "+demand, *N (demand jobs)")
    fuzz.add_argument("--budget", default=None, metavar="TIME",
                      help="wall-clock budget for the whole campaign, "
                           "e.g. 120s or 5m (default: unbounded)")
    fuzz.add_argument("--minimize", action="store_true",
                      help="shrink each divergence with ddmin and emit "
                           "a self-contained .ir reproducer")
    fuzz.add_argument("--minimize-evals", type=int, default=400,
                      metavar="N",
                      help="predicate-evaluation cap per minimization")
    fuzz.add_argument("--module", action="append", metavar="FILE",
                      help="also examine a printed-IR module (repeatable; "
                           "the format `repro ir` emits and reproducers "
                           "are stored in)")
    fuzz.add_argument("--out", default=None, metavar="PATH",
                      help="JSONL results path (default: "
                           "benchmarks/results/fuzz_<stamp>.jsonl)")
    fuzz.add_argument("--reproducers",
                      default="benchmarks/results/reproducers",
                      metavar="DIR",
                      help="directory for minimized reproducers")
    fuzz.add_argument("--via-session", action="store_true",
                      help="route every examined case through the "
                           "resident AnalysisSession API (open + "
                           "incremental update) instead of from-scratch "
                           "analysis; a verdict difference between the "
                           "two paths is exactly what the campaign "
                           "exists to catch")
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress per-case progress lines")
    add_analysis_options(fuzz)
    fuzz.set_defaults(func=cmd_fuzz)

    bench = sub.add_parser(
        "bench",
        help="matrix benchmark orchestrator with baselines and corpus "
             "promotion",
    )
    bench.add_argument("--workloads", default="all", metavar="LIST",
                       help="comma list of workload / corpus-seed names, "
                            "or: all (registry + corpus, the default), "
                            "spec (the 19 generated programs), corpus "
                            "(bred seeds only)")
    bench.add_argument("--configs", default="tl,tl_at,opt_i,full",
                       metavar="LIST",
                       help="comma list of configurations "
                            "(msan,tl,tl_at,opt_i,full,ext); default "
                            "tl,tl_at,opt_i,full")
    bench.add_argument("--tiers", default="full,unified", metavar="LIST",
                       help="comma list of solving tiers "
                            "(full,lazy,unified); default full,unified")
    bench.add_argument("--storages", default="int", metavar="LIST",
                       help="comma list of points-to storages "
                            "(int,compressed,auto); default int")
    bench.add_argument("--schedules", default="wave", metavar="LIST",
                       help="comma list of worklist schedules (wave,fifo); "
                            "default wave")
    bench.add_argument("--jobs-axis", default="1", metavar="LIST",
                       help="comma list of analysis worker counts; "
                            "default 1")
    bench.add_argument("--scale", type=float, default=0.1,
                       help="workload scale factor (default 0.1; corpus "
                            "seeds are fixed-size and ignore it)")
    bench.add_argument("--pool", type=int, default=0, metavar="N",
                       help="concurrent cell worker processes; 0 = auto "
                            "(default), 1 = in-process serial")
    bench.add_argument("--timeout", type=float, default=300.0,
                       metavar="SECONDS",
                       help="per-cell wall-clock budget in process mode "
                            "(default 300); an overrunning cell becomes "
                            "an error row and the run continues")
    bench.add_argument("--out", default="benchmarks/results/bench_stats.jsonl",
                       metavar="PATH",
                       help="JSONL row log (appended; default "
                            "benchmarks/results/bench_stats.jsonl)")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="diff this run against a committed baseline "
                            "JSONL; exact gates on status/warned_uids/"
                            "checks/propagations, 2x ratio gates on "
                            "solver work; any regression exits 1")
    bench.add_argument("--report", default=None, metavar="PATH",
                       help="also write the markdown report "
                            "(Table-1/Figure-10-style aggregation)")
    bench.add_argument("--promote", action="append", metavar="FILE",
                       help="promote an oracle-minimized .ir reproducer "
                            "into the permanent corpus (repeatable; "
                            "validates, pins its warned sets, updates "
                            "the manifest; no matrix runs)")
    bench.add_argument("--corpus-dir", default=None, metavar="DIR",
                       help="corpus directory override (default: "
                            "tests/data/corpus of the checkout)")
    bench.add_argument("--dry-run", action="store_true",
                       help="with --promote: validate only; otherwise: "
                            "list the expanded cells without running")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress per-cell progress lines")
    bench.set_defaults(func=cmd_bench)

    serve_p = sub.add_parser(
        "serve", help="resident analysis service (localhost HTTP/JSON)"
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=0, metavar="N",
                         help="TCP port; 0 picks a free port and prints it "
                              "(default 0)")
    add_analysis_options(serve_p, demand_flag=True)
    serve_p.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.bench.matrix import BenchSpecError
    from repro.ir.parser import IRParseError
    from repro.ir.verifier import VerificationError
    from repro.oracle.differ import UnknownConfigError
    from repro.workloads.corpus import CorpusError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (TinyCSyntaxError, LoweringError) as error:
        print(f"compile error: {error}", file=sys.stderr)
        return 2
    except (UsageError, InvalidJobsError, InvalidStorageError,
            InvalidTierError, UnknownConfigError, BenchSpecError,
            CorpusError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (IRParseError, VerificationError) as error:
        print(f"invalid module: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
