"""μ/χ annotation of a module (Figure 4).

Following Chow et al. (as the paper does), every potential indirect use
of an address-taken variable is annotated with a μ function and every
potential indirect def with a χ function:

- a load ``x := *y`` gets ``μ(ρ)`` for every ρ that ``y`` may point to;
- a store ``*x := y`` gets ``ρ := χ(ρ)`` for every ρ that ``x`` may
  point to (a χ both uses and redefines ρ);
- an allocation gets ``ρ := χ(ρ)`` for every location of every abstract
  object created at the site (one per heap clone);
- a call gets μs for the callee's refs and χs for its mods (the virtual
  argument/output bindings of Figure 4);
- a return gets μs for the function's virtual output parameters.

The function itself records its virtual parameters (``[ρ]`` lists).
"""

from __future__ import annotations

from typing import List, Set

from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Var
from repro.analysis.andersen import PointerResult
from repro.analysis.memobjects import MemLoc
from repro.analysis.modref import ModRefResult


def _loc_key(loc: MemLoc) -> tuple:
    return (loc.obj.name, loc.field)


def sorted_locs(locs: "set[MemLoc] | frozenset[MemLoc]") -> List[MemLoc]:
    return sorted(locs, key=_loc_key)


def annotate_module(
    module: Module, pointers: PointerResult, modref: ModRefResult
) -> None:
    """Attach μ/χ annotations and virtual parameters to every function."""
    for function in module.functions.values():
        _annotate_function(function, pointers, modref)


def _annotate_function(
    function: Function, pointers: PointerResult, modref: ModRefResult
) -> None:
    name = function.name
    function.virtual_params = sorted_locs(modref.func_accessed(name))
    vouts: Set[MemLoc] = modref.mod[name]
    for instr in function.instructions():
        instr.mus = []
        instr.chis = []
        if isinstance(instr, ins.Load):
            if isinstance(instr.ptr, Var):
                for loc in sorted_locs(pointers.data_pts_var(name, instr.ptr)):
                    instr.mus.append(ins.Mu(loc))
        elif isinstance(instr, ins.Store):
            if isinstance(instr.ptr, Var):
                for loc in sorted_locs(pointers.data_pts_var(name, instr.ptr)):
                    instr.chis.append(ins.Chi(loc))
        elif isinstance(instr, ins.Alloc):
            for obj in pointers.alloc_objects.get(instr.uid, ()):
                for loc in obj.locs():
                    instr.chis.append(ins.Chi(loc))
        elif isinstance(instr, ins.Call):
            mod_locs = modref.callsite_mod(instr)
            ref_locs = modref.callsite_ref(instr)
            for loc in sorted_locs(ref_locs - mod_locs):
                instr.mus.append(ins.Mu(loc))
            for loc in sorted_locs(mod_locs):
                instr.chis.append(ins.Chi(loc))
        elif isinstance(instr, ins.Ret):
            for loc in sorted_locs(vouts):
                instr.mus.append(ins.Mu(loc))
