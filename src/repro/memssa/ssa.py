"""SSA construction for top-level and address-taken variables.

Uses the standard algorithm (Cytron et al. φ placement on iterated
dominance frontiers, semi-pruned, followed by a dominator-tree renaming
walk), applied uniformly to two kinds of "variables":

- top-level variables (``("top", name)``), producing :class:`~repro.ir.
  instructions.Phi` instructions; and
- address-taken locations (``("mem", loc)``), producing
  :class:`~repro.ir.instructions.MemPhi` block annotations and filling
  the versions of the μ/χ annotations placed by
  :mod:`repro.memssa.mu_chi`.

Version numbering:

- version 1 is defined at function entry for formal parameters and for
  every virtual input parameter (the ``[ρ]`` list of Figure 4);
- version 0 is the *implicit undefined* version: a use with no reaching
  definition (e.g. a mem2reg-promoted C local read before assignment).
  The VFG connects version-0 nodes to the F root.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import instructions as ins
from repro.ir.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Value, Var
Key = Tuple[str, object]  # ("top", name) or ("mem", loc)


def construct_ssa(module: Module) -> None:
    """Put every function of ``module`` in SSA form (in place).

    μ/χ annotations must already be attached (or absent for a pure
    top-level SSA construction).  Re-assigns instruction uids.
    """
    for function in module.functions.values():
        _SSABuilder(function).run()
    module.assign_uids()


class _SSABuilder:
    def __init__(self, function: Function) -> None:
        self.function = function
        self.dt = DominatorTree(function)
        self.counters: Dict[Key, int] = {}
        self.stacks: Dict[Key, List[int]] = {}

    # ------------------------------------------------------------------
    def run(self) -> None:
        defs, upward_exposed = self._collect()
        self._place_phis(defs, upward_exposed)
        self._seed_entry_defs()
        self._rename(self.function.entry.label)

    # ------------------------------------------------------------------
    def _collect(self) -> Tuple[Dict[Key, Set[str]], Set[Key]]:
        """Def blocks per key and the semi-pruned "non-local" key set."""
        defs: Dict[Key, Set[str]] = {}
        upward: Set[Key] = set()
        entry = self.function.entry.label

        for param in self.function.params:
            defs.setdefault(("top", param), set()).add(entry)
        for loc in self.function.virtual_params:
            defs.setdefault(("mem", loc), set()).add(entry)

        for block in self.function.blocks:
            killed: Set[Key] = set()

            def use(key: Key) -> None:
                if key not in killed:
                    upward.add(key)

            def define(key: Key) -> None:
                defs.setdefault(key, set()).add(block.label)
                killed.add(key)

            for instr in block.instrs:
                for var in instr.uses():
                    use(("top", var.name))
                for mu in instr.mus:
                    use(("mem", mu.loc))
                for chi in instr.chis:
                    use(("mem", chi.loc))
                    define(("mem", chi.loc))
                for var in instr.defs():
                    define(("top", var.name))
        return defs, upward

    def _place_phis(self, defs: Dict[Key, Set[str]], upward: Set[Key]) -> None:
        for key, blocks in defs.items():
            if key not in upward and len(blocks) <= 1:
                continue  # semi-pruned: block-local names need no φ
            for label in self.dt.iterated_frontier(set(blocks)):
                block = self.function.block(label)
                kind, payload = key
                if kind == "top":
                    name = payload
                    if any(p.dst.name == name for p in block.phis()):
                        continue
                    phi = ins.Phi(Var(name))  # type: ignore[arg-type]
                    phi.block = block
                    block.instrs.insert(0, phi)
                else:
                    loc = payload
                    if any(mp.loc == loc for mp in block.mem_phis):
                        continue
                    block.mem_phis.append(ins.MemPhi(loc))
                # The φ is itself a definition: iterate.
                if label not in defs[key]:
                    defs[key].add(label)
        # Iterate to closure: inserting a φ adds a def which may require
        # further φs.  iterated_frontier already computes the closure of
        # the original def set, and φs are only inserted inside it, so a
        # single pass suffices.

    def _seed_entry_defs(self) -> None:
        for param in self.function.params:
            self._push(("top", param))
        for loc in self.function.virtual_params:
            version = self._push(("mem", loc))
            self.function.entry_versions[loc] = version

    # ------------------------------------------------------------------
    def _push(self, key: Key) -> int:
        version = self.counters.get(key, 0) + 1
        self.counters[key] = version
        self.stacks.setdefault(key, []).append(version)
        return version

    def _current(self, key: Key) -> int:
        stack = self.stacks.get(key)
        return stack[-1] if stack else 0

    # ------------------------------------------------------------------
    def _rename(self, label: str) -> None:
        # Iterative dominator-tree walk (explicit stack: deep CFGs would
        # overflow Python's recursion limit).
        work: List[Tuple[str, Optional[List[Key]]]] = [(label, None)]
        while work:
            block_label, pushed = work.pop()
            if pushed is not None:
                # Post-visit: pop this block's definitions.
                for key in reversed(pushed):
                    self.stacks[key].pop()
                continue
            pushed = self._rename_block(block_label)
            work.append((block_label, pushed))
            for child in sorted(self.dt.children.get(block_label, ())):
                work.append((child, None))

    def _rename_block(self, label: str) -> List[Key]:
        block = self.function.block(label)
        pushed: List[Key] = []

        for mphi in block.mem_phis:
            key = ("mem", mphi.loc)
            mphi.new_version = self._push(key)
            pushed.append(key)
        for phi in block.phis():
            key = ("top", phi.dst.name)
            phi.dst = phi.dst.base.with_version(self._push(key))
            pushed.append(key)

        for instr in block.instrs:
            if isinstance(instr, ins.Phi):
                continue
            mapping: Dict[Var, Value] = {}
            for var in instr.uses():
                mapping[var] = Var(var.name, self._current(("top", var.name)))
            instr.replace_uses(mapping)
            for mu in instr.mus:
                mu.version = self._current(("mem", mu.loc))
            for chi in instr.chis:
                key = ("mem", chi.loc)
                chi.old_version = self._current(key)
                chi.new_version = self._push(key)
                pushed.append(key)
            for attr in ("dst",):
                dst = getattr(instr, attr, None)
                if isinstance(dst, Var):
                    key = ("top", dst.name)
                    setattr(instr, attr, dst.base.with_version(self._push(key)))
                    pushed.append(key)

        for succ_label in block.successors():
            succ = self.function.block(succ_label)
            for mphi in succ.mem_phis:
                mphi.incomings[label] = self._current(("mem", mphi.loc))
            for phi in succ.phis():
                name = phi.dst.name
                phi.incomings[label] = Var(name, self._current(("top", name)))
        return pushed
