"""Well-formedness checks for memory SSA (μ/χ annotations).

Complements :mod:`repro.ir.verifier`'s top-level SSA checks with the
address-taken side of Figure 4:

- every χ defines a fresh version (single assignment per location);
- every μ/χ-old/φ-incoming version is either an actual definition, the
  entry definition (a virtual parameter) or the implicit version 0;
- memory φs agree with the CFG predecessors;
- virtual parameters have entry version 1;
- returns carry μs exactly for the function's modified locations.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir import instructions as ins
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.module import Module


class MemSSAError(Exception):
    """Raised when memory SSA is malformed."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__("\n".join(problems))
        self.problems = problems


def verify_memory_ssa(module: Module) -> None:
    """Verify the μ/χ annotations of every function; raise on problems."""
    problems: List[str] = []
    for function in module.functions.values():
        problems.extend(_verify_function(function))
    if problems:
        raise MemSSAError(problems)


def _verify_function(function: Function) -> List[str]:
    problems: List[str] = []
    where = f"function {function.name}"
    cfg = CFG(function)

    defined: Dict[Tuple[object, int], int] = {}

    def define(loc: object, version: object, what: str) -> None:
        if version is None:
            problems.append(f"{where}: {what} defines {loc} without a version")
            return
        key = (loc, version)
        defined[key] = defined.get(key, 0) + 1
        if defined[key] > 1:
            problems.append(
                f"{where}: {loc}.{version} defined more than once ({what})"
            )

    for loc, version in function.entry_versions.items():
        if version != 1:
            problems.append(
                f"{where}: virtual parameter {loc} enters at version "
                f"{version}, expected 1"
            )
        define(loc, version, "entry")
        if loc not in function.virtual_params:
            problems.append(
                f"{where}: entry version for {loc} not in virtual_params"
            )

    for block in function.blocks:
        preds = set(cfg.preds[block.label])
        for mphi in block.mem_phis:
            define(mphi.loc, mphi.new_version, f"memphi in {block.label}")
            if set(mphi.incomings) != preds:
                problems.append(
                    f"{where}: memphi for {mphi.loc} in {block.label} has "
                    f"incomings {sorted(mphi.incomings)} but predecessors "
                    f"are {sorted(preds)}"
                )
        for instr in block.instrs:
            for chi in instr.chis:
                define(chi.loc, chi.new_version, f"chi at `{instr}`")
                if chi.old_version is None:
                    problems.append(
                        f"{where}: chi at `{instr}` lacks an old version"
                    )

    # Every use must refer to a definition (or the implicit version 0).
    def check_use(loc: object, version: object, what: str) -> None:
        if version is None:
            problems.append(f"{where}: {what} uses {loc} without a version")
        elif version != 0 and (loc, version) not in defined:
            problems.append(
                f"{where}: {what} uses undefined version {loc}.{version}"
            )

    for block in function.blocks:
        for mphi in block.mem_phis:
            for pred, version in mphi.incomings.items():
                check_use(mphi.loc, version, f"memphi incoming from {pred}")
        for instr in block.instrs:
            for mu in instr.mus:
                check_use(mu.loc, mu.version, f"mu at `{instr}`")
            for chi in instr.chis:
                check_use(chi.loc, chi.old_version, f"chi-old at `{instr}`")

    # Returns read the virtual outputs.
    ret_locs: List[Set[object]] = [
        {mu.loc for mu in instr.mus}
        for instr in function.instructions()
        if isinstance(instr, ins.Ret)
    ]
    for locs in ret_locs:
        if ret_locs and locs != ret_locs[0]:
            problems.append(
                f"{where}: returns disagree on virtual outputs"
            )
            break

    return problems
