"""Memory SSA construction (the "Memory SSA Construction" phase, §3.1).

Combines μ/χ annotation (:mod:`repro.memssa.mu_chi`) with standard SSA
construction (:mod:`repro.memssa.ssa`) applied uniformly to top-level and
address-taken variables.
"""

from repro.ir.module import Module
from repro.analysis.andersen import PointerResult
from repro.analysis.modref import ModRefResult
from repro.memssa.mu_chi import annotate_module, sorted_locs
from repro.memssa.ssa import construct_ssa
from repro.memssa.verifier import MemSSAError, verify_memory_ssa


def build_memory_ssa(
    module: Module, pointers: PointerResult, modref: ModRefResult
) -> None:
    """Annotate ``module`` with μ/χ functions and put it in SSA form.

    This is phase 2 of Figure 3: pointer information drives the μ/χ
    placement; a standard SSA construction then versions both variable
    kinds at once.
    """
    annotate_module(module, pointers, modref)
    construct_ssa(module)


__all__ = [
    "annotate_module",
    "construct_ssa",
    "build_memory_ssa",
    "sorted_locs",
    "MemSSAError",
    "verify_memory_ssa",
]
