"""Workloads: the SPEC-shaped benchmarks and a random generator.

``WORKLOADS`` is the paper's 15-program SPEC CPU2000 set (Table 1 /
Figures 10-11 iterate exactly these); ``CPU2006_WORKLOADS`` adds the
four CPU2006-style shape extensions (icall-heavy, recursion-heavy,
deep-copy-chain) and ``ALL_WORKLOADS`` is the 19-program bench-matrix
set.  Oracle-bred ``.ir`` corpus seeds load separately through
:mod:`repro.workloads.corpus`.
"""

from repro.workloads.generator import GeneratorParams, generate_program
from repro.workloads.spec import WORKLOADS, Workload
from repro.workloads.spec2006 import CPU2006_WORKLOADS

#: The full 19-program bench-matrix set: the paper's 15 plus the
#: CPU2006-style shape extensions.
ALL_WORKLOADS = WORKLOADS + CPU2006_WORKLOADS

#: Name -> workload over the *full* set (the SPEC2000 subset keeps its
#: own mapping in :mod:`repro.workloads.spec`).
BY_NAME = {w.name: w for w in ALL_WORKLOADS}


def workload(name: str) -> Workload:
    """Look up any workload by its SPEC-style name (e.g. ``"181.mcf"``,
    ``"445.gobmk"``)."""
    return BY_NAME[name]


__all__ = [
    "ALL_WORKLOADS",
    "BY_NAME",
    "CPU2006_WORKLOADS",
    "GeneratorParams",
    "generate_program",
    "WORKLOADS",
    "Workload",
    "workload",
]
