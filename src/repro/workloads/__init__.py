"""Workloads: the 15 SPEC-shaped benchmarks and a random generator."""

from repro.workloads.generator import GeneratorParams, generate_program
from repro.workloads.spec import BY_NAME, WORKLOADS, Workload, workload

__all__ = [
    "GeneratorParams",
    "generate_program",
    "BY_NAME",
    "WORKLOADS",
    "Workload",
    "workload",
]
