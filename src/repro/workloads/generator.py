"""Random TinyC program generator.

Generates syntactically valid, *terminating*, *fault-free* TinyC
programs from a seed — the fuzzing substrate for the property-based
tests and the scalability benchmarks.

Guarantees by construction:

- **Termination**: no recursion (functions only call strictly
  lower-indexed functions); every loop is counter-bounded with a
  reserved induction variable.
- **Memory safety**: pointers are always initialized with a valid
  allocation or the address of a global/local before use; element
  accesses rely on the interpreter's documented clamping.
- **Undefinedness is the only bug**: scalars may be declared without an
  initializer and read before assignment (controlled by
  ``uninit_prob``) — exactly the defect class the paper detects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class GeneratorParams:
    """Shape knobs for generated programs."""

    num_functions: int = 3
    max_stmts_per_body: int = 8
    max_depth: int = 2
    max_loop_trip: int = 6
    uninit_prob: float = 0.25
    pointer_prob: float = 0.4
    call_prob: float = 0.35
    output_prob: float = 0.3
    num_globals: int = 2

    def scaled(self, factor: int) -> "GeneratorParams":
        return GeneratorParams(
            num_functions=self.num_functions * factor,
            max_stmts_per_body=self.max_stmts_per_body,
            max_depth=self.max_depth,
            max_loop_trip=self.max_loop_trip,
            uninit_prob=self.uninit_prob,
            pointer_prob=self.pointer_prob,
            call_prob=self.call_prob,
            output_prob=self.output_prob,
            num_globals=self.num_globals * factor,
        )


_ARITH_OPS = ("+", "-", "*", "/", "%", "<", ">", "==", "&", "|", "^")


class _FuncScope:
    def __init__(self, name: str, params: List[str]) -> None:
        self.name = name
        self.params = params
        self.scalars: List[str] = list(params)
        self.pointers: List[str] = []
        self.counter = 0

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"{hint}{self.counter}"


def generate_program(seed: int, params: Optional[GeneratorParams] = None) -> str:
    """Generate TinyC source text for ``seed``."""
    return _Generator(random.Random(seed), params or GeneratorParams()).run()


class _Generator:
    def __init__(self, rng: random.Random, params: GeneratorParams) -> None:
        self.rng = rng
        self.params = params
        self.lines: List[str] = []
        self.globals: List[str] = []
        self.func_names: List[str] = []

    def run(self) -> str:
        p = self.params
        for i in range(p.num_globals):
            name = f"g{i}"
            self.globals.append(name)
            if self.rng.random() < 0.3:
                self.lines.append(f"global {name}[{self.rng.randint(2, 6)}];")
            else:
                self.lines.append(f"global {name};")
        for index in range(p.num_functions):
            self._gen_function(index)
        self._gen_main()
        return "\n".join(self.lines)

    # ------------------------------------------------------------------
    def _gen_function(self, index: int) -> None:
        name = f"f{index}"
        arity = self.rng.randint(1, 3)
        fparams = [f"a{i}" for i in range(arity)]
        self.func_names.append(name)
        scope = _FuncScope(name, fparams)
        self.lines.append(f"def {name}({', '.join(fparams)}) {{")
        self._gen_body(scope, depth=0, callable_below=index)
        self.lines.append(f"  return {self._expr(scope, callable_below=index)};")
        self.lines.append("}")

    def _gen_main(self) -> None:
        scope = _FuncScope("main", [])
        self.lines.append("def main() {")
        # Seed a couple of scalars so expressions have material.
        for i in range(2):
            var = scope.fresh("s")
            scope.scalars.append(var)
            self.lines.append(f"  var {var} = {self.rng.randint(0, 9)};")
        self._gen_body(scope, depth=0, callable_below=len(self.func_names))
        self.lines.append(f"  output({self._expr(scope, len(self.func_names))});")
        self.lines.append("  return 0;")
        self.lines.append("}")

    # ------------------------------------------------------------------
    def _gen_body(self, scope: _FuncScope, depth: int, callable_below: int) -> None:
        # Block scoping: names declared here are invisible afterwards —
        # otherwise a pointer declared in one branch could be
        # dereferenced (uninitialized) on the other path, which is a
        # memory fault rather than the undefined-value defect class.
        scalars_mark = len(scope.scalars)
        pointers_mark = len(scope.pointers)
        count = self.rng.randint(1, self.params.max_stmts_per_body)
        for _ in range(count):
            self._gen_stmt(scope, depth, callable_below)
        del scope.scalars[scalars_mark:]
        del scope.pointers[pointers_mark:]

    def _gen_stmt(self, scope: _FuncScope, depth: int, callable_below: int) -> None:
        rng = self.rng
        pad = "  " * (depth + 1)
        roll = rng.random()
        if roll < 0.25:
            # Declaration, possibly uninitialized (the defect source).
            var = scope.fresh("v")
            if rng.random() < self.params.uninit_prob:
                self.lines.append(f"{pad}var {var};")
            else:
                init = self._expr(scope, callable_below)
                self.lines.append(f"{pad}var {var} = {init};")
            scope.scalars.append(var)  # after the initializer: no self-init
        elif roll < 0.45 and scope.scalars:
            target = rng.choice(scope.scalars)
            self.lines.append(
                f"{pad}{target} = {self._expr(scope, callable_below)};"
            )
        elif roll < 0.55 and rng.random() < self.params.pointer_prob:
            self._gen_pointer_stmt(scope, pad, callable_below)
        elif roll < 0.7 and depth < self.params.max_depth:
            self.lines.append(f"{pad}if ({self._expr(scope, callable_below)}) {{")
            self._gen_body(scope, depth + 1, callable_below)
            if rng.random() < 0.5:
                self.lines.append(f"{pad}}} else {{")
                self._gen_body(scope, depth + 1, callable_below)
            self.lines.append(f"{pad}}}")
        elif roll < 0.8 and depth < self.params.max_depth:
            trip = rng.randint(1, self.params.max_loop_trip)
            induction = scope.fresh("li")
            self.lines.append(f"{pad}var {induction} = 0;")
            self.lines.append(f"{pad}while ({induction} < {trip}) {{")
            self._gen_body(scope, depth + 1, callable_below)
            self.lines.append(f"{pad}  {induction} = {induction} + 1;")
            self.lines.append(f"{pad}}}")
        elif roll < 0.9 and rng.random() < self.params.output_prob:
            self.lines.append(f"{pad}output({self._expr(scope, callable_below)});")
        else:
            var = scope.fresh("t")
            init = self._expr(scope, callable_below)
            self.lines.append(f"{pad}var {var} = {init};")
            scope.scalars.append(var)

    def _gen_pointer_stmt(self, scope: _FuncScope, pad: str, callable_below: int) -> None:
        rng = self.rng
        if not scope.pointers or rng.random() < 0.5:
            ptr = scope.fresh("p")
            scope.pointers.append(ptr)
            choice = rng.random()
            # Uninitialized allocations are an undefinedness source and
            # therefore also governed by uninit_prob.
            uninit = rng.random() < self.params.uninit_prob
            if choice < 0.4:
                size = rng.randint(1, 4)
                alloc = "malloc" if uninit else "calloc"
                self.lines.append(f"{pad}var {ptr} = {alloc}({size});")
            elif choice < 0.7 and self.globals:
                glob = rng.choice(self.globals)
                self.lines.append(f"{pad}var {ptr} = &{glob};")
            else:
                size = rng.randint(2, 5)
                alloc = "malloc_array" if uninit else "calloc_array"
                self.lines.append(f"{pad}var {ptr} = {alloc}({size});")
        else:
            ptr = rng.choice(scope.pointers)
            if rng.random() < 0.6:
                index = rng.randint(0, 3)
                self.lines.append(
                    f"{pad}{ptr}[{index}] = {self._expr(scope, callable_below)};"
                )
            else:
                self.lines.append(
                    f"{pad}*{ptr} = {self._expr(scope, callable_below)};"
                )

    # ------------------------------------------------------------------
    def _expr(self, scope: _FuncScope, callable_below: int, depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        if depth >= 2 or roll < 0.25:
            return self._atom(scope)
        if roll < 0.65:
            op = rng.choice(_ARITH_OPS)
            lhs = self._expr(scope, callable_below, depth + 1)
            rhs = self._expr(scope, callable_below, depth + 1)
            return f"({lhs} {op} {rhs})"
        if roll < 0.75 and scope.pointers:
            ptr = rng.choice(scope.pointers)
            if rng.random() < 0.5:
                return f"{ptr}[{rng.randint(0, 3)}]"
            return f"(*{ptr})"
        if (
            roll < 0.9
            and callable_below > 0
            and rng.random() < self.params.call_prob
        ):
            target_index = rng.randrange(callable_below)
            target = f"f{target_index}"
            arity = self._arity_of(target_index)
            args = ", ".join(
                self._atom(scope) for _ in range(arity)
            )
            if rng.random() < 0.2:
                # Through a function pointer.
                fp = scope.fresh("fp")
                pad = "  "
                self.lines.append(f"{pad}var {fp} = {target};")
                scope.counter += 0
                return f"{fp}({args})"
            return f"{target}({args})"
        return self._atom(scope)

    def _arity_of(self, index: int) -> int:
        header = next(
            line for line in self.lines if line.startswith(f"def f{index}(")
        )
        inside = header[header.index("(") + 1 : header.index(")")]
        return 0 if not inside.strip() else inside.count(",") + 1

    def _atom(self, scope: _FuncScope) -> str:
        rng = self.rng
        pool: List[str] = []
        pool.extend(scope.scalars)
        if rng.random() < 0.4 or not pool:
            return str(rng.randint(0, 20))
        return rng.choice(pool)
