"""Random TinyC program generator.

Generates syntactically valid, *terminating*, *fault-free* TinyC
programs from a seed — the fuzzing substrate for the property-based
tests and the scalability benchmarks.

Guarantees by construction:

- **Termination**: no recursion (functions only call strictly
  lower-indexed functions); every loop is counter-bounded with a
  reserved induction variable.
- **Memory safety**: pointers are always initialized with a valid
  allocation or the address of a global/local before use; element
  accesses rely on the interpreter's documented clamping.
- **Undefinedness is the only bug**: scalars may be declared without an
  initializer and read before assignment (controlled by
  ``uninit_prob``) — exactly the defect class the paper detects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional


@dataclass(frozen=True)
class GeneratorParams:
    """Shape knobs for generated programs.

    ``pointer_copy_prob`` defaults to 0.0 and — crucially — draws no
    randomness when zero, so every historical ``(seed, params)`` pair
    keeps producing byte-identical programs.  Turning it on adds
    pointer *aliasing traffic* (pointer-to-pointer copies, aliased
    re-declarations, allocation re-assignments), which is what gives
    the constraint solver multi-site points-to sets, long copy chains
    and — inside loops, via phi nodes — copy cycles.
    """

    num_functions: int = 3
    max_stmts_per_body: int = 8
    max_depth: int = 2
    max_loop_trip: int = 6
    uninit_prob: float = 0.25
    pointer_prob: float = 0.4
    call_prob: float = 0.35
    output_prob: float = 0.3
    num_globals: int = 2
    pointer_copy_prob: float = 0.0
    pointer_stmt_bonus: float = 0.0

    def scaled(self, factor: int) -> "GeneratorParams":
        return replace(
            self,
            num_functions=self.num_functions * factor,
            num_globals=self.num_globals * factor,
        )

    def pointer_heavy(self) -> "GeneratorParams":
        """A solver-stressing profile of the same program shape:
        pointer statements dominate, aliasing traffic is on, and the
        global hubs are few so their points-to sets grow large."""
        return replace(
            self,
            max_stmts_per_body=24,
            max_depth=3,
            pointer_prob=0.95,
            pointer_copy_prob=0.75,
            pointer_stmt_bonus=0.2,
            num_globals=min(self.num_globals, 4),
        )


_ARITH_OPS = ("+", "-", "*", "/", "%", "<", ">", "==", "&", "|", "^")


class _FuncScope:
    def __init__(self, name: str, params: List[str]) -> None:
        self.name = name
        self.params = params
        self.scalars: List[str] = list(params)
        self.pointers: List[str] = []
        #: pointers loaded from a global hub cell — publishable (stored
        #: back into hubs) but never dereferenced, so a path on which
        #: the cell was unwritten cannot fault at runtime.
        self.hub_loaded: List[str] = []
        self.counter = 0

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"{hint}{self.counter}"


def generate_program(seed: int, params: Optional[GeneratorParams] = None) -> str:
    """Generate TinyC source text for ``seed``."""
    return _Generator(random.Random(seed), params or GeneratorParams()).run()


class _Generator:
    def __init__(self, rng: random.Random, params: GeneratorParams) -> None:
        self.rng = rng
        self.params = params
        self.lines: List[str] = []
        self.globals: List[str] = []
        self.func_names: List[str] = []

    def run(self) -> str:
        p = self.params
        for i in range(p.num_globals):
            name = f"g{i}"
            self.globals.append(name)
            if self.rng.random() < 0.3:
                self.lines.append(f"global {name}[{self.rng.randint(2, 6)}];")
            else:
                self.lines.append(f"global {name};")
        for index in range(p.num_functions):
            self._gen_function(index)
        self._gen_main()
        return "\n".join(self.lines)

    # ------------------------------------------------------------------
    def _gen_function(self, index: int) -> None:
        name = f"f{index}"
        arity = self.rng.randint(1, 3)
        fparams = [f"a{i}" for i in range(arity)]
        self.func_names.append(name)
        scope = _FuncScope(name, fparams)
        self.lines.append(f"def {name}({', '.join(fparams)}) {{")
        self._gen_body(scope, depth=0, callable_below=index)
        self.lines.append(f"  return {self._expr(scope, callable_below=index)};")
        self.lines.append("}")

    def _gen_main(self) -> None:
        scope = _FuncScope("main", [])
        self.lines.append("def main() {")
        # Seed a couple of scalars so expressions have material.
        for i in range(2):
            var = scope.fresh("s")
            scope.scalars.append(var)
            self.lines.append(f"  var {var} = {self.rng.randint(0, 9)};")
        self._gen_body(scope, depth=0, callable_below=len(self.func_names))
        self.lines.append(f"  output({self._expr(scope, len(self.func_names))});")
        self.lines.append("  return 0;")
        self.lines.append("}")

    # ------------------------------------------------------------------
    def _gen_body(self, scope: _FuncScope, depth: int, callable_below: int) -> None:
        # Block scoping: names declared here are invisible afterwards —
        # otherwise a pointer declared in one branch could be
        # dereferenced (uninitialized) on the other path, which is a
        # memory fault rather than the undefined-value defect class.
        scalars_mark = len(scope.scalars)
        pointers_mark = len(scope.pointers)
        hub_mark = len(scope.hub_loaded)
        count = self.rng.randint(1, self.params.max_stmts_per_body)
        for _ in range(count):
            self._gen_stmt(scope, depth, callable_below)
        del scope.scalars[scalars_mark:]
        del scope.pointers[pointers_mark:]
        del scope.hub_loaded[hub_mark:]

    def _gen_stmt(self, scope: _FuncScope, depth: int, callable_below: int) -> None:
        rng = self.rng
        pad = "  " * (depth + 1)
        roll = rng.random()
        if roll < 0.25:
            # Declaration, possibly uninitialized (the defect source).
            var = scope.fresh("v")
            if rng.random() < self.params.uninit_prob:
                self.lines.append(f"{pad}var {var};")
            else:
                init = self._expr(scope, callable_below)
                self.lines.append(f"{pad}var {var} = {init};")
            scope.scalars.append(var)  # after the initializer: no self-init
        elif roll < 0.45 and scope.scalars:
            target = rng.choice(scope.scalars)
            self.lines.append(
                f"{pad}{target} = {self._expr(scope, callable_below)};"
            )
        elif (
            roll < 0.55 + self.params.pointer_stmt_bonus
            and rng.random() < self.params.pointer_prob
        ):
            self._gen_pointer_stmt(scope, pad, callable_below)
        elif roll < 0.7 and depth < self.params.max_depth:
            self.lines.append(f"{pad}if ({self._expr(scope, callable_below)}) {{")
            self._gen_body(scope, depth + 1, callable_below)
            if rng.random() < 0.5:
                self.lines.append(f"{pad}}} else {{")
                self._gen_body(scope, depth + 1, callable_below)
            self.lines.append(f"{pad}}}")
        elif roll < 0.8 and depth < self.params.max_depth:
            trip = rng.randint(1, self.params.max_loop_trip)
            induction = scope.fresh("li")
            self.lines.append(f"{pad}var {induction} = 0;")
            self.lines.append(f"{pad}while ({induction} < {trip}) {{")
            self._gen_body(scope, depth + 1, callable_below)
            self.lines.append(f"{pad}  {induction} = {induction} + 1;")
            self.lines.append(f"{pad}}}")
        elif roll < 0.9 and rng.random() < self.params.output_prob:
            self.lines.append(f"{pad}output({self._expr(scope, callable_below)});")
        else:
            var = scope.fresh("t")
            init = self._expr(scope, callable_below)
            self.lines.append(f"{pad}var {var} = {init};")
            scope.scalars.append(var)

    def _gen_pointer_stmt(self, scope: _FuncScope, pad: str, callable_below: int) -> None:
        rng = self.rng
        # Aliasing traffic (guarded so the zero default consumes no
        # randomness — historical seeds must stay byte-identical).
        if (
            self.params.pointer_copy_prob
            and scope.pointers
            and rng.random() < self.params.pointer_copy_prob
        ):
            roll = rng.random()
            if roll < 0.2 and len(scope.pointers) >= 2:
                dst, src = rng.sample(scope.pointers, 2)
                self.lines.append(f"{pad}{dst} = {src};")
            elif roll < 0.35:
                src = rng.choice(scope.pointers)
                ptr = scope.fresh("q")
                scope.pointers.append(ptr)
                self.lines.append(f"{pad}var {ptr} = {src};")
            elif roll < 0.65 and self.globals:
                # Publish a pointer into a global "hub" cell: hub sets
                # grow with contributions from every function, which is
                # what makes a naive solver re-propagate quadratically.
                # Republishing hub-loaded pointers links hubs into
                # load/store cycles — the food of cycle collapsing.
                glob = rng.choice(self.globals)
                src = rng.choice(scope.pointers + scope.hub_loaded)
                hub = scope.fresh("hp")
                self.lines.append(f"{pad}var {hub} = &{glob};")
                self.lines.append(f"{pad}*{hub} = {src};")
            elif roll < 0.9 and self.globals:
                # Subscribe to a hub.  The loaded pointer may be
                # republished (stored) but is never dereferenced or
                # used in arithmetic, so execution stays fault-free
                # even when the cell was never written on this path.
                glob = rng.choice(self.globals)
                hub = scope.fresh("hp")
                got = scope.fresh("gp")
                self.lines.append(f"{pad}var {hub} = &{glob};")
                self.lines.append(f"{pad}var {got} = *{hub};")
                scope.hub_loaded.append(got)
            else:
                dst = rng.choice(scope.pointers)
                self.lines.append(f"{pad}{dst} = calloc({rng.randint(1, 4)});")
            return
        if not scope.pointers or rng.random() < 0.5:
            ptr = scope.fresh("p")
            scope.pointers.append(ptr)
            choice = rng.random()
            # Uninitialized allocations are an undefinedness source and
            # therefore also governed by uninit_prob.
            uninit = rng.random() < self.params.uninit_prob
            if choice < 0.4:
                size = rng.randint(1, 4)
                alloc = "malloc" if uninit else "calloc"
                self.lines.append(f"{pad}var {ptr} = {alloc}({size});")
            elif choice < 0.7 and self.globals:
                glob = rng.choice(self.globals)
                self.lines.append(f"{pad}var {ptr} = &{glob};")
            else:
                size = rng.randint(2, 5)
                alloc = "malloc_array" if uninit else "calloc_array"
                self.lines.append(f"{pad}var {ptr} = {alloc}({size});")
        else:
            ptr = rng.choice(scope.pointers)
            if rng.random() < 0.6:
                index = rng.randint(0, 3)
                self.lines.append(
                    f"{pad}{ptr}[{index}] = {self._expr(scope, callable_below)};"
                )
            else:
                self.lines.append(
                    f"{pad}*{ptr} = {self._expr(scope, callable_below)};"
                )

    # ------------------------------------------------------------------
    def _expr(self, scope: _FuncScope, callable_below: int, depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        if depth >= 2 or roll < 0.25:
            return self._atom(scope)
        if roll < 0.65:
            op = rng.choice(_ARITH_OPS)
            lhs = self._expr(scope, callable_below, depth + 1)
            rhs = self._expr(scope, callable_below, depth + 1)
            return f"({lhs} {op} {rhs})"
        if roll < 0.75 and scope.pointers:
            ptr = rng.choice(scope.pointers)
            if rng.random() < 0.5:
                return f"{ptr}[{rng.randint(0, 3)}]"
            return f"(*{ptr})"
        if (
            roll < 0.9
            and callable_below > 0
            and rng.random() < self.params.call_prob
        ):
            target_index = rng.randrange(callable_below)
            target = f"f{target_index}"
            arity = self._arity_of(target_index)
            args = ", ".join(
                self._atom(scope) for _ in range(arity)
            )
            if rng.random() < 0.2:
                # Through a function pointer.
                fp = scope.fresh("fp")
                pad = "  "
                self.lines.append(f"{pad}var {fp} = {target};")
                scope.counter += 0
                return f"{fp}({args})"
            return f"{target}({args})"
        return self._atom(scope)

    def _arity_of(self, index: int) -> int:
        header = next(
            line for line in self.lines if line.startswith(f"def f{index}(")
        )
        inside = header[header.index("(") + 1 : header.index(")")]
        return 0 if not inside.strip() else inside.count(",") + 1

    def _atom(self, scope: _FuncScope) -> str:
        rng = self.rng
        pool: List[str] = []
        pool.extend(scope.scalars)
        if rng.random() < 0.4 or not pool:
            return str(rng.randint(0, 20))
        return rng.choice(pool)
