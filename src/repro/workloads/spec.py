"""The 15 SPEC CPU2000-shaped synthetic workloads.

The paper evaluates on all 15 SPEC CPU2000 C programs.  Those sources
and reference inputs cannot be redistributed, so each benchmark is
replaced by a synthetic TinyC program named after it whose *profile*
matches what Table 1 and §4.5 report drives the results.  Each program
mixes, in benchmark-specific proportions, the value-flow categories
that real C programs exhibit:

- **defined memory traffic** — global/calloc'd tables and records whose
  initialising stores are strongly or semi-strongly updatable: full
  instrumentation (and Usher_TL) pays for every access, Usher_TL+AT
  proves them ⊤ and drops everything;
- **fog** — flows that are dynamically always defined but statically
  unprovable: ``malloc``'d arrays initialised element-by-element (the
  collapsed array merges the undefined-at-allocation state forever),
  records initialised through shared helper functions (points-to
  merging forces weak updates), conditionally-initialised scalars.
  These are what keep Usher's residual overhead (the paper's 123%);
- **pure scalar arithmetic** — only full instrumentation pays;
- **dominated check chains** — one ⊥ value used at several critical
  statements in dominance order (what Opt II elides);
- **long must-flow chains** — arithmetic pipelines from ⊥ sources into
  one consumer (what Opt I collapses); bitwise variants (186.crafty)
  stop Opt I, as §4.1 requires for bit-level precision.

=============  ====================================================
Benchmark      Profile reproduced
=============  ====================================================
164.gzip       LZ window compression; mostly defined tables, light fog
175.vpr        grid placement; defined grid + fogged net weights
176.gcc        pass dispatch via function-pointer table; wide call graph
177.mesa       span interpolation; heap-allocation heavy, fogged vertices
179.art        neural resonance scan; defined weights, fogged input
181.mcf        network simplex on calloc'd records: ~everything defined
               → near-zero Usher overhead (the paper's 2%)
183.equake     CSR sparse matrix-vector; fogged matrix values
186.crafty     bitboard scoring; *bitwise* fog (limits Opt I)
188.ammp       many-field molecule records initialised by a shared
               helper (weak updates keep them ⊥)
197.parser     tokenizer with a **genuine uninitialized-variable bug**
               in ``ppmatch`` (§4.5: detected by all tools)
253.perlbmk    bytecode interpreter over a fogged opcode stream: most
               values feed checks (high %B → small TL→TL+AT gap)
254.gap        arena allocator handing out uninitialized blocks (high
               %F, few strong updates → small TL→TL+AT gap)
255.vortex     object store accessor chains over a fogged store
256.bzip2      counting sort + RLE over a defined block, fogged input
300.twolf      annealing over a defined grid with an LCG; fogged costs
=============  ====================================================

Every program terminates, is memory-safe under the interpreter's
clamping semantics, and emits checksums via ``output`` so instrumented
and native runs can be compared for semantic equality.  Only
``197.parser`` contains a true undefined-value use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class Workload:
    """A named benchmark program generator.

    ``source(scale)`` renders TinyC text; ``scale=1.0`` is the
    "reference input" used by the figures; tests use smaller scales.
    """

    name: str
    description: str
    _render: Callable[[int], str]
    base_iterations: int
    has_true_bug: bool = False

    def source(self, scale: float = 1.0) -> str:
        iterations = max(2, int(self.base_iterations * scale))
        return self._render(iterations)


def _gzip(n: int) -> str:
    return f"""
// 164.gzip: LZ-style sliding-window compression.
// Window/hash tables are defined memory traffic; the input stream is a
// fogged malloc'd array (initialized dynamically, unprovable statically).
global hash_head[64];
global checksum;

def fill_input(buf, len) {{
  var k = 0;
  while (k < len) {{
    buf[k] = (k * 17 + 5) % 97;     // fully initialized at run time
    k = k + 1;
  }}
  return len;
}}

def update_hash(h, c) {{
  return ((h * 31) + c) % 64;
}}

def longest_match(win, pos, cand) {{
  var len = 0;
  while (len < 8) {{
    if (win[(pos + len) % 128] != win[(cand + len) % 128]) {{ break; }}
    len = len + 1;
  }}
  return len;
}}

def main() {{
  var win = calloc_array(128);       // defined traffic: AT proves it
  var input = malloc_array(256);     // fog: collapsed array stays ⊥
  fill_input(input, 256);
  var i = 0, h = 0, emitted = 0;
  while (i < {n}) {{
    var c = input[i % 256];
    win[i % 128] = c;
    h = update_hash(h, c % 64);
    var cand = hash_head[h % 64];
    var m = longest_match(win, i % 128, cand % 128);
    if (m > 2) {{ emitted = emitted + 1; }} else {{ emitted = emitted + m; }}
    hash_head[h % 64] = i % 128;
    checksum = (checksum + m + c) % 65536;
    i = i + 1;
  }}
  output(checksum);
  output(emitted);
  return 0;
}}
"""


def _vpr(n: int) -> str:
    return f"""
// 175.vpr: grid placement with swap-based cost improvement.  The grid
// is a defined global; per-net weights are fogged (helper-initialized
// heap records shared between call sites force weak updates).
global grid[100];
global best_cost;

def set_weight(net, w) {{
  net[0] = w;
  net[1] = w * 2 + 1;
  return net;
}}

def cell_cost(idx, net) {{
  var here = grid[idx % 100];
  var right = grid[(idx + 1) % 100];
  var d = here - right;
  if (d < 0) {{ d = 0 - d; }}
  return d * net[0] + net[1];
}}

def try_swap(a, b, net) {{
  var before = cell_cost(a, net) + cell_cost(b, net);
  var tmp = grid[a % 100];
  grid[a % 100] = grid[b % 100];
  grid[b % 100] = tmp;
  var after = cell_cost(a, net) + cell_cost(b, net);
  if (after > before) {{
    tmp = grid[a % 100];
    grid[a % 100] = grid[b % 100];
    grid[b % 100] = tmp;
    return 0;
  }}
  return before - after;
}}

def main() {{
  var i = 0;
  while (i < 100) {{ grid[i] = (i * 37) % 50; i = i + 1; }}
  var net1 = set_weight(malloc(2), 3);   // two call sites into
  var net2 = set_weight(malloc(2), 5);   // set_weight: pts merge → weak
  var step = 0, gain = 0;
  while (step < {n}) {{
    var net = net1;
    if (step % 2) {{ net = net2; }}
    gain = gain + try_swap(step * 7, step * 13 + 3, net);
    step = step + 1;
  }}
  best_cost = gain;
  output(best_cost);
  return 0;
}}
"""


def _gcc(n: int) -> str:
    return f"""
// 176.gcc: pass pipeline dispatched through a function-pointer table
// over an RTL buffer.  The RTL buffer is fogged (malloc'd, initialized
// by a loop); pass bookkeeping is defined.
global pass_count;

def fold_const(x) {{ return (x * 2) % 251; }}
def cse_pass(x) {{ return (x + 7) % 251; }}
def dce_pass(x) {{ if (x % 3) {{ return x - 1; }} return x; }}
def loop_pass(x) {{
  var acc = x, k = 0;
  while (k < 3) {{ acc = (acc * 5 + 1) % 251; k = k + 1; }}
  return acc;
}}
def sched_pass(x) {{ return (x + 42) % 251; }}

def run_pass(fn, rtl, count) {{
  var j = 0;
  while (j < count) {{
    rtl[j % 64] = fn(rtl[j % 64]);
    j = j + 1;
  }}
  pass_count = pass_count + 1;
  return pass_count;
}}

def main() {{
  var rtl = malloc_array(64);          // fog
  var i = 0;
  while (i < 64) {{ rtl[i] = i; i = i + 1; }}
  var passes = malloc_array(5);
  passes[0] = fold_const; passes[1] = cse_pass; passes[2] = dce_pass;
  passes[3] = loop_pass;  passes[4] = sched_pass;
  var round = 0;
  while (round < {n}) {{
    run_pass(passes[round % 5], rtl, 16);
    round = round + 1;
  }}
  var sum = 0; i = 0;
  while (i < 64) {{ sum = (sum + rtl[i]) % 100000; i = i + 1; }}
  output(sum);
  output(pass_count);
  return 0;
}}
"""


def _mesa(n: int) -> str:
    return f"""
// 177.mesa: span shading.  A fresh vertex record per span (heap-heavy,
// as in Table 1); vertices are initialized through a *loop* with a
// computed index — the classic memset-by-loop idiom that defeats
// strong and semi-strong updates (all fields stay statically ⊥).
global frames;

def make_vertex(x, y, z) {{
  var v = malloc(4);
  var k = 0;
  while (k < 4) {{
    v[k] = (x * (k + 1) + y * k + z) % 256;   // computed index: fog
    k = k + 1;
  }}
  return v;
}}

def lerp(a, b, t) {{
  return a + ((b - a) * t) / 16;
}}

def shade_span(v0, v1, t) {{
  var r = lerp(v0[0], v1[0], t);
  var g = lerp(v0[1], v1[1], t);
  var b = lerp(v0[2], v1[2], t);
  return (r * 3 + g * 5 + b * 7) % 4096;
}}

def main() {{
  var zbuf = calloc_array(64);         // defined traffic
  var frame = 0, acc = 0;
  while (frame < {n}) {{
    frames = frames + 1;
    var a = make_vertex(frame % 255, (frame * 3) % 255, 9);
    var b = make_vertex((frame * 7) % 255, 100, frame % 31);
    var t = 0;
    while (t < 8) {{
      var c = shade_span(a, b, t);
      if (c > zbuf[(frame + t) % 64]) {{ zbuf[(frame + t) % 64] = c % 512; }}
      acc = (acc + c) % 65536;
      t = t + 1;
    }}
    frame = frame + 1;
  }}
  output(acc);
  output(zbuf[7]);
  return 0;
}}
"""


def _art(n: int) -> str:
    return f"""
// 179.art: adaptive resonance scan.  Weights are a defined global;
// the input feature window is fogged (malloc + dynamic init).
global weights[32];
global trained;

def train(val, idx) {{
  weights[idx % 32] = (weights[idx % 32] * 3 + val) / 4;
  trained = trained + 1;
  return weights[idx % 32];
}}

def match_score(f1, idx) {{
  var s = 0, k = 0;
  while (k < 8) {{
    var d = f1[(idx + k) % 32] - weights[(idx + k) % 32];
    if (d < 0) {{ d = 0 - d; }}
    s = s + d;
    k = k + 1;
  }}
  return s;
}}

def main() {{
  var f1 = malloc_array(32);           // fog
  var i = 0;
  while (i < 32) {{ f1[i] = (i * 11) % 64; i = i + 1; }}
  var scan = 0, winner = 0, best = 9999;
  while (scan < {n}) {{
    var idx = scan % 32;
    var s = match_score(f1, idx);
    if (s < best) {{ best = s; winner = idx; }}
    train(f1[idx], idx);
    scan = scan + 1;
  }}
  output(winner);
  output(best);
  return 0;
}}
"""


def _mcf(n: int) -> str:
    return f"""
// 181.mcf: network simplex sweep over calloc'd node/arc records —
// essentially every value is provably defined, reproducing the paper's
// 2% Usher slowdown on this benchmark.
global pivots;

def make_node(id) {{
  var node = calloc(4);
  node[0] = id;
  node[1] = (id * 7) % 100;  // potential
  return node;
}}

def make_arc(src, dst, cost) {{
  var arc = calloc(4);
  arc[0] = src; arc[1] = dst; arc[2] = cost;
  return arc;
}}

def reduced_cost(arc, nodes) {{
  var src = nodes[arc[0] % 16];
  var dst = nodes[arc[1] % 16];
  return arc[2] - src[1] + dst[1];
}}

def main() {{
  var nodes = calloc_array(16);
  var i = 0;
  while (i < 16) {{ nodes[i] = make_node(i); i = i + 1; }}
  // Deleted-arc bookkeeping carries a fogged cost into a *second*
  // make_arc call site.  1-callsite heap cloning and context-sensitive
  // resolution keep the hot arcs below provably defined; without either
  // the fogged clone pollutes them (the ablation benchmarks show this).
  var dead_costs = malloc_array(8);
  i = 0;
  while (i < 8) {{ dead_costs[i] = i * 3; i = i + 1; }}
  var flow = 0, ghost = 0, iter = 0;
  while (iter < {n}) {{
    var tomb = make_arc(iter, iter, dead_costs[iter % 8]);
    ghost = ghost + tomb[0];
    var arc = make_arc(iter, iter * 3 + 1, (iter * 13) % 50);
    var rc = reduced_cost(arc, nodes);
    if (rc < 0) {{
      flow = flow + 1;
      pivots = pivots + 1;
      var pivot = nodes[iter % 16];
      pivot[1] = pivot[1] + rc;
    }}
    iter = iter + 1;
  }}
  output(flow);
  output(pivots);
  output(ghost % 1000);
  return 0;
}}
"""


def _equake(n: int) -> str:
    return f"""
// 183.equake: CSR sparse matrix-vector products.  Index structure is
// defined (globals); the value array and the vector are fogged.
global colidx[96];
global rowptr[17];
global iters;

def spmv_row(row, vals, x) {{
  var acc = 0;
  var k = rowptr[row];
  var end = rowptr[row + 1];
  while (k < end) {{
    acc = acc + vals[k % 96] * x[colidx[k % 96] % 16];
    k = k + 1;
  }}
  return acc;
}}

def main() {{
  var i = 0;
  while (i < 96) {{ colidx[i] = (i * 5) % 16; i = i + 1; }}
  i = 0;
  while (i < 17) {{ rowptr[i] = (i * 96) / 16; i = i + 1; }}
  var vals = malloc_array(96);         // fog
  i = 0;
  while (i < 96) {{ vals[i] = (i % 7) + 1; i = i + 1; }}
  var x = malloc_array(16);            // fog
  i = 0;
  while (i < 16) {{ x[i] = i + 1; i = i + 1; }}
  var step = 0, norm = 0;
  while (step < {n}) {{
    var row = 0;
    while (row < 16) {{
      var y = spmv_row(row, vals, x);
      x[row] = (x[row] + y) % 1000;
      row = row + 1;
    }}
    norm = (norm + x[step % 16]) % 100000;
    iters = iters + 1;
    step = step + 1;
  }}
  output(norm);
  output(iters);
  return 0;
}}
"""


def _crafty(n: int) -> str:
    return f"""
// 186.crafty: bitboard attack generation.  The board state is fogged
// AND the chains are bitwise, so Opt I cannot simplify them (bit-level
// precision, §4.1).
global zobrist;

def init_board(bb) {{
  var p = 0;
  while (p < 12) {{
    bb[p] = (p * 2479) ^ (p << 5);
    p = p + 1;
  }}
  return bb;
}}

def popcount(v) {{
  var c = 0, k = 0;
  while (k < 16) {{
    c = c + (v & 1);
    v = v >> 1;
    k = k + 1;
  }}
  return c;
}}

def rook_attacks(occ, sq) {{
  var mask = (255 << ((sq / 8) * 8));
  return (occ & mask) | (1 << (sq % 16));
}}

def evaluate(bb, occ) {{
  var score = 0, p = 0;
  while (p < 12) {{
    score = score + popcount(bb[p] & occ) * (p + 1);
    p = p + 1;
  }}
  return score;
}}

def main() {{
  var bb = init_board(malloc_array(12));   // fog
  var ply = 0, best = 0;
  while (ply < {n}) {{
    var occ = bb[ply % 12] | bb[(ply + 5) % 12];
    var att = rook_attacks(occ, ply % 64);
    var score = evaluate(bb, att);
    zobrist = zobrist ^ (score << (ply % 8));
    if (score > best) {{ best = score; }}
    ply = ply + 1;
  }}
  output(best);
  output(zobrist & 65535);
  return 0;
}}
"""


def _ammp(n: int) -> str:
    return f"""
// 188.ammp: molecular dynamics over many-field atom records whose
// coordinate fields are filled by a computed-index loop (memset-by-loop
// fog); only the serial and mass use constant offsets.
global steps;

def make_atom(id) {{
  var atom = malloc(6);
  atom[0] = id;
  var k = 1;
  while (k < 5) {{
    atom[k] = (id * (13 + 16 * k)) % 40;   // computed index: fog
    k = k + 1;
  }}
  atom[5] = 1 + id % 3;
  return atom;
}}

def interact(a, b) {{
  var dx = a[1] - b[1];
  var dy = a[2] - b[2];
  var dz = a[3] - b[3];
  var r2 = dx * dx + dy * dy + dz * dz + 1;
  var f = 1000 / r2;
  a[4] = a[4] + f;
  b[4] = b[4] - f;
  return f;
}}

def main() {{
  var atoms = calloc_array(12);
  var i = 0;
  while (i < 12) {{ atoms[i] = make_atom(i); i = i + 1; }}
  var step = 0, energy = 0;
  while (step < {n}) {{
    var a = atoms[step % 12];
    var b = atoms[(step * 5 + 1) % 12];
    energy = (energy + interact(a, b)) % 1000000;
    a[1] = (a[1] + a[4] / a[5]) % 40;
    steps = steps + 1;
    step = step + 1;
  }}
  output(energy);
  return 0;
}}
"""


def _parser(n: int) -> str:
    return f"""
// 197.parser: token scan + dictionary link with the paper's genuine
// bug — ppmatch reads `power` before every path defines it (the one
// true use of an undefined value all tools detect, §4.5).
global dict[32];
global tokens;

def hash_word(w) {{
  return ((w * 26544357) >> 4) % 32;
}}

def ppmatch(kind, strength) {{
  var power;                 // BUG: undefined when kind % 4 == 3
  if (kind % 4 == 0) {{ power = strength + 1; }}
  else {{ if (kind % 4 == 1) {{ power = strength * 2; }}
  else {{ if (kind % 4 == 2) {{ power = 0 - strength; }} }} }}
  if (power > 4) {{          // reads the undefined value
    return 1;
  }}
  return 0;
}}

def scan_token(text, pos) {{
  var c = text[pos % 64];
  if (c % 5 == 0) {{ return c + 1; }}
  return c;
}}

def link_word(w) {{
  var h = hash_word(w);
  var prev = dict[h % 32];
  dict[h % 32] = (w + prev) % 65536;
  return prev;
}}

def main() {{
  var text = malloc_array(64);         // fog
  var i = 0;
  while (i < 64) {{ text[i] = (i * 31 + 7) % 127; i = i + 1; }}
  var tok = 0, matches = 0, links = 0;
  while (tok < {n}) {{
    var w = scan_token(text, tok);
    links = (links + link_word(w)) % 65536;
    matches = matches + ppmatch(tok, w % 10);
    tokens = tokens + 1;
    tok = tok + 1;
  }}
  output(matches);
  output(links);
  return 0;
}}
"""


def _perlbmk(n: int) -> str:
    return f"""
// 253.perlbmk: bytecode interpreter.  Opcode stream and operand stack
// are both fogged, and almost every computed value steers a branch or
// an indirect dispatch — the paper's 84% of VFG nodes reaching a check
// and the smallest TL→TL+AT improvement.
global executed;

def op_add(stk, sp) {{ stk[(sp - 1) % 16] = stk[(sp - 1) % 16] + stk[sp % 16]; return sp - 1; }}
def op_mul(stk, sp) {{ stk[(sp - 1) % 16] = stk[(sp - 1) % 16] * stk[sp % 16] % 9973; return sp - 1; }}
def op_dup(stk, sp) {{ stk[(sp + 1) % 16] = stk[sp % 16]; return sp + 1; }}
def op_mod(stk, sp) {{ stk[(sp - 1) % 16] = stk[(sp - 1) % 16] % (stk[sp % 16] + 1); return sp - 1; }}

def main() {{
  var code = malloc_array(48);         // fog: the bytecode stream
  var i = 0;
  while (i < 48) {{ code[i] = (i * 19 + 3) % 97; i = i + 1; }}
  var stk = malloc_array(16);          // fog: the operand stack
  i = 0;
  while (i < 16) {{ stk[i] = i + 1; i = i + 1; }}
  var ops = malloc_array(4);
  ops[0] = op_add; ops[1] = op_mul; ops[2] = op_dup; ops[3] = op_mod;
  var pc = 0, sp = 1, trace = 0;
  while (pc < {n}) {{
    var insn = code[pc % 48];
    var arg = code[(pc + 1) % 48];     // operand fetch: more fog
    var opcode = (insn + arg) % 4;
    if (insn % 7 == 0) {{
      stk[(sp + 1) % 16] = insn + arg; // push literal
      sp = sp + 1;
    }} else {{
      var fn = ops[opcode];
      sp = fn(stk, sp);
      if (sp < 1) {{ sp = 1; }}
    }}
    var top = stk[sp % 16];
    if (top > 5000) {{ trace = trace + 1; }}
    if ((top + arg) % 11 == 0) {{      // flag computation over fog
      stk[sp % 16] = top % 4096;
    }}
    executed = executed + 1;
    // Stack rewinds driven by the opcode stream fog the stack pointer
    // itself, and variable-length instructions fog the pc: nearly every
    // value in the dispatch loop feeds a runtime check (the paper's 84%
    // of VFG nodes reaching a check on this benchmark).
    if (insn % 13 == 0) {{ sp = (insn % 8) + 1; }}
    pc = pc + 1 + (insn % 2);
  }}
  output(stk[sp % 16]);
  output(trace);
  return 0;
}}
"""


def _gap(n: int) -> str:
    return f"""
// 254.gap: bump-arena allocator handing out *uninitialized* blocks
// (high %F) that callers only partially initialize before use — few
// strong updates, so analyzing address-taken variables helps little
// (the paper's small TL→TL+AT gap on this benchmark).
global allocs;

def arena_new(size) {{
  allocs = allocs + 1;
  return malloc(4);          // fresh, uninitialized handout
}}

def make_int_obj(v) {{
  var h = arena_new(4);
  h[0] = 1;
  h[1] = v;                  // h[2], h[3] stay undefined (never read)
  return h;
}}

def obj_sum(a, b) {{
  return a[1] + b[1];
}}

def main() {{
  var acc = 0, i = 0;
  while (i < {n}) {{
    var x = make_int_obj(i);
    var y = make_int_obj(i * 3);
    var s = obj_sum(x, y);
    if (s % 3 == 0) {{ acc = (acc + s) % 1000003; }}
    else {{ acc = (acc + 1) % 1000003; }}
    i = i + 1;
  }}
  output(acc);
  output(allocs);
  return 0;
}}
"""


def _vortex(n: int) -> str:
    return f"""
// 255.vortex: object store with accessor call chains over a fogged
// backing array — store/call dense, long interprocedural value flows.
global next_id;

def obj_base(id) {{ return (id % 16) * 3; }}

def obj_create(store, kind, payload) {{
  var id = next_id;
  next_id = next_id + 1;
  var base = obj_base(id);
  store[base] = id;
  store[base + 1] = kind;
  store[base + 2] = payload;
  return id;
}}

def obj_kind(store, id) {{ return store[obj_base(id) + 1]; }}
def obj_payload(store, id) {{ return store[obj_base(id) + 2]; }}

def obj_update(store, id, delta) {{
  var base = obj_base(id);
  store[base + 2] = store[base + 2] + delta;
  return store[base + 2];
}}

def main() {{
  var store = malloc_array(48);        // fog
  var k = 0;
  while (k < 48) {{ store[k] = 0; k = k + 1; }}
  var i = 0, digest = 0;
  while (i < {n}) {{
    var id = obj_create(store, i % 5, i * 11);
    if (obj_kind(store, id) == 3) {{
      digest = (digest + obj_update(store, id, 7)) % 999983;
    }} else {{
      digest = (digest + obj_payload(store, id)) % 999983;
    }}
    i = i + 1;
  }}
  output(digest);
  output(next_id);
  return 0;
}}
"""


def _bzip2(n: int) -> str:
    return f"""
// 256.bzip2: counting sort + run-length pass.  The working block and
// frequency tables are defined traffic (globals); the input generator
// array is fogged.
global block[64];
global freq[16];
global passes;

def rle_emit(v, run) {{
  if (run > 3) {{ return v * 4 + run; }}
  return v * run;
}}

def main() {{
  var src = malloc_array(64);          // fog
  var i = 0;
  while (i < 64) {{ src[i] = (i * 13 + 1) % 256; i = i + 1; }}
  var pass = 0, out = 0;
  while (pass < {n}) {{
    i = 0;
    while (i < 64) {{ block[i] = (src[i] * (pass + 7)) % 16; i = i + 1; }}
    i = 0;
    while (i < 16) {{ freq[i] = 0; i = i + 1; }}
    i = 0;
    while (i < 64) {{ freq[block[i] % 16] = freq[block[i] % 16] + 1; i = i + 1; }}
    i = 1;
    while (i < 16) {{ freq[i] = freq[i] + freq[i - 1]; i = i + 1; }}
    var run = 1;
    i = 1;
    while (i < 64) {{
      if (block[i] == block[i - 1]) {{ run = run + 1; }}
      else {{ out = (out + rle_emit(block[i - 1], run)) % 65536; run = 1; }}
      i = i + 1;
    }}
    passes = passes + 1;
    pass = pass + 1;
  }}
  output(out);
  output(freq[15]);
  return 0;
}}
"""


def _twolf(n: int) -> str:
    return f"""
// 300.twolf: simulated annealing over a standard-cell grid, LCG-driven.
// The grid is defined; per-move cost scratch records are heap-fresh and
// rescued by semi-strong updates (Figure 6's pattern).
global cells[80];
global seed;

def lcg() {{
  seed = (seed * 1103515245 + 12345) % 2147483648;
  return seed / 65536;
}}

def wirelen(a, b) {{
  // Per-call scratch record: the allocation dominates both stores, so
  // the semi-strong update rule (Figure 6) proves the reads defined.
  var scratch = malloc(2);
  var d = cells[a % 80] - cells[b % 80];
  if (d < 0) {{ d = 0 - d; }}
  scratch[0] = d;
  scratch[1] = d * 2;
  return scratch[0] + scratch[1] / 2;
}}

def anneal_move(temp, noise) {{
  var a = lcg() % 80;
  var b = lcg() % 80;
  var before = wirelen(a, b);
  var tmp = cells[a % 80];
  cells[a % 80] = cells[b % 80];
  cells[b % 80] = tmp;
  var after = wirelen(a, b);
  if (after > before + temp + noise) {{
    tmp = cells[a % 80];
    cells[a % 80] = cells[b % 80];
    cells[b % 80] = tmp;
    return 0;
  }}
  return before - after;
}}

def main() {{
  seed = 42;
  var i = 0;
  while (i < 80) {{ cells[i] = (i * 73) % 200; i = i + 1; }}
  var jitter = malloc_array(16);       // fog: annealing noise table
  i = 0;
  while (i < 16) {{ jitter[i] = i % 3; i = i + 1; }}
  var temp = 40, gain = 0, step = 0;
  while (step < {n}) {{
    gain = gain + anneal_move(temp, jitter[step % 16]);
    if (step % 8 == 7) {{
      if (temp > 0) {{ temp = temp - 1; }}
    }}
    step = step + 1;
  }}
  output(gain);
  output(temp);
  return 0;
}}
"""


#: All 15 workloads in SPEC numbering order.
WORKLOADS: List[Workload] = [
    Workload("164.gzip", "LZ window compression", _gzip, 200),
    Workload("175.vpr", "grid placement annealing", _vpr, 120),
    Workload("176.gcc", "pass pipeline over RTL buffer", _gcc, 55),
    Workload("177.mesa", "span interpolation (heap-heavy)", _mesa, 55),
    Workload("179.art", "neural resonance scan", _art, 100),
    Workload("181.mcf", "network simplex (all-defined)", _mcf, 130),
    Workload("183.equake", "CSR sparse matrix-vector", _equake, 40),
    Workload("186.crafty", "bitboard evaluation (bitwise)", _crafty, 55),
    Workload("188.ammp", "molecular dynamics records", _ammp, 150),
    Workload("197.parser", "tokenizer with the ppmatch bug", _parser, 160,
             has_true_bug=True),
    Workload("253.perlbmk", "bytecode interpreter (high %B)", _perlbmk, 130),
    Workload("254.gap", "arena allocator (high %F)", _gap, 140),
    Workload("255.vortex", "object store call chains", _vortex, 130),
    Workload("256.bzip2", "counting sort + RLE", _bzip2, 10),
    Workload("300.twolf", "annealing with LCG", _twolf, 100),
]

BY_NAME: Dict[str, Workload] = {w.name: w for w in WORKLOADS}


def workload(name: str) -> Workload:
    """Look up a workload by its SPEC-style name (e.g. ``"181.mcf"``)."""
    return BY_NAME[name]
