"""The permanent oracle-bred corpus: minimized ``.ir`` seeds as
first-class workloads.

The random generator draws program shapes from one distribution — and
the soundness bugs that actually shipped (seed 185) hid in shapes it
underweights.  Whenever a fuzz campaign minimizes a divergence, the
resulting ``.ir`` reproducer is the *distilled* shape that mattered;
``repro bench --promote`` lifts such reproducers into
``tests/data/corpus/`` where they load as permanent workloads for the
bench matrix and regression suites.

Each seed is pinned: ``manifest.json`` records, per base configuration,
the exact warned-uid set the committed pipeline produces, plus the
native ground truth.  The loader test
(``tests/integration/test_corpus_seeds.py``) re-derives all of it on
every run, so a behavior change on any bred shape is caught the moment
it lands.

Manifest shape (``repro.corpus/1``)::

    {"schema": "repro.corpus/1",
     "seeds": [{"name": ..., "file": ..., "origin": ...,
                "true_bugs": [...], "pinned": {"tl": [...], ...}}]}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: The four base configurations every corpus seed is pinned under
#: (differ spec names; see :func:`repro.oracle.differ.build_config`).
BASE_CONFIG_SPECS = ("tl", "tl_at", "opt_i", "full")

#: Manifest schema marker.
CORPUS_SCHEMA = "repro.corpus/1"

#: Environment override for the corpus directory.
CORPUS_ENV = "REPRO_CORPUS_DIR"

#: Manifest file name inside the corpus directory.
MANIFEST = "manifest.json"


class CorpusError(Exception):
    """A missing, malformed or internally inconsistent corpus."""


@dataclass(frozen=True)
class CorpusSeed:
    """One committed reproducer, loaded as a workload.

    ``pinned`` maps each base config spec to the exact warned-uid
    tuple the committed pipeline must reproduce; ``true_bugs`` is the
    native interpreter's ground truth.
    """

    name: str
    path: str
    origin: str
    true_bugs: Tuple[int, ...]
    pinned: Tuple[Tuple[str, Tuple[int, ...]], ...]

    @property
    def description(self) -> str:
        return self.origin

    def text(self) -> str:
        return Path(self.path).read_text()

    def pinned_warnings(self, spec: str) -> Tuple[int, ...]:
        return dict(self.pinned)[spec]


def default_corpus_dir() -> Optional[Path]:
    """Resolve the corpus directory: ``$REPRO_CORPUS_DIR``, then the
    repo-checkout location relative to this package, then the current
    working directory.  ``None`` when none of them exists."""
    env = os.environ.get(CORPUS_ENV)
    if env:
        return Path(env)
    checkout = Path(__file__).resolve().parents[3] / "tests" / "data" / "corpus"
    if checkout.is_dir():
        return checkout
    local = Path.cwd() / "tests" / "data" / "corpus"
    if local.is_dir():
        return local
    return None


def load_corpus(directory: "Optional[os.PathLike]" = None) -> List[CorpusSeed]:
    """Load every committed seed from the manifest, sorted by name.

    An absent directory (or manifest) is an empty corpus, not an
    error — fresh checkouts before the first promotion, and test
    sandboxes, simply have no bred seeds yet.  A *malformed* manifest
    or a manifest entry whose file is missing raises
    :class:`CorpusError`.
    """
    base = Path(directory) if directory is not None else default_corpus_dir()
    if base is None or not (base / MANIFEST).exists():
        return []
    try:
        data = json.loads((base / MANIFEST).read_text())
    except json.JSONDecodeError as error:
        raise CorpusError(f"{base / MANIFEST}: bad JSON ({error})")
    if data.get("schema") != CORPUS_SCHEMA:
        raise CorpusError(
            f"{base / MANIFEST}: unknown schema {data.get('schema')!r} "
            f"(expected {CORPUS_SCHEMA})"
        )
    seeds: List[CorpusSeed] = []
    for entry in data.get("seeds", []):
        try:
            name = entry["name"]
            path = base / entry["file"]
            pinned = tuple(
                (spec, tuple(int(u) for u in uids))
                for spec, uids in sorted(entry["pinned"].items())
            )
            seed = CorpusSeed(
                name=name,
                path=str(path),
                origin=entry.get("origin", ""),
                true_bugs=tuple(int(u) for u in entry["true_bugs"]),
                pinned=pinned,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CorpusError(f"{base / MANIFEST}: malformed entry ({error})")
        if not path.exists():
            raise CorpusError(f"{path}: listed in manifest but missing")
        missing = [s for s in BASE_CONFIG_SPECS if s not in dict(seed.pinned)]
        if missing:
            raise CorpusError(
                f"{name}: manifest lacks pinned warnings for {missing}"
            )
        seeds.append(seed)
    seeds.sort(key=lambda s: s.name)
    names = [s.name for s in seeds]
    if len(set(names)) != len(names):
        raise CorpusError(f"duplicate seed names in manifest: {names}")
    return seeds


def corpus_names(directory: "Optional[os.PathLike]" = None) -> List[str]:
    return [seed.name for seed in load_corpus(directory)]


def pin_text(text: str, name: str) -> Dict[str, object]:
    """Derive a seed's manifest payload from its IR text.

    Runs the committed pipeline: the module must parse, verify, pass
    the soundness oracle's contract diff under every base config
    (status ``ok``), and execute natively.  Returns ``{"true_bugs":
    [...], "pinned": {spec: [...]}}``.  Raises :class:`CorpusError`
    when the text diverges or cannot be executed — a reproducer that
    still bites must be *fixed*, not enshrined.
    """
    from repro.oracle.differ import build_config_matrix
    from repro.oracle.harness import _prepare_text, examine_text
    from repro.core import run_usher
    from repro.runtime import (
        RuntimeFault,
        StepLimitExceeded,
        run_instrumented,
        run_native,
    )

    matrix = build_config_matrix(list(BASE_CONFIG_SPECS))
    status, divergences = examine_text(text, name, matrix)
    if status == "divergent":
        details = "; ".join(d.describe() for d in divergences)
        raise CorpusError(
            f"{name}: still diverges under the committed pipeline "
            f"({details}) — fix the pipeline before promoting"
        )
    if status == "skipped":
        raise CorpusError(
            f"{name}: native run faulted or exceeded the step limit "
            "(no stable ground truth to pin)"
        )
    prepared = _prepare_text(text, name)
    try:
        native = run_native(prepared.module)
    except (StepLimitExceeded, RuntimeFault) as error:
        raise CorpusError(f"{name}: native run failed ({error})")
    pinned: Dict[str, List[int]] = {}
    for spec, config in matrix:
        plan = run_usher(prepared, config).plan
        report = run_instrumented(prepared.module, plan)
        pinned[spec] = sorted(report.warning_set())
    return {
        "true_bugs": sorted(native.true_bug_set()),
        "pinned": pinned,
    }


def write_manifest(
    directory: "os.PathLike", entries: List[Dict[str, object]]
) -> Path:
    """Write (replace) the manifest for ``entries``, sorted by name."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": CORPUS_SCHEMA,
        "seeds": sorted(entries, key=lambda e: e["name"]),
    }
    path = base / MANIFEST
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


__all__ = [
    "BASE_CONFIG_SPECS",
    "CORPUS_ENV",
    "CORPUS_SCHEMA",
    "MANIFEST",
    "CorpusError",
    "CorpusSeed",
    "corpus_names",
    "default_corpus_dir",
    "load_corpus",
    "pin_text",
    "write_manifest",
]
