"""CPU2006-style workload extensions: the program shapes the random
generator (and the SPEC2000 set) underweight.

The soundness oracle's history shows that Opt-level bugs hide in
specific *shapes* — seed 185 was a mask-preserving copy chain feeding a
bitwise op — so the bench matrix needs workloads that lean hard into
the under-represented ones.  Each program here is named after the
CPU2006 benchmark whose profile it mimics and stresses exactly one
shape:

=============  ====================================================
Benchmark      Shape stressed
=============  ====================================================
400.perlbench  **icall-heavy**: opcode handlers dispatched through
               *two* function-pointer tables, with handlers that take
               a further function value and call it — every hot call
               edge is indirect, so call-graph resolution (and the
               bound-icalls guard) carries the whole analysis
445.gobmk      **recursion-heavy**: game-tree search with mutually
               recursive evaluate/search over a fogged board — the
               call graph is cyclic, so context-sensitive resolution
               cannot unroll it and summaries must close the loop
456.hmmer      **deep-copy-chains**: Viterbi-style DP whose row
               values flow through long explicit copy chains (and a
               mask-preserving ``& -1``-free identity helper) before
               one consumer — exactly the chain class Opt I collapses
               and the seed-185 grouping bug lived in
473.astar      **recursion + pointer chains**: recursive region
               growth over heap node records reached via index
               arrays — long interprocedural pointer dereference
               chains under recursion
=============  ====================================================

Like the SPEC2000 set (:mod:`repro.workloads.spec`), every program
terminates, is memory-safe under the interpreter's clamping semantics,
emits checksums via ``output`` for semantic-equality diffing, and
contains **no** true undefined-value use.
"""

from __future__ import annotations

from typing import List

from repro.workloads.spec import Workload


def _perlbench(n: int) -> str:
    return f"""
// 400.perlbench: regex/opcode engine where *every* hot call is
// indirect.  Two dispatch tables (main ops and match ops); the main
// handlers receive a match-op function value and call it — nested
// indirect calls, the icall-heavy shape the generator underweights.
global executed;

def m_lit(c, p) {{ return (c == (p % 127)); }}
def m_any(c, p) {{ return (c % 2) == (p % 2); }}
def m_cls(c, p) {{ return (c % 7) < (p % 7) + 1; }}

def op_match(txt, pos, m, p) {{
  var hits = 0, k = 0;
  while (k < 4) {{
    if (m(txt[(pos + k) % 96], p + k)) {{ hits = hits + 1; }}
    k = k + 1;
  }}
  return hits;
}}

def op_skip(txt, pos, m, p) {{
  var k = 0;
  while (k < 6) {{
    if (m(txt[(pos + k) % 96], p)) {{ return pos + k; }}
    k = k + 1;
  }}
  return pos + 6;
}}

def op_count(txt, pos, m, p) {{
  var c = 0, k = 0;
  while (k < 8) {{
    c = c + m(txt[(pos * 2 + k) % 96], p + k);
    k = k + 1;
  }}
  return c;
}}

def main() {{
  var txt = malloc_array(96);          // fog: the subject string
  var i = 0;
  while (i < 96) {{ txt[i] = (i * 29 + 11) % 127; i = i + 1; }}
  var ops = malloc_array(3);
  ops[0] = op_match; ops[1] = op_skip; ops[2] = op_count;
  var matchers = malloc_array(3);
  matchers[0] = m_lit; matchers[1] = m_any; matchers[2] = m_cls;
  var pc = 0, acc = 0;
  while (pc < {n}) {{
    var op = ops[pc % 3];              // outer indirect dispatch
    var m = matchers[(pc / 3) % 3];    // inner function value threaded
    acc = (acc + op(txt, pc % 96, m, pc % 31)) % 65536;
    executed = executed + 1;
    pc = pc + 1;
  }}
  output(acc);
  output(executed);
  return 0;
}}
"""


def _gobmk(n: int) -> str:
    return f"""
// 445.gobmk: go-playing tree search.  evaluate() and search() are
// mutually recursive over a fogged board — a cyclic call graph that
// no finite call-string depth unrolls.
global board[64];
global nodes;

def evaluate(stones, depth, acc) {{
  var s = 0, k = 0;
  while (k < 4) {{
    s = s + stones[(acc + k * 7) % 32] + board[(acc + k) % 64];
    k = k + 1;
  }}
  if (depth > 0) {{
    if (s % 5 == 0) {{
      // quiescence: re-enter the search from the evaluator
      s = s + search(stones, depth - 1, acc + 1) % 13;
    }}
  }}
  return s % 10007;
}}

def search(stones, depth, acc) {{
  nodes = nodes + 1;
  if (depth == 0) {{ return evaluate(stones, 0, acc); }}
  var best = 0 - 99999;
  var move = 0;
  while (move < 3) {{
    var score = 0 - search(stones, depth - 1, acc + move * 3 + 1);
    if (score > best) {{ best = score; }}
    if (move == 1) {{
      var quiet = evaluate(stones, depth - 1, acc + move);
      if (quiet > best) {{ best = (best + quiet) / 2; }}
    }}
    move = move + 1;
  }}
  return best;
}}

def main() {{
  var i = 0;
  while (i < 64) {{ board[i] = (i * 37 + 5) % 81; i = i + 1; }}
  var stones = malloc_array(32);       // fog: captured-stone counts
  i = 0;
  while (i < 32) {{ stones[i] = (i * 13) % 9; i = i + 1; }}
  var game = 0, total = 0;
  while (game < {n}) {{
    total = (total + search(stones, 3, game)) % 100003;
    board[game % 64] = (board[game % 64] + total) % 81;
    game = game + 1;
  }}
  output(total);
  output(nodes);
  return 0;
}}
"""


def _hmmer(n: int) -> str:
    return f"""
// 456.hmmer: profile-HMM Viterbi recurrence whose cell values travel
// through *long explicit copy chains* (and an identity helper) before
// the one consumer — the deep-copy-chain shape Opt I must collapse
// without spreading the source conjunction (the seed-185 bug class).
global iterations;

def relay(v) {{
  var r1 = v;
  var r2 = r1;
  var r3 = r2;
  return r3;
}}

def max2(a, b) {{ if (a > b) {{ return a; }} return b; }}

def main() {{
  var seq = malloc_array(48);          // fog: the query sequence
  var i = 0;
  while (i < 48) {{ seq[i] = (i * 23 + 2) % 25; i = i + 1; }}
  var prev = calloc_array(16);         // DP rows: defined traffic
  var cur = calloc_array(16);
  var row = 0, score = 0;
  while (row < {n}) {{
    var j = 1;
    while (j < 16) {{
      // the match value flows m1 -> m2 -> m3 -> relay() -> m before use
      var m1 = prev[j - 1] + seq[(row + j) % 48];
      var m2 = m1;
      var m3 = m2;
      var m = relay(m3);
      var d1 = cur[j - 1] - 3;
      var d2 = d1;
      var ins = prev[j] - 1;
      var best = max2(relay(d2), max2(m, ins));
      cur[j] = best % 4096;
      j = j + 1;
    }}
    // roll the rows: another whole-row copy chain
    j = 0;
    while (j < 16) {{
      var c1 = cur[j];
      var c2 = c1;
      prev[j] = c2;
      j = j + 1;
    }}
    score = (score + prev[15]) % 65536;
    iterations = iterations + 1;
    row = row + 1;
  }}
  output(score);
  output(iterations);
  return 0;
}}
"""


def _astar(n: int) -> str:
    return f"""
// 473.astar: recursive region growth over heap node records reached
// through an index array — interprocedural pointer dereference chains
// under direct recursion, with per-node heap records (fog via the
// shared make_node call sites).
global visits;

def make_node(id, cost) {{
  var node = malloc(3);
  node[0] = id;
  node[1] = cost;
  node[2] = 0;                 // accumulated path cost
  return node;
}}

def grow(nodes, idx, depth, budget) {{
  visits = visits + 1;
  var node = nodes[idx % 24];
  var here = node[1] + budget % 7;
  node[2] = (node[2] + here) % 10007;
  if (depth == 0) {{ return here; }}
  var total = here;
  var dir = 0;
  while (dir < 2) {{
    var next = (idx * 5 + dir * 3 + 1) % 24;
    var child = nodes[next];
    if (child[1] < here + budget) {{
      total = total + grow(nodes, next, depth - 1, budget - 1) % 997;
    }}
    dir = dir + 1;
  }}
  return total;
}}

def main() {{
  var nodes = calloc_array(24);
  var i = 0;
  while (i < 24) {{
    nodes[i] = make_node(i, (i * 31 + 3) % 50);
    i = i + 1;
  }}
  var wave = 0, found = 0;
  while (wave < {n}) {{
    found = (found + grow(nodes, wave % 24, 4, 9)) % 100019;
    wave = wave + 1;
  }}
  var sum = 0;
  i = 0;
  while (i < 24) {{
    var probe = nodes[i];
    sum = (sum + probe[2]) % 100019;
    i = i + 1;
  }}
  output(found);
  output(sum);
  output(visits);
  return 0;
}}
"""


#: The four CPU2006-style extension workloads, in SPEC numbering order.
CPU2006_WORKLOADS: List[Workload] = [
    Workload("400.perlbench", "nested indirect-dispatch regex engine",
             _perlbench, 120),
    Workload("445.gobmk", "mutually recursive game-tree search", _gobmk, 20),
    Workload("456.hmmer", "Viterbi DP over deep copy chains", _hmmer, 60),
    Workload("473.astar", "recursive region growth over heap records",
             _astar, 40),
]
