"""TinyC front-end: lexer, parser and AST-to-IR lowering.

TinyC is the paper's C subset (Figure 1), extended with records, arrays,
function pointers and structured control flow so that realistic whole
programs — including the 15 SPEC-shaped workloads — can be written in it.
"""

from repro.tinyc.lexer import TinyCSyntaxError, Token, tokenize
from repro.tinyc.lowering import LoweringError, compile_source, lower_program
from repro.tinyc.parser import parse

__all__ = [
    "TinyCSyntaxError",
    "Token",
    "tokenize",
    "LoweringError",
    "compile_source",
    "lower_program",
    "parse",
]
