"""Recursive-descent / Pratt parser for TinyC.

Grammar (EBNF)::

    program     := (global_decl | func_def)*
    global_decl := "global" ["uninit"] IDENT [aggregate] ";"
    aggregate   := "[" NUMBER "]" | "{" NUMBER "}"
    func_def    := "def" IDENT "(" [IDENT ("," IDENT)*] ")" block
    block       := "{" stmt* "}"
    stmt        := "var" var_decl ("," var_decl)* ";"
                 | "if" "(" expr ")" block ["else" (block | if_stmt)]
                 | "while" "(" expr ")" block
                 | "break" ";" | "continue" ";"
                 | "return" [expr] ";"
                 | "output" "(" expr ")" ";"
                 | "skip" ";"
                 | lvalue "=" expr ";"
                 | expr ";"
    var_decl    := IDENT [aggregate] ["=" expr]
    lvalue      := IDENT | "*" unary | postfix "[" expr "]"

Expressions use standard C precedence: ``||`` < ``&&`` < ``|`` < ``^`` <
``&`` < equality < relational < shifts < additive < multiplicative <
unary (``- ! ~ * &``) < postfix (call, index).
"""

from __future__ import annotations

from typing import List, Optional

from repro.tinyc import ast
from repro.tinyc.lexer import Token, TinyCSyntaxError, tokenize

_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


def parse(source: str) -> ast.Program:
    """Parse TinyC source text into an AST."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tok
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._tok
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            tok = self._tok
            want = text if text is not None else kind
            raise TinyCSyntaxError(
                f"expected {want!r}, found {tok.text!r}", tok.line, tok.col
            )
        return self._advance()

    def _error(self, message: str) -> TinyCSyntaxError:
        tok = self._tok
        return TinyCSyntaxError(message, tok.line, tok.col)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program(line=1)
        while not self._check("eof"):
            if self._check("keyword", "global"):
                program.globals.append(self._global_decl())
            elif self._check("keyword", "def"):
                program.functions.append(self._func_def())
            else:
                raise self._error(
                    f"expected 'global' or 'def', found {self._tok.text!r}"
                )
        return program

    def _aggregate(self) -> "tuple[int, bool]":
        """Parse an optional ``[N]`` or ``{N}`` suffix."""
        if self._accept("op", "["):
            size = int(self._expect("number").text)
            self._expect("op", "]")
            return max(size, 1), True
        if self._accept("op", "{"):
            size = int(self._expect("number").text)
            self._expect("op", "}")
            return max(size, 1), False
        return 1, False

    def _global_decl(self) -> ast.GlobalDecl:
        start = self._expect("keyword", "global")
        initialized = not self._accept("keyword", "uninit")
        name = self._expect("ident").text
        num_fields, is_array = self._aggregate()
        self._expect("op", ";")
        return ast.GlobalDecl(
            line=start.line,
            name=name,
            num_fields=num_fields,
            is_array=is_array,
            initialized=initialized,
        )

    def _func_def(self) -> ast.FuncDef:
        start = self._expect("keyword", "def")
        name = self._expect("ident").text
        self._expect("op", "(")
        params: List[str] = []
        if not self._check("op", ")"):
            params.append(self._expect("ident").text)
            while self._accept("op", ","):
                params.append(self._expect("ident").text)
        self._expect("op", ")")
        body = self._block()
        return ast.FuncDef(line=start.line, name=name, params=params, body=body)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _block(self) -> List[ast.Node]:
        self._expect("op", "{")
        stmts: List[ast.Node] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise self._error("unterminated block")
            stmts.append(self._statement())
        self._expect("op", "}")
        return stmts

    def _statement(self) -> ast.Node:
        tok = self._tok
        if self._check("keyword", "var"):
            return self._var_stmt()
        if self._check("keyword", "if"):
            return self._if_stmt()
        if self._check("keyword", "while"):
            self._advance()
            self._expect("op", "(")
            cond = self._expression()
            self._expect("op", ")")
            body = self._block()
            return ast.WhileStmt(line=tok.line, cond=cond, body=body)
        if self._accept("keyword", "break"):
            self._expect("op", ";")
            return ast.BreakStmt(line=tok.line)
        if self._accept("keyword", "continue"):
            self._expect("op", ";")
            return ast.ContinueStmt(line=tok.line)
        if self._accept("keyword", "return"):
            value = None if self._check("op", ";") else self._expression()
            self._expect("op", ";")
            return ast.ReturnStmt(line=tok.line, value=value)
        if self._accept("keyword", "output"):
            self._expect("op", "(")
            value = self._expression()
            self._expect("op", ")")
            self._expect("op", ";")
            return ast.OutputStmt(line=tok.line, value=value)
        if self._accept("keyword", "skip"):
            self._expect("op", ";")
            return ast.SkipStmt(line=tok.line)
        # Assignment or expression statement.
        expr = self._expression()
        if self._accept("op", "="):
            value = self._expression()
            self._expect("op", ";")
            self._check_lvalue(expr)
            return ast.AssignStmt(line=tok.line, target=expr, value=value)
        self._expect("op", ";")
        return ast.ExprStmt(line=tok.line, expr=expr)

    def _check_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.NameExpr, ast.DerefExpr, ast.IndexExpr)):
            return
        raise TinyCSyntaxError(
            "assignment target must be a name, *pointer or element",
            expr.line,
            0,
        )

    def _var_stmt(self) -> ast.VarStmt:
        start = self._expect("keyword", "var")
        decls: List[ast.VarDecl] = []
        while True:
            name_tok = self._expect("ident")
            num_fields, is_array = self._aggregate()
            init = None
            if self._accept("op", "="):
                if num_fields > 1 or is_array:
                    raise self._error("aggregates cannot have initializers")
                init = self._expression()
            decls.append(
                ast.VarDecl(
                    line=name_tok.line,
                    name=name_tok.text,
                    init=init,
                    num_fields=num_fields,
                    is_array=is_array,
                )
            )
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        return ast.VarStmt(line=start.line, decls=decls)

    def _if_stmt(self) -> ast.IfStmt:
        start = self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self._expression()
        self._expect("op", ")")
        then_body = self._block()
        else_body: List[ast.Node] = []
        if self._accept("keyword", "else"):
            if self._check("keyword", "if"):
                else_body = [self._if_stmt()]
            else:
                else_body = self._block()
        return ast.IfStmt(
            line=start.line, cond=cond, then_body=then_body, else_body=else_body
        )

    # ------------------------------------------------------------------
    # Expressions (Pratt)
    # ------------------------------------------------------------------
    def _expression(self, min_prec: int = 1) -> ast.Expr:
        lhs = self._unary()
        while True:
            tok = self._tok
            if tok.kind != "op":
                break
            prec = _BINARY_PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                break
            self._advance()
            rhs = self._expression(prec + 1)
            if tok.text in ("&&", "||"):
                lhs = ast.ShortCircuitExpr(
                    line=tok.line, op=tok.text, lhs=lhs, rhs=rhs
                )
            else:
                lhs = ast.BinaryExpr(line=tok.line, op=tok.text, lhs=lhs, rhs=rhs)
        return lhs

    def _unary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind == "op" and tok.text in ("-", "!", "~"):
            self._advance()
            operand = self._unary()
            return ast.UnaryExpr(line=tok.line, op=tok.text, operand=operand)
        if self._accept("op", "*"):
            pointer = self._unary()
            return ast.DerefExpr(line=tok.line, pointer=pointer)
        if self._accept("op", "&"):
            name = self._expect("ident").text
            return ast.AddrOfExpr(line=tok.line, name=name)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            tok = self._tok
            if self._accept("op", "("):
                args: List[ast.Expr] = []
                if not self._check("op", ")"):
                    args.append(self._expression())
                    while self._accept("op", ","):
                        args.append(self._expression())
                self._expect("op", ")")
                expr = ast.CallExpr(line=tok.line, callee=expr, args=args)
            elif self._accept("op", "["):
                index = self._expression()
                self._expect("op", "]")
                expr = ast.IndexExpr(line=tok.line, base=expr, index=index)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind == "number":
            self._advance()
            return ast.NumberExpr(line=tok.line, value=int(tok.text))
        if tok.kind == "ident":
            self._advance()
            return ast.NameExpr(line=tok.line, name=tok.text)
        if tok.kind == "keyword" and tok.text in (
            "malloc",
            "calloc",
            "malloc_array",
            "calloc_array",
        ):
            self._advance()
            self._expect("op", "(")
            size = int(self._expect("number").text)
            self._expect("op", ")")
            return ast.AllocExpr(
                line=tok.line,
                initialized=tok.text.startswith("calloc"),
                is_array=tok.text.endswith("_array"),
                num_fields=max(size, 1),
            )
        if self._accept("op", "("):
            expr = self._expression()
            self._expect("op", ")")
            return expr
        raise self._error(f"expected an expression, found {tok.text!r}")
