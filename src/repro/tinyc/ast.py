"""Abstract syntax tree for the TinyC surface language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    """Base AST node with the source line it starts on."""

    line: int


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class NumberExpr(Node):
    value: int


@dataclass
class NameExpr(Node):
    """A variable, global or function name in expression position."""

    name: str


@dataclass
class UnaryExpr(Node):
    op: str  # "-", "!", "~"
    operand: "Expr"


@dataclass
class BinaryExpr(Node):
    op: str
    lhs: "Expr"
    rhs: "Expr"


@dataclass
class ShortCircuitExpr(Node):
    op: str  # "&&" or "||"
    lhs: "Expr"
    rhs: "Expr"


@dataclass
class DerefExpr(Node):
    """``*e`` — load through a pointer expression."""

    pointer: "Expr"


@dataclass
class AddrOfExpr(Node):
    """``&name`` — address of a local, global or function."""

    name: str


@dataclass
class IndexExpr(Node):
    """``e[i]`` — field (constant index) or array (any index) access."""

    base: "Expr"
    index: "Expr"


@dataclass
class AllocExpr(Node):
    """``malloc(N)`` / ``calloc(N)`` / ``malloc_array(N)`` / ``calloc_array(N)``.

    ``initialized`` distinguishes ``calloc`` (alloc_T) from ``malloc``
    (alloc_F); ``is_array`` collapses fields (arrays as a whole).
    """

    initialized: bool
    is_array: bool
    num_fields: int


@dataclass
class CallExpr(Node):
    """``f(args)`` — direct if ``callee`` names a function, else indirect
    through the pointer expression."""

    callee: "Expr"
    args: List["Expr"]


Expr = Node  # all expression classes derive from Node


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class VarDecl(Node):
    """One declarator of a ``var`` statement.

    Scalars: ``var x;`` / ``var x = e;``.  Aggregates: ``var a[8];`` (local
    array) and ``var r{3};`` (local record with 3 fields).  Like C stack
    locals, their storage starts undefined.
    """

    name: str
    init: Optional[Expr] = None
    num_fields: int = 1
    is_array: bool = False


@dataclass
class VarStmt(Node):
    decls: List[VarDecl] = field(default_factory=list)


@dataclass
class AssignStmt(Node):
    """``lvalue = e``; lvalue is a name, ``*e`` or ``e[i]``."""

    target: Expr
    value: Expr


@dataclass
class IfStmt(Node):
    cond: Expr
    then_body: List[Node]
    else_body: List[Node] = field(default_factory=list)


@dataclass
class WhileStmt(Node):
    cond: Expr
    body: List[Node] = field(default_factory=list)


@dataclass
class BreakStmt(Node):
    pass


@dataclass
class ContinueStmt(Node):
    pass


@dataclass
class ReturnStmt(Node):
    value: Optional[Expr] = None


@dataclass
class OutputStmt(Node):
    value: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStmt(Node):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class SkipStmt(Node):
    pass


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
@dataclass
class GlobalDecl(Node):
    """``global g;`` / ``global a[N];`` / ``global r{N};``.

    C default-initializes globals, so they are defined unless declared
    ``global uninit g;`` (an escape hatch for testing undefined global
    reads, mirroring e.g. heap-reused BSS tricks).
    """

    name: str
    num_fields: int = 1
    is_array: bool = False
    initialized: bool = True


@dataclass
class FuncDef(Node):
    name: str
    params: List[str] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)


@dataclass
class Program(Node):
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
