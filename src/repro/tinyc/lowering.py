"""Lowering of the TinyC AST to the IR.

The lowering is deliberately naive, mirroring what clang emits at ``-O0``:
**every** local variable and every parameter is spilled to a stack slot
(an ``alloc_F``), and all accesses go through loads and stores.  The
``mem2reg`` pass (:mod:`repro.opt.mem2reg`) later promotes the slots whose
address is never taken into top-level virtual registers, which is exactly
the paper's ``O0+IM`` pipeline (Section 4.1).

Semantics notes (documented substitutions for C undefined behaviour so the
interpreter is total):

- Integer division/modulo by zero evaluates to 0.
- Out-of-range element indices are clamped to the object bounds.
- A function that falls off its end returns the defined value 0.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.builder import IRBuilder
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.module import Module
from repro.ir.values import Const, Value, Var
from repro.tinyc import ast
from repro.tinyc.parser import parse


class LoweringError(Exception):
    """A semantic error found while lowering (undeclared names etc.)."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


def compile_source(source: str, name: str = "module") -> Module:
    """Parse and lower TinyC source text to an IR module."""
    return lower_program(parse(source), name)


def lower_program(program: ast.Program, name: str = "module") -> Module:
    """Lower a parsed TinyC program to an IR module."""
    builder = IRBuilder()
    builder.module.name = name
    func_names = {f.name for f in program.functions}
    for decl in program.globals:
        if decl.name in builder.module.globals:
            raise LoweringError(f"duplicate global {decl.name!r}", decl.line)
        builder.add_global(
            decl.name,
            initialized=decl.initialized,
            size=decl.num_fields,
            is_array=decl.is_array,
        )
    seen = set()
    for func in program.functions:
        if func.name in seen:
            raise LoweringError(f"duplicate function {func.name!r}", func.line)
        seen.add(func.name)
        _FunctionLowerer(builder, func, func_names).lower()
    module = builder.finish()
    for function in module.functions.values():
        remove_unreachable_blocks(function)
    module.assign_uids()
    return module


class _LocalSlot:
    """A stack slot backing one source-level local or parameter."""

    def __init__(self, pointer: Var, is_aggregate: bool) -> None:
        self.pointer = pointer
        self.is_aggregate = is_aggregate


class _FunctionLowerer:
    def __init__(
        self, builder: IRBuilder, func: ast.FuncDef, func_names: "set[str]"
    ) -> None:
        self.b = builder
        self.func = func
        self.func_names = func_names
        self.slots: Dict[str, _LocalSlot] = {}
        # (continue target, break target) labels of enclosing loops.
        self.loop_stack: List[Tuple[str, str]] = []

    def lower(self) -> None:
        func = self.func
        self.b.current_line = func.line
        self.b.start_function(func.name, func.params)
        for decl in self._collect_decls(func.body):
            self._declare_local(decl)
        for param in func.params:
            if param in self.slots:
                raise LoweringError(
                    f"parameter {param!r} redeclared as local", func.line
                )
            slot = self.b.fresh_temp(f"{param}.addr")
            self.b.alloc(slot, f"{func.name}::{param}", initialized=False)
            self.b.store(slot, Var(param))
            self.slots[param] = _LocalSlot(slot, is_aggregate=False)
        self._lower_body(func.body)
        if not self.b.block.terminated:
            self.b.ret(Const(0))

    def _collect_decls(self, stmts: List[ast.Node]) -> List[ast.VarDecl]:
        """All var declarations in the function, in source order."""
        decls: List[ast.VarDecl] = []
        for stmt in stmts:
            if isinstance(stmt, ast.VarStmt):
                decls.extend(stmt.decls)
            elif isinstance(stmt, ast.IfStmt):
                decls.extend(self._collect_decls(stmt.then_body))
                decls.extend(self._collect_decls(stmt.else_body))
            elif isinstance(stmt, ast.WhileStmt):
                decls.extend(self._collect_decls(stmt.body))
        return decls

    def _declare_local(self, decl: ast.VarDecl) -> None:
        if decl.name in self.slots:
            raise LoweringError(f"duplicate local {decl.name!r}", decl.line)
        if decl.name in self.func.params:
            raise LoweringError(
                f"local {decl.name!r} shadows a parameter", decl.line
            )
        slot = self.b.fresh_temp(f"{decl.name}.addr")
        aggregate = decl.num_fields > 1 or decl.is_array
        self.b.alloc(
            slot,
            f"{self.func.name}::{decl.name}",
            initialized=False,
            size=decl.num_fields,
            is_array=decl.is_array,
        )
        self.slots[decl.name] = _LocalSlot(slot, is_aggregate=aggregate)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _lower_body(self, stmts: List[ast.Node]) -> None:
        for stmt in stmts:
            if self.b.block.terminated:
                # Unreachable code after break/continue/return: keep
                # lowering into a dead block; it is pruned afterwards.
                self.b.position_at(self.b.new_block("dead"))
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Node) -> None:
        self.b.current_line = stmt.line
        if isinstance(stmt, ast.VarStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    value = self._rvalue(decl.init)
                    self.b.store(self.slots[decl.name].pointer, value)
        elif isinstance(stmt, ast.AssignStmt):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise LoweringError("break outside a loop", stmt.line)
            self.b.jump(self.loop_stack[-1][1])
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise LoweringError("continue outside a loop", stmt.line)
            self.b.jump(self.loop_stack[-1][0])
        elif isinstance(stmt, ast.ReturnStmt):
            value = (
                self._rvalue(stmt.value) if stmt.value is not None else Const(0)
            )
            self.b.ret(value)
        elif isinstance(stmt, ast.OutputStmt):
            self.b.output(self._rvalue(stmt.value))
        elif isinstance(stmt, ast.ExprStmt):
            self._rvalue(stmt.expr, want_result=False)
        elif isinstance(stmt, ast.SkipStmt):
            pass
        else:
            raise LoweringError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _lower_assign(self, stmt: ast.AssignStmt) -> None:
        target = stmt.target
        if isinstance(target, ast.NameExpr):
            slot = self.slots.get(target.name)
            if slot is not None:
                if slot.is_aggregate:
                    raise LoweringError(
                        f"cannot assign whole aggregate {target.name!r}",
                        stmt.line,
                    )
                value = self._rvalue(stmt.value)
                self.b.store(slot.pointer, value)
                return
            if target.name in self.b.module.globals:
                glob = self.b.module.globals[target.name]
                if glob.size > 1 or glob.is_array:
                    raise LoweringError(
                        f"cannot assign whole aggregate {target.name!r}",
                        stmt.line,
                    )
                value = self._rvalue(stmt.value)
                addr = self.b.fresh_temp("g")
                self.b.global_addr(addr, target.name)
                self.b.store(addr, value)
                return
            raise LoweringError(f"undeclared name {target.name!r}", stmt.line)
        if isinstance(target, ast.DerefExpr):
            pointer = self._rvalue(target.pointer)
            value = self._rvalue(stmt.value)
            self.b.store(pointer, value)
            return
        if isinstance(target, ast.IndexExpr):
            addr = self._element_addr(target)
            value = self._rvalue(stmt.value)
            self.b.store(addr, value)
            return
        raise LoweringError("bad assignment target", stmt.line)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self._rvalue(stmt.cond)
        then_block = self.b.new_block("then")
        join_block = self.b.new_block("join")
        else_block = self.b.new_block("else") if stmt.else_body else join_block
        self.b.branch(cond, then_block.label, else_block.label)

        self.b.position_at(then_block)
        self._lower_body(stmt.then_body)
        if not self.b.block.terminated:
            self.b.jump(join_block.label)

        if stmt.else_body:
            self.b.position_at(else_block)
            self._lower_body(stmt.else_body)
            if not self.b.block.terminated:
                self.b.jump(join_block.label)

        self.b.position_at(join_block)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        head = self.b.new_block("loop")
        body = self.b.new_block("body")
        exit_block = self.b.new_block("endloop")
        self.b.jump(head.label)

        self.b.position_at(head)
        cond = self._rvalue(stmt.cond)
        self.b.branch(cond, body.label, exit_block.label)

        self.b.position_at(body)
        self.loop_stack.append((head.label, exit_block.label))
        self._lower_body(stmt.body)
        self.loop_stack.pop()
        if not self.b.block.terminated:
            self.b.jump(head.label)

        self.b.position_at(exit_block)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _rvalue(self, expr: ast.Expr, want_result: bool = True) -> Value:
        """Lower ``expr``; return the value (a Const or a fresh temp)."""
        if isinstance(expr, ast.NumberExpr):
            return Const(expr.value)
        if isinstance(expr, ast.NameExpr):
            return self._name_value(expr)
        if isinstance(expr, ast.UnaryExpr):
            operand = self._rvalue(expr.operand)
            dst = self.b.fresh_temp()
            return self.b.unop(dst, expr.op, operand)
        if isinstance(expr, ast.BinaryExpr):
            lhs = self._rvalue(expr.lhs)
            rhs = self._rvalue(expr.rhs)
            dst = self.b.fresh_temp()
            return self.b.binop(dst, expr.op, lhs, rhs)
        if isinstance(expr, ast.ShortCircuitExpr):
            return self._short_circuit(expr)
        if isinstance(expr, ast.DerefExpr):
            pointer = self._rvalue(expr.pointer)
            dst = self.b.fresh_temp()
            return self.b.load(dst, pointer)
        if isinstance(expr, ast.AddrOfExpr):
            return self._addr_of(expr)
        if isinstance(expr, ast.IndexExpr):
            addr = self._element_addr(expr)
            dst = self.b.fresh_temp()
            return self.b.load(dst, addr)
        if isinstance(expr, ast.AllocExpr):
            dst = self.b.fresh_temp("h")
            self.b.alloc(
                dst,
                obj_name=f"{self.func.name}::heap@{expr.line}.{self.b.fresh_obj('')}",
                initialized=expr.initialized,
                kind="heap",
                size=expr.num_fields,
                is_array=expr.is_array,
            )
            return dst
        if isinstance(expr, ast.CallExpr):
            return self._call(expr, want_result)
        raise LoweringError(f"unhandled expression {type(expr).__name__}", expr.line)

    def _name_value(self, expr: ast.NameExpr) -> Value:
        slot = self.slots.get(expr.name)
        if slot is not None:
            if slot.is_aggregate:
                # Array/record decay: the name is the object's address.
                return slot.pointer
            dst = self.b.fresh_temp()
            return self.b.load(dst, slot.pointer)
        if expr.name in self.b.module.globals:
            glob = self.b.module.globals[expr.name]
            addr = self.b.fresh_temp("g")
            self.b.global_addr(addr, expr.name)
            if glob.size > 1 or glob.is_array:
                return addr
            dst = self.b.fresh_temp()
            return self.b.load(dst, addr)
        if expr.name in self.func_names:
            dst = self.b.fresh_temp("fp")
            return self.b.func_addr(dst, expr.name)
        raise LoweringError(f"undeclared name {expr.name!r}", expr.line)

    def _addr_of(self, expr: ast.AddrOfExpr) -> Value:
        slot = self.slots.get(expr.name)
        if slot is not None:
            return slot.pointer
        if expr.name in self.b.module.globals:
            dst = self.b.fresh_temp("g")
            return self.b.global_addr(dst, expr.name)
        if expr.name in self.func_names:
            dst = self.b.fresh_temp("fp")
            return self.b.func_addr(dst, expr.name)
        raise LoweringError(f"undeclared name {expr.name!r}", expr.line)

    def _element_addr(self, expr: ast.IndexExpr) -> Value:
        base = self._rvalue(expr.base)
        offset = self._rvalue(expr.index)
        dst = self.b.fresh_temp("e")
        return self.b.gep(dst, base, offset)

    def _short_circuit(self, expr: ast.ShortCircuitExpr) -> Value:
        """Lower ``&&`` / ``||`` with control flow.

        The result temp is assigned on both paths; SSA construction later
        inserts the φ.
        """
        result = self.b.fresh_temp("sc")
        lhs = self._rvalue(expr.lhs)
        rhs_block = self.b.new_block("sc_rhs")
        short_block = self.b.new_block("sc_short")
        join_block = self.b.new_block("sc_join")
        if expr.op == "&&":
            self.b.branch(lhs, rhs_block.label, short_block.label)
            short_value = Const(0)
        else:
            self.b.branch(lhs, short_block.label, rhs_block.label)
            short_value = Const(1)

        self.b.position_at(rhs_block)
        rhs = self._rvalue(expr.rhs)
        coerced = self.b.fresh_temp("sc")
        self.b.binop(coerced, "!=", rhs, Const(0))
        self.b.copy(result, coerced)
        self.b.jump(join_block.label)

        self.b.position_at(short_block)
        self.b.copy(result, short_value)
        self.b.jump(join_block.label)

        self.b.position_at(join_block)
        return result

    def _call(self, expr: ast.CallExpr, want_result: bool) -> Value:
        args = [self._rvalue(a) for a in expr.args]
        callee = expr.callee
        dst = self.b.fresh_temp("r") if want_result else None
        if isinstance(callee, ast.NameExpr) and callee.name in self.func_names:
            if callee.name not in self.slots:
                self.b.call(dst, callee.name, args)
                return dst if dst is not None else Const(0)
        if isinstance(callee, ast.DerefExpr):
            # ``(*f)(args)`` — the deref is a no-op on function pointers.
            callee = callee.pointer
        pointer = self._rvalue(callee)
        if isinstance(pointer, Const):
            raise LoweringError("cannot call a constant", expr.line)
        self.b.call(dst, pointer, args)
        return dst if dst is not None else Const(0)
