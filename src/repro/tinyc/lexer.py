"""Lexer for the TinyC surface language.

TinyC is the C subset the paper formalises (Figure 1), grown just enough to
write realistic whole programs: functions, globals, records and arrays,
pointers, heap allocation, arithmetic/logic expressions, ``if``/``while``
control flow and an ``output`` statement standing in for externally
observable writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset(
    {
        "def",
        "global",
        "uninit",
        "var",
        "if",
        "else",
        "while",
        "break",
        "continue",
        "return",
        "output",
        "skip",
        "malloc",
        "calloc",
        "malloc_array",
        "calloc_array",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~",
    "&", "|", "^", "(", ")", "{", "}", "[", "]", ",", ";",
)


class TinyCSyntaxError(Exception):
    """A lexical or syntactic error, carrying source position."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "ident" | "keyword" | "op" | "eof"
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, raising :class:`TinyCSyntaxError` on bad input."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise TinyCSyntaxError(
                    "unterminated block comment", start_line, start_col
                )
            advance(2)
            continue
        if ch.isdigit():
            start = i
            start_line, start_col = line, col
            while i < n and source[i].isdigit():
                advance(1)
            if i < n and (source[i].isalpha() or source[i] == "_"):
                raise TinyCSyntaxError(
                    f"bad number suffix {source[i]!r}", line, col
                )
            yield Token("number", source[start:i], start_line, start_col)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, start_line, start_col)
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                start_line, start_col = line, col
                advance(len(op))
                yield Token("op", op, start_line, start_col)
                break
        else:
            raise TinyCSyntaxError(f"unexpected character {ch!r}", line, col)
    yield Token("eof", "", line, col)
