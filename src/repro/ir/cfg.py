"""Control-flow graph utilities over IR functions."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function


class CFG:
    """Predecessor/successor maps and traversal orders for one function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.succs: Dict[str, List[str]] = {}
        self.preds: Dict[str, List[str]] = {}
        for block in function.blocks:
            self.succs[block.label] = []
            self.preds.setdefault(block.label, [])
        for block in function.blocks:
            for succ in block.successors():
                if succ not in self.succs:
                    raise ValueError(
                        f"{function.name}: branch to unknown block {succ!r}"
                    )
                self.succs[block.label].append(succ)
                self.preds[succ].append(block.label)

    @property
    def entry(self) -> str:
        return self.function.entry.label

    def reachable(self) -> Set[str]:
        """Labels of blocks reachable from the entry."""
        seen: Set[str] = set()
        stack = [self.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.succs[label])
        return seen

    def postorder(self) -> List[str]:
        """Postorder over reachable blocks (iterative DFS)."""
        seen: Set[str] = set()
        order: List[str] = []
        stack: List[tuple] = [(self.entry, iter(self.succs[self.entry]))]
        seen.add(self.entry)
        while stack:
            label, children = stack[-1]
            advanced = False
            for child in children:
                if child not in seen:
                    seen.add(child)
                    stack.append((child, iter(self.succs[child])))
                    advanced = True
                    break
            if not advanced:
                order.append(label)
                stack.pop()
        return order

    def reverse_postorder(self) -> List[str]:
        return list(reversed(self.postorder()))


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks unreachable from the entry; return how many."""
    cfg = CFG(function)
    reachable = cfg.reachable()
    dead = [b.label for b in function.blocks if b.label not in reachable]
    for label in dead:
        function.remove_block(label)
    return len(dead)
