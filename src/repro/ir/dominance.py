"""Dominator trees and dominance frontiers.

Implements the Cooper-Harvey-Kennedy iterative dominance algorithm, which
is simple and fast in practice, plus the standard dominance-frontier
computation used for SSA φ placement (Cytron et al.).

The paper relies on CFG dominance twice: semi-strong updates require the
allocation site to dominate the store (Section 3.2), and redundant check
elimination requires one critical statement to dominate another
(Algorithm 1, line 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import Instr


class DominatorTree:
    """Immediate dominators, dominance queries and dominance frontiers."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.cfg = CFG(function)
        self.idom: Dict[str, Optional[str]] = {}
        self._rpo_index: Dict[str, int] = {}
        self._compute_idoms()
        self.frontier: Dict[str, Set[str]] = self._compute_frontiers()
        self.children: Dict[str, List[str]] = {label: [] for label in self.idom}
        for label, parent in self.idom.items():
            if parent is not None and parent != label:
                self.children[parent].append(label)
        self._depth: Dict[str, int] = {}
        self._compute_depths()

    def _compute_idoms(self) -> None:
        rpo = self.cfg.reverse_postorder()
        self._rpo_index = {label: i for i, label in enumerate(rpo)}
        entry = self.cfg.entry
        idom: Dict[str, Optional[str]] = {label: None for label in rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == entry:
                    continue
                new_idom: Optional[str] = None
                for pred in self.cfg.preds[label]:
                    if pred not in self._rpo_index or idom.get(pred) is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(new_idom, pred, idom)
                if new_idom is not None and idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True
        self.idom = idom

    def _intersect(
        self, a: str, b: str, idom: Dict[str, Optional[str]]
    ) -> str:
        index = self._rpo_index
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    def _compute_frontiers(self) -> Dict[str, Set[str]]:
        frontier: Dict[str, Set[str]] = {label: set() for label in self.idom}
        for label in self.idom:
            preds = [p for p in self.cfg.preds[label] if p in self._rpo_index]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner != self.idom[label] and runner is not None:
                    frontier[runner].add(label)
                    runner = self.idom[runner]
        return frontier

    def _compute_depths(self) -> None:
        entry = self.cfg.entry
        self._depth[entry] = 0
        stack = [entry]
        while stack:
            label = stack.pop()
            for child in self.children.get(label, []):
                self._depth[child] = self._depth[label] + 1
                stack.append(child)

    def dominates(self, a: str, b: str) -> bool:
        """Whether block ``a`` dominates block ``b`` (reflexively)."""
        if a not in self._depth or b not in self._depth:
            return False
        while self._depth.get(b, -1) > self._depth[a]:
            b = self.idom[b]  # type: ignore[assignment]
        return a == b

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def instr_dominates(self, a: Instr, b: Instr) -> bool:
        """Whether instruction ``a`` dominates instruction ``b``.

        Both must belong to this function.  Within a block, earlier
        instructions dominate later ones.
        """
        block_a = a.block.label
        block_b = b.block.label
        if block_a == block_b:
            instrs = a.block.instrs
            return instrs.index(a) <= instrs.index(b)
        return self.dominates(block_a, block_b)

    def iterated_frontier(self, blocks: Set[str]) -> Set[str]:
        """The iterated dominance frontier of a set of blocks (for φs)."""
        result: Set[str] = set()
        work = [b for b in blocks if b in self.frontier]
        seen: Set[str] = set(work)
        while work:
            block = work.pop()
            for f in self.frontier.get(block, ()):
                if f not in result:
                    result.add(f)
                    if f not in seen:
                        seen.add(f)
                        work.append(f)
        return result


def loop_blocks(function: Function) -> Set[str]:
    """Labels of blocks that are part of some natural loop.

    A block is "in a loop" if it can reach itself through the CFG.  The
    semi-strong update rule is most profitable for stores in loops
    (Section 3.2); the statistics of Table 1 also report per-loop figures.
    Computed via Tarjan SCCs: a block is loop-resident iff its SCC has more
    than one node or it has a self-edge.
    """
    cfg = CFG(function)
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: Set[str] = set()
    counter = [0]

    labels = [b.label for b in function.blocks]

    def strongconnect(root: str) -> None:
        work = [(root, iter(cfg.succs[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(cfg.succs[child])))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    scc: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1 or node in cfg.succs[node]:
                        result.update(scc)

    for label in labels:
        if label not in index:
            strongconnect(label)
    return result
