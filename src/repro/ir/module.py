"""Modules: whole TinyC programs in IR form."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.ir.function import Function
from repro.ir.instructions import Instr


class GlobalVariable:
    """A global variable declaration.

    In LLVM (and in this IR, mirroring Section 4.1 of the paper) globals
    are address-taken variables accessed only via loads and stores.  C
    default-initializes globals, so their contents are defined unless
    ``initialized=False`` is forced (useful for testing).
    """

    def __init__(
        self,
        name: str,
        initialized: bool = True,
        size: int = 1,
        is_array: bool = False,
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.name = name
        self.initialized = initialized
        self.size = size
        self.is_array = is_array

    @property
    def num_fields(self) -> int:
        """Static field count: arrays are collapsed to a single field."""
        return 1 if self.is_array else self.size

    def __repr__(self) -> str:
        return f"<Global {self.name}>"


class Module:
    """A whole program: globals plus functions, with ``main`` as entry."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self._uid_cache: Optional[Dict[int, Instr]] = None

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function: {function.name}")
        self.functions[function.name] = function
        return function

    def add_global(self, glob: GlobalVariable) -> GlobalVariable:
        if glob.name in self.globals:
            raise ValueError(f"duplicate global: {glob.name}")
        self.globals[glob.name] = glob
        return glob

    def function(self, name: str) -> Function:
        return self.functions[name]

    @property
    def main(self) -> Function:
        return self.functions["main"]

    def instructions(self) -> Iterator[Instr]:
        for function in self.functions.values():
            yield from function.instructions()

    def assign_uids(self) -> None:
        """Assign module-unique ids to instructions that lack one.

        Ids are *stable*: an instruction keeps its uid for its lifetime,
        so analysis results keyed by uid (pointer analysis, call graph,
        instrumentation plans) survive passes that insert or remove
        instructions (e.g. SSA φ insertion).  Call this after any pass
        that creates instructions.
        """
        seen = set()
        max_uid = -1
        for instr in self.instructions():
            if instr.uid >= 0 and instr.uid not in seen:
                seen.add(instr.uid)
                max_uid = max(max_uid, instr.uid)
            else:
                instr.uid = -1
        next_uid = max_uid + 1
        for instr in self.instructions():
            if instr.uid < 0:
                instr.uid = next_uid
                next_uid += 1
        self._uid_cache = None

    def instr_by_uid(self) -> Dict[int, Instr]:
        """The uid → instruction map, as of the last :meth:`assign_uids`.

        Cached (the analyses query it in hot loops); passes that create
        instructions must call :meth:`assign_uids`, which invalidates it.
        """
        if self._uid_cache is None:
            self._uid_cache = {
                instr.uid: instr for instr in self.instructions()
            }
        return self._uid_cache

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
