"""Basic blocks and functions of the TinyC IR."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ir.instructions import Instr, MemPhi, Phi
from repro.ir.values import Var


class Block:
    """A basic block: a label, a straight-line body, and a terminator.

    The terminator (branch/jump/ret) is the last instruction of ``instrs``.
    ``mem_phis`` holds the memory-SSA φ nodes for address-taken variables
    joined at this block (filled by :mod:`repro.memssa`).
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self.instrs: List[Instr] = []
        self.mem_phis: List[MemPhi] = []
        self.function: Optional["Function"] = None

    def append(self, instr: Instr) -> Instr:
        """Append ``instr`` to the block body and return it."""
        if self.terminated:
            raise ValueError(f"block {self.label} already has a terminator")
        instr.block = self
        self.instrs.append(instr)
        return instr

    @property
    def terminated(self) -> bool:
        return bool(self.instrs) and self.instrs[-1].is_terminator()

    @property
    def terminator(self) -> Instr:
        if not self.terminated:
            raise ValueError(f"block {self.label} has no terminator")
        return self.instrs[-1]

    def phis(self) -> List[Phi]:
        """The top-level φ instructions at the head of this block."""
        out: List[Phi] = []
        for instr in self.instrs:
            if isinstance(instr, Phi):
                out.append(instr)
            else:
                break
        return out

    def non_phi_instrs(self) -> List[Instr]:
        return [i for i in self.instrs if not isinstance(i, Phi)]

    def successors(self) -> List[str]:
        return list(self.terminator.successors())

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:
        return f"<Block {self.label}, {len(self.instrs)} instrs>"


class Function:
    """A TinyC IR function: parameters plus an ordered list of blocks.

    The first block is the entry block.  After memory-SSA construction,
    ``virtual_params`` lists the address-taken locations flowing across
    this function's boundary (the ``[ρ]`` lists of Figure 4), and
    ``entry_versions`` their versions at function entry.
    """

    def __init__(self, name: str, params: Optional[List[str]] = None) -> None:
        self.name = name
        self.params: List[str] = list(params or [])
        self.blocks: List[Block] = []
        self._by_label: Dict[str, Block] = {}
        # Filled by memory-SSA construction.
        self.virtual_params: List[object] = []
        self.entry_versions: Dict[object, int] = {}

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, label: str) -> Block:
        """Create, register and return a new block labelled ``label``."""
        if label in self._by_label:
            raise ValueError(f"duplicate block label: {label}")
        block = Block(label)
        block.function = self
        self.blocks.append(block)
        self._by_label[label] = block
        return block

    def block(self, label: str) -> Block:
        return self._by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._by_label

    def remove_block(self, label: str) -> None:
        block = self._by_label.pop(label)
        self.blocks.remove(block)

    def instructions(self) -> Iterator[Instr]:
        """Iterate over all instructions in block order."""
        for block in self.blocks:
            yield from block.instrs

    def param_vars(self) -> List[Var]:
        return [Var(p) for p in self.params]

    def __repr__(self) -> str:
        return f"<Function {self.name}({', '.join(self.params)})>"
