"""Operand values for the TinyC intermediate representation.

The IR mimics the paper's TinyC language (Figure 1) and its SSA extension
(Figure 4).  Operands are either integer constants (``Const``) or top-level
variables (``Var``).  Address-taken variables never appear as operands; they
are only reachable through loads and stores, exactly as in LLVM-IR.

``Var`` instances are immutable.  SSA construction replaces operands with
fresh ``Var`` objects carrying a version number instead of mutating them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class Const:
    """An integer constant operand.  Constants are always defined."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var:
    """A top-level variable operand, optionally carrying an SSA version.

    Before SSA construction ``version`` is ``None``; afterwards every
    definition carries a distinct version and every use names the version
    of its reaching definition.
    """

    name: str
    version: Optional[int] = None

    def with_version(self, version: int) -> "Var":
        """Return a copy of this variable carrying ``version``."""
        return Var(self.name, version)

    @property
    def base(self) -> "Var":
        """The version-less variable underlying this SSA name."""
        return Var(self.name) if self.version is not None else self

    def __str__(self) -> str:
        if self.version is None:
            return self.name
        return f"{self.name}.{self.version}"


#: Any value usable as an instruction operand.
Value = Union[Const, Var]


def uses_of(value: Value) -> "tuple[Var, ...]":
    """Return the variables used by ``value`` (empty for constants)."""
    if isinstance(value, Var):
        return (value,)
    return ()
