"""The TinyC intermediate representation (the paper's Figure 1/4 language).

Public surface:

- :mod:`repro.ir.values` — :class:`Const` / :class:`Var` operands
- :mod:`repro.ir.instructions` — the instruction set (+ μ/χ annotations)
- :mod:`repro.ir.function` / :mod:`repro.ir.module` — containers
- :mod:`repro.ir.builder` — :class:`IRBuilder` for programmatic construction
- :mod:`repro.ir.cfg` / :mod:`repro.ir.dominance` — CFG and dominance
- :mod:`repro.ir.printer` / :mod:`repro.ir.verifier` — debugging aids
"""

from repro.ir.builder import IRBuilder
from repro.ir.cfg import CFG
from repro.ir.dominance import DominatorTree, loop_blocks
from repro.ir.function import Block, Function
from repro.ir.module import GlobalVariable, Module
from repro.ir.parser import IRParseError, parse_ir
from repro.ir.printer import function_to_str, module_to_str
from repro.ir.values import Const, Value, Var
from repro.ir.verifier import VerificationError, verify_module

__all__ = [
    "IRBuilder",
    "CFG",
    "DominatorTree",
    "loop_blocks",
    "Block",
    "Function",
    "GlobalVariable",
    "Module",
    "IRParseError",
    "parse_ir",
    "function_to_str",
    "module_to_str",
    "Const",
    "Value",
    "Var",
    "VerificationError",
    "verify_module",
]
