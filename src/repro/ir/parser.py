"""Textual IR parser — the inverse of :mod:`repro.ir.printer`.

Parses the pre-SSA form the front end and optimizer produce (no φs, no
SSA versions, no μ/χ annotations — those are analysis results, not
inputs).  Together with the printer this gives a round-trip property
(``parse(print(m))`` prints identically) and lets tests and tools ship
IR fixtures as plain text.

Accepted grammar (one instruction per line, blocks introduced by
``label:`` lines)::

    ; module NAME
    global g (init=T)
    global a (init=F array[8])
    global r (init=T fields=3)

    def f(a, b) {
    entry:
        x := 42
        x := y
        x := y + z
        x := -y
        p := alloc_F obj (stack, fields=2)
        q := alloc_T obj2 (heap, array[8])
        e := gep p, 1
        g := &glob
        fp := &func()
        v := *p
        *p := v
        r := f(x, 1)
        r := *fp(x)
        if c goto then else els
        goto join
        output v
        ret v
    }
"""

from __future__ import annotations

import re
from typing import Optional

from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.module import GlobalVariable, Module
from repro.ir.values import Const, Value, Var


class IRParseError(Exception):
    """A malformed IR text line."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


_NAME = r"[%A-Za-z_][%A-Za-z0-9_.@:\-]*"
_VALUE = rf"(?:-?\d+|{_NAME})"

_GLOBAL_RE = re.compile(
    rf"global\s+(?P<name>{_NAME})\s*"
    r"\(init=(?P<init>[TF])(?:\s+(?:array\[(?P<asize>\d+)\]|fields=(?P<fields>\d+)))?\)"
)
_DEF_RE = re.compile(rf"def\s+(?P<name>{_NAME})\s*\((?P<params>[^)]*)\)\s*(?:\[[^\]]*\]\s*)?\{{")
_LABEL_RE = re.compile(rf"^(?P<label>{_NAME}):$")
_ALLOC_RE = re.compile(
    rf"(?P<dst>{_NAME}) := alloc_(?P<flavor>[TF]) (?P<obj>\S+)"
    r" \((?P<kind>stack|heap)(?:, (?:fields=(?P<fields>\d+)|array\[(?P<asize>\d+)\]))?\)"
)
_GEP_RE = re.compile(rf"(?P<dst>{_NAME}) := gep (?P<base>{_VALUE}), (?P<off>{_VALUE})$")
_FUNCADDR_RE = re.compile(rf"(?P<dst>{_NAME}) := &(?P<func>{_NAME})\(\)$")
_GLOBALADDR_RE = re.compile(rf"(?P<dst>{_NAME}) := &(?P<glob>{_NAME})$")
_LOAD_RE = re.compile(rf"(?P<dst>{_NAME}) := \*(?P<ptr>{_VALUE})$")
_STORE_RE = re.compile(rf"\*(?P<ptr>{_VALUE}) := (?P<src>{_VALUE})$")
_CALL_RE = re.compile(
    rf"(?:(?P<dst>{_NAME}) := )?(?P<star>\*)?(?P<callee>{_NAME})\((?P<args>[^)]*)\)$"
)
_BINOP_RE = re.compile(
    rf"(?P<dst>{_NAME}) := (?P<lhs>{_VALUE}) "
    rf"(?P<op>\+|-|\*|/|%|<<|>>|<=|>=|==|!=|<|>|&|\||\^) (?P<rhs>{_VALUE})$"
)
_UNOP_RE = re.compile(rf"(?P<dst>{_NAME}) := (?P<op>[-!~])(?P<val>{_VALUE})$")
_COPY_RE = re.compile(rf"(?P<dst>{_NAME}) := (?P<src>{_VALUE})$")
_BRANCH_RE = re.compile(
    rf"if (?P<cond>{_VALUE}) goto (?P<then>{_NAME}) else (?P<els>{_NAME})$"
)
_JUMP_RE = re.compile(rf"goto (?P<target>{_NAME})$")
_RET_RE = re.compile(rf"ret(?: (?P<val>{_VALUE}))?$")
_OUTPUT_RE = re.compile(rf"output (?P<val>{_VALUE})$")


def _value(text: str) -> Value:
    if re.fullmatch(r"-?\d+", text):
        return Const(int(text))
    return Var(text)


def parse_ir(text: str) -> Module:
    """Parse printed IR text back into a module."""
    module = Module()
    function: Optional[Function] = None
    block = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        if line.startswith("; module"):
            continue

        match = _GLOBAL_RE.fullmatch(line)
        if match:
            size = 1
            is_array = False
            if match.group("asize"):
                size, is_array = int(match.group("asize")), True
            elif match.group("fields"):
                size = int(match.group("fields"))
            module.add_global(
                GlobalVariable(
                    match.group("name"),
                    initialized=match.group("init") == "T",
                    size=size,
                    is_array=is_array,
                )
            )
            continue

        match = _DEF_RE.fullmatch(line)
        if match:
            params = [
                p.strip() for p in match.group("params").split(",") if p.strip()
            ]
            function = Function(match.group("name"), params)
            module.add_function(function)
            block = None
            continue

        if line == "}":
            function = None
            block = None
            continue

        if function is None:
            raise IRParseError("instruction outside a function", line_no, raw)

        match = _LABEL_RE.fullmatch(line)
        if match:
            block = function.add_block(match.group("label"))
            continue

        if block is None:
            raise IRParseError("instruction outside a block", line_no, raw)

        # Strip μ/χ annotations (printed analysis results, not input).
        body = re.sub(r"\s+\[(?:mu|.*:= chi)\(.*\]$", "", line)
        instr = _parse_instr(body, line_no, raw)
        block.append(instr)

    module.assign_uids()
    return module


def _parse_instr(body: str, line_no: int, raw: str) -> ins.Instr:
    match = _ALLOC_RE.fullmatch(body)
    if match:
        size = 1
        is_array = False
        if match.group("asize"):
            size, is_array = int(match.group("asize")), True
        elif match.group("fields"):
            size = int(match.group("fields"))
        return ins.Alloc(
            Var(match.group("dst")),
            match.group("obj"),
            initialized=match.group("flavor") == "T",
            kind=match.group("kind"),
            size=size,
            is_array=is_array,
        )
    match = _GEP_RE.fullmatch(body)
    if match:
        return ins.Gep(
            Var(match.group("dst")),
            _value(match.group("base")),
            _value(match.group("off")),
        )
    match = _FUNCADDR_RE.fullmatch(body)
    if match:
        return ins.FuncAddr(Var(match.group("dst")), match.group("func"))
    match = _GLOBALADDR_RE.fullmatch(body)
    if match:
        return ins.GlobalAddr(Var(match.group("dst")), match.group("glob"))
    match = _CALL_RE.fullmatch(body)
    if match and not _LOAD_RE.fullmatch(body):
        args = [
            _value(a.strip())
            for a in match.group("args").split(",")
            if a.strip()
        ]
        dst = Var(match.group("dst")) if match.group("dst") else None
        callee: "str | Var" = (
            Var(match.group("callee"))
            if match.group("star")
            else match.group("callee")
        )
        return ins.Call(dst, callee, args)
    match = _LOAD_RE.fullmatch(body)
    if match:
        return ins.Load(Var(match.group("dst")), _value(match.group("ptr")))
    match = _STORE_RE.fullmatch(body)
    if match:
        return ins.Store(_value(match.group("ptr")), _value(match.group("src")))
    match = _BINOP_RE.fullmatch(body)
    if match:
        return ins.BinOp(
            Var(match.group("dst")),
            match.group("op"),
            _value(match.group("lhs")),
            _value(match.group("rhs")),
        )
    match = _UNOP_RE.fullmatch(body)
    if match and not re.fullmatch(r"-?\d+", match.group("op") + match.group("val")):
        return ins.UnOp(
            Var(match.group("dst")), match.group("op"), _value(match.group("val"))
        )
    match = _COPY_RE.fullmatch(body)
    if match:
        value = _value(match.group("src"))
        if isinstance(value, Const):
            return ins.ConstCopy(Var(match.group("dst")), value.value)
        return ins.Copy(Var(match.group("dst")), value)
    match = _BRANCH_RE.fullmatch(body)
    if match:
        return ins.Branch(
            _value(match.group("cond")),
            match.group("then"),
            match.group("els"),
        )
    match = _JUMP_RE.fullmatch(body)
    if match:
        return ins.Jump(match.group("target"))
    match = _RET_RE.fullmatch(body)
    if match:
        value = _value(match.group("val")) if match.group("val") else None
        return ins.Ret(value)
    match = _OUTPUT_RE.fullmatch(body)
    if match:
        return ins.Output(_value(match.group("val")))
    raise IRParseError("unrecognized instruction", line_no, raw)
