"""Structural well-formedness checks for IR modules.

The verifier catches malformed IR early: unterminated blocks, branches to
unknown labels, calls to unknown direct callees, φs whose incoming labels
disagree with the CFG, and (post-SSA) multiply-defined SSA names.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir import instructions as ins
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Var


class VerificationError(Exception):
    """Raised when a module fails verification."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__("\n".join(problems))
        self.problems = problems


def verify_module(module: Module, ssa: bool = False) -> None:
    """Verify ``module``; raise :class:`VerificationError` on problems.

    With ``ssa=True`` additionally checks the single-assignment property
    for versioned variables.
    """
    problems: List[str] = []
    for function in module.functions.values():
        problems.extend(_verify_function(module, function, ssa))
    if problems:
        raise VerificationError(problems)


def _verify_function(module: Module, function: Function, ssa: bool) -> List[str]:
    problems: List[str] = []
    where = f"function {function.name}"

    if not function.blocks:
        return [f"{where}: has no blocks"]

    labels: Set[str] = set()
    for block in function.blocks:
        if block.label in labels:
            problems.append(f"{where}: duplicate block label {block.label}")
        labels.add(block.label)
        if not block.terminated:
            problems.append(f"{where}: block {block.label} lacks a terminator")
            continue
        for i, instr in enumerate(block.instrs):
            if instr.is_terminator() and i != len(block.instrs) - 1:
                problems.append(
                    f"{where}: terminator mid-block in {block.label}"
                )
            if isinstance(instr, ins.Call) and not instr.is_indirect:
                if instr.callee not in module.functions:
                    problems.append(
                        f"{where}: call to unknown function {instr.callee!r}"
                    )
            if isinstance(instr, ins.GlobalAddr):
                if instr.global_name not in module.globals:
                    problems.append(
                        f"{where}: address of unknown global "
                        f"{instr.global_name!r}"
                    )
            if isinstance(instr, ins.FuncAddr):
                if instr.func_name not in module.functions:
                    problems.append(
                        f"{where}: address of unknown function "
                        f"{instr.func_name!r}"
                    )
        for succ in block.successors():
            if not function.has_block(succ):
                problems.append(
                    f"{where}: branch from {block.label} to unknown "
                    f"block {succ!r}"
                )

    if problems:
        return problems

    cfg = CFG(function)
    for block in function.blocks:
        preds = set(cfg.preds[block.label])
        for phi in block.phis():
            incoming = set(phi.incomings)
            if incoming != preds:
                problems.append(
                    f"{where}: phi {phi.dst} in {block.label} has incoming "
                    f"labels {sorted(incoming)} but predecessors are "
                    f"{sorted(preds)}"
                )

    if ssa:
        problems.extend(_verify_ssa(function, where))
    return problems


def _verify_ssa(function: Function, where: str) -> List[str]:
    problems: List[str] = []
    defined: Dict[Var, int] = {}
    for instr in function.instructions():
        for var in instr.defs():
            if var.version is None:
                problems.append(
                    f"{where}: unversioned definition of {var} in SSA form"
                )
            defined[var] = defined.get(var, 0) + 1
    for var, count in defined.items():
        if count > 1:
            problems.append(f"{where}: {var} defined {count} times in SSA form")
    return problems
