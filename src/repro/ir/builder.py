"""A convenience builder for constructing IR by hand.

Used by the TinyC front-end lowering, by tests and by the examples.  The
builder tracks a current insertion block and hands out fresh temporaries
(named ``%tN``) and fresh block labels.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.ir import instructions as ins
from repro.ir.function import Block, Function
from repro.ir.module import GlobalVariable, Module
from repro.ir.values import Const, Value, Var


class IRBuilder:
    """Builds one function at a time inside a module."""

    def __init__(self, module: Optional[Module] = None) -> None:
        self.module = module if module is not None else Module()
        self.function: Optional[Function] = None
        self.block: Optional[Block] = None
        self._temp_counter = 0
        self._label_counter = 0
        self._obj_counter = 0
        #: Source line stamped on emitted instructions (diagnostics).
        self.current_line: Optional[int] = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def start_function(self, name: str, params: Optional[List[str]] = None) -> Function:
        """Begin a new function and position at a fresh entry block."""
        self.function = Function(name, params)
        self.module.add_function(self.function)
        self.block = self.function.add_block(self.fresh_label("entry"))
        return self.function

    def add_global(
        self,
        name: str,
        initialized: bool = True,
        size: int = 1,
        is_array: bool = False,
    ) -> GlobalVariable:
        return self.module.add_global(
            GlobalVariable(name, initialized, size, is_array)
        )

    def new_block(self, hint: str = "bb") -> Block:
        assert self.function is not None
        return self.function.add_block(self.fresh_label(hint))

    def position_at(self, block: Block) -> None:
        self.block = block

    def fresh_label(self, hint: str = "bb") -> str:
        label = f"{hint}{self._label_counter}"
        self._label_counter += 1
        return label

    def fresh_temp(self, hint: str = "t") -> Var:
        var = Var(f"%{hint}{self._temp_counter}")
        self._temp_counter += 1
        return var

    def fresh_obj(self, hint: str = "obj") -> str:
        name = f"{hint}{self._obj_counter}"
        self._obj_counter += 1
        return name

    def _emit(self, instr: ins.Instr) -> ins.Instr:
        assert self.block is not None, "no insertion block"
        instr.line = self.current_line
        return self.block.append(instr)

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------
    def const(self, dst: Var, value: int) -> Var:
        self._emit(ins.ConstCopy(dst, value))
        return dst

    def copy(self, dst: Var, src: Value) -> Var:
        self._emit(ins.Copy(dst, src))
        return dst

    def binop(self, dst: Var, op: str, lhs: Value, rhs: Value) -> Var:
        self._emit(ins.BinOp(dst, op, lhs, rhs))
        return dst

    def unop(self, dst: Var, op: str, operand: Value) -> Var:
        self._emit(ins.UnOp(dst, op, operand))
        return dst

    def alloc(
        self,
        dst: Var,
        obj_name: Optional[str] = None,
        initialized: bool = False,
        kind: str = "stack",
        size: int = 1,
        is_array: bool = False,
    ) -> Var:
        name = obj_name if obj_name is not None else self.fresh_obj()
        self._emit(ins.Alloc(dst, name, initialized, kind, size, is_array))
        return dst

    def gep(self, dst: Var, base: Value, offset: Value) -> Var:
        if isinstance(offset, int):
            offset = Const(offset)
        self._emit(ins.Gep(dst, base, offset))
        return dst

    def global_addr(self, dst: Var, global_name: str) -> Var:
        self._emit(ins.GlobalAddr(dst, global_name))
        return dst

    def func_addr(self, dst: Var, func_name: str) -> Var:
        self._emit(ins.FuncAddr(dst, func_name))
        return dst

    def load(self, dst: Var, ptr: Value) -> Var:
        self._emit(ins.Load(dst, ptr))
        return dst

    def store(self, ptr: Value, value: Value) -> None:
        self._emit(ins.Store(ptr, value))

    def call(
        self,
        dst: Optional[Var],
        callee: Union[str, Var],
        args: Optional[List[Value]] = None,
    ) -> Optional[Var]:
        self._emit(ins.Call(dst, callee, args))
        return dst

    def branch(self, cond: Value, then_label: str, else_label: str) -> None:
        self._emit(ins.Branch(cond, then_label, else_label))

    def jump(self, target: str) -> None:
        self._emit(ins.Jump(target))

    def ret(self, value: Optional[Value] = None) -> None:
        self._emit(ins.Ret(value))

    def output(self, value: Value) -> None:
        self._emit(ins.Output(value))

    # ------------------------------------------------------------------
    # Finishing
    # ------------------------------------------------------------------
    def finish(self) -> Module:
        """Assign instruction uids and return the module."""
        self.module.assign_uids()
        return self.module
