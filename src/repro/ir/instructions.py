"""Instruction set of the TinyC intermediate representation.

The instruction set corresponds one-to-one with the statement forms of the
paper's TinyC language (Figure 1), extended the same way Figure 4 extends it
for SSA form:

======================  =======================================
Paper form              IR instruction
======================  =======================================
``x := n``              :class:`ConstCopy`
``x := y``              :class:`Copy`
``x := y ⊕ z``          :class:`BinOp` (plus unary :class:`UnOp`)
``x := alloc_T ρ``      :class:`Alloc` (``initialized=True``)
``x := alloc_F ρ``      :class:`Alloc` (``initialized=False``)
``x := *y``             :class:`Load`
``*x := y``             :class:`Store`
``x := f(y)``           :class:`Call`
``if x goto l``         :class:`Branch`
``ret r``               :class:`Ret`
``v := φ(v, v)``        :class:`Phi`
======================  =======================================

Beyond the paper's minimal subset the IR adds what the evaluated
implementation needed: field addressing (:class:`Gep`, for the offset-based
field-sensitive pointer analysis), global/function address constants
(:class:`GlobalAddr`, :class:`FuncAddr`), unconditional jumps, and an
:class:`Output` instruction standing in for externally-visible writes, which
MSan also treats as a check point.

Memory-SSA annotations (``mus``/``chis`` — the μ and χ functions of
Figure 4) and call-boundary virtual parameters are attached to instructions
by :mod:`repro.memssa` after pointer analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.values import Const, Value, Var

#: Binary operators supported by :class:`BinOp`.
BINARY_OPS = (
    "+", "-", "*", "/", "%",
    "<", "<=", ">", ">=", "==", "!=",
    "&", "|", "^", "<<", ">>",
)

#: Unary operators supported by :class:`UnOp`.
UNARY_OPS = ("-", "!", "~")


@dataclass
class Mu:
    """A μ(ρ) annotation: a potential indirect use of a memory location.

    ``loc`` identifies the address-taken variable (an ``(object, field)``
    pair, see :mod:`repro.analysis.memobjects`); ``version`` is filled in by
    SSA renaming.
    """

    loc: object
    version: Optional[int] = None

    def __str__(self) -> str:
        v = "?" if self.version is None else str(self.version)
        return f"mu({self.loc}.{v})"


@dataclass
class Chi:
    """A ``ρ_m := χ(ρ_n)`` annotation: a potential indirect def (and use).

    ``new_version`` is the freshly defined SSA version ``m`` and
    ``old_version`` the incoming version ``n``.
    """

    loc: object
    new_version: Optional[int] = None
    old_version: Optional[int] = None

    def __str__(self) -> str:
        m = "?" if self.new_version is None else str(self.new_version)
        n = "?" if self.old_version is None else str(self.old_version)
        return f"{self.loc}.{m} := chi({self.loc}.{n})"


class Instr:
    """Base class of all IR instructions.

    Attributes:
        uid: A module-unique integer id, assigned by
            :meth:`repro.ir.module.Module.assign_uids`.  Instrumentation
            plans are keyed by it.
        block: Back-reference to the containing block (set on insertion).
        mus: μ annotations (loads and calls).
        chis: χ annotations (allocs, stores and calls).
    """

    uid: int = -1

    def __init__(self) -> None:
        self.uid = -1
        self.block = None
        self.mus: List[Mu] = []
        self.chis: List[Chi] = []
        #: Source line this instruction was lowered from (None if
        #: synthetic); used for diagnostics.
        self.line: Optional[int] = None

    def defs(self) -> Tuple[Var, ...]:
        """Top-level variables defined by this instruction."""
        return ()

    def uses(self) -> Tuple[Var, ...]:
        """Top-level variables used by this instruction."""
        return ()

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        """Rewrite operand variables according to ``mapping``.

        Used by SSA renaming and the optimization passes.  Unmapped
        operands are left untouched.
        """

    def is_terminator(self) -> bool:
        return False

    def _annot(self) -> str:
        parts = [str(m) for m in self.mus] + [str(c) for c in self.chis]
        return f"  [{', '.join(parts)}]" if parts else ""


def _subst(value: Value, mapping: Dict[Var, Value]) -> Value:
    if isinstance(value, Var) and value in mapping:
        return mapping[value]
    return value


class ConstCopy(Instr):
    """``x := n`` — copy a constant into a top-level variable."""

    def __init__(self, dst: Var, value: int) -> None:
        super().__init__()
        self.dst = dst
        self.value = value

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,)

    def __str__(self) -> str:
        return f"{self.dst} := {self.value}{self._annot()}"


class Copy(Instr):
    """``x := y`` — copy one top-level variable into another."""

    def __init__(self, dst: Var, src: Value) -> None:
        super().__init__()
        self.dst = dst
        self.src = src

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Var, ...]:
        return tuple(v for v in (self.src,) if isinstance(v, Var))

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        self.src = _subst(self.src, mapping)

    def __str__(self) -> str:
        return f"{self.dst} := {self.src}{self._annot()}"


class BinOp(Instr):
    """``x := y ⊕ z`` — binary operation on top-level values."""

    def __init__(self, dst: Var, op: str, lhs: Value, rhs: Value) -> None:
        super().__init__()
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator: {op!r}")
        self.dst = dst
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Var, ...]:
        return tuple(v for v in (self.lhs, self.rhs) if isinstance(v, Var))

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        self.lhs = _subst(self.lhs, mapping)
        self.rhs = _subst(self.rhs, mapping)

    def __str__(self) -> str:
        return f"{self.dst} := {self.lhs} {self.op} {self.rhs}{self._annot()}"


class UnOp(Instr):
    """``x := ⊖y`` — unary operation on a top-level value."""

    def __init__(self, dst: Var, op: str, operand: Value) -> None:
        super().__init__()
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator: {op!r}")
        self.dst = dst
        self.op = op
        self.operand = operand

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Var, ...]:
        return tuple(v for v in (self.operand,) if isinstance(v, Var))

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        self.operand = _subst(self.operand, mapping)

    def __str__(self) -> str:
        return f"{self.dst} := {self.op}{self.operand}{self._annot()}"


class Alloc(Instr):
    """``x := alloc_T ρ`` / ``x := alloc_F ρ`` — memory allocation.

    ``obj_name`` names the abstract object ρ.  ``initialized`` selects
    between ``alloc_T`` (contents defined, e.g. ``calloc`` or a C global)
    and ``alloc_F`` (contents undefined, e.g. ``malloc`` or a C stack
    local).  ``kind`` is ``"stack"`` or ``"heap"``; ``num_fields`` and
    ``is_array`` drive the field-sensitive memory model (arrays are
    collapsed to a single field, as in the paper).
    """

    def __init__(
        self,
        dst: Var,
        obj_name: str,
        initialized: bool,
        kind: str = "stack",
        size: int = 1,
        is_array: bool = False,
    ) -> None:
        super().__init__()
        if kind not in ("stack", "heap"):
            raise ValueError(f"bad alloc kind: {kind!r}")
        if size < 1:
            raise ValueError("size must be >= 1")
        self.dst = dst
        self.obj_name = obj_name
        self.initialized = initialized
        self.kind = kind
        self.size = size
        self.is_array = is_array

    @property
    def num_fields(self) -> int:
        """Static field count: arrays are collapsed to a single field."""
        return 1 if self.is_array else self.size

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,)

    def __str__(self) -> str:
        flavor = "T" if self.initialized else "F"
        extra = f", fields={self.size}" if self.size > 1 else ""
        if self.is_array:
            extra = f", array[{self.size}]"
        return (
            f"{self.dst} := alloc_{flavor} {self.obj_name}"
            f" ({self.kind}{extra}){self._annot()}"
        )


class Gep(Instr):
    """``x := &y[offset]`` — element/field address computation.

    ``offset`` is a runtime value.  The offset-based field-sensitive
    pointer analysis uses the *static* offset — the constant value when
    ``offset`` is a :class:`Const`, otherwise the access is collapsed to
    the whole object (exactly the paper's "arrays are treated as a whole").
    """

    def __init__(self, dst: Var, base: Value, offset: Value) -> None:
        super().__init__()
        if isinstance(offset, Const) and offset.value < 0:
            raise ValueError("constant field offsets must be non-negative")
        self.dst = dst
        self.base = base
        self.offset = offset

    @property
    def static_offset(self) -> Optional[int]:
        """The constant offset, or ``None`` when it is only known at run
        time (which collapses the access to the whole object)."""
        if isinstance(self.offset, Const):
            return self.offset.value
        return None

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Var, ...]:
        return tuple(
            v for v in (self.base, self.offset) if isinstance(v, Var)
        )

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        self.base = _subst(self.base, mapping)
        self.offset = _subst(self.offset, mapping)

    def __str__(self) -> str:
        return f"{self.dst} := gep {self.base}, {self.offset}{self._annot()}"


class GlobalAddr(Instr):
    """``x := &g`` — take the address of a global variable.

    Globals are address-taken variables in LLVM and in this IR; they are
    only ever accessed through loads and stores on such addresses.
    """

    def __init__(self, dst: Var, global_name: str) -> None:
        super().__init__()
        self.dst = dst
        self.global_name = global_name

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,)

    def __str__(self) -> str:
        return f"{self.dst} := &{self.global_name}{self._annot()}"


class FuncAddr(Instr):
    """``x := &f`` — take the address of a function (function pointer)."""

    def __init__(self, dst: Var, func_name: str) -> None:
        super().__init__()
        self.dst = dst
        self.func_name = func_name

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,)

    def __str__(self) -> str:
        return f"{self.dst} := &{self.func_name}(){self._annot()}"


class Load(Instr):
    """``x := *y`` — load through a top-level pointer.

    The pointer use is a critical operation (Definition 1): dereferencing
    an undefined pointer must be flagged at run time.
    """

    def __init__(self, dst: Var, ptr: Value) -> None:
        super().__init__()
        self.dst = dst
        self.ptr = ptr

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Var, ...]:
        return tuple(v for v in (self.ptr,) if isinstance(v, Var))

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        self.ptr = _subst(self.ptr, mapping)

    def critical_uses(self) -> Tuple[Value, ...]:
        return (self.ptr,)

    def __str__(self) -> str:
        return f"{self.dst} := *{self.ptr}{self._annot()}"


class Store(Instr):
    """``*x := y`` — store through a top-level pointer.

    The pointer use is a critical operation.
    """

    def __init__(self, ptr: Value, value: Value) -> None:
        super().__init__()
        self.ptr = ptr
        self.value = value

    def uses(self) -> Tuple[Var, ...]:
        return tuple(v for v in (self.ptr, self.value) if isinstance(v, Var))

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        self.ptr = _subst(self.ptr, mapping)
        self.value = _subst(self.value, mapping)

    def critical_uses(self) -> Tuple[Value, ...]:
        return (self.ptr,)

    def __str__(self) -> str:
        return f"*{self.ptr} := {self.value}{self._annot()}"


class Call(Instr):
    """``x := f(y, ...)`` — direct or indirect function call.

    ``callee`` is a function name for direct calls or a :class:`Var` whose
    points-to set (of function objects) resolves the targets of an indirect
    call.  ``dst`` may be ``None`` for calls whose result is ignored.

    After memory-SSA construction, ``mus``/``chis`` carry the virtual
    argument and output-parameter bindings at this call site (Figure 4).
    """

    def __init__(
        self,
        dst: Optional[Var],
        callee: Union[str, Var],
        args: Optional[List[Value]] = None,
    ) -> None:
        super().__init__()
        self.dst = dst
        self.callee = callee
        self.args: List[Value] = list(args or [])

    @property
    def is_indirect(self) -> bool:
        return isinstance(self.callee, Var)

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,) if self.dst is not None else ()

    def uses(self) -> Tuple[Var, ...]:
        used = [v for v in self.args if isinstance(v, Var)]
        if isinstance(self.callee, Var):
            used.append(self.callee)
        return tuple(used)

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        self.args = [_subst(a, mapping) for a in self.args]
        if isinstance(self.callee, Var):
            new = _subst(self.callee, mapping)
            if isinstance(new, Var):
                self.callee = new

    def __str__(self) -> str:
        callee = f"*{self.callee}" if self.is_indirect else str(self.callee)
        args = ", ".join(str(a) for a in self.args)
        head = f"{self.dst} := " if self.dst is not None else ""
        return f"{head}{callee}({args}){self._annot()}"


class Branch(Instr):
    """``if x goto l_then else l_else`` — conditional branch.

    The condition use is a critical operation.
    """

    def __init__(self, cond: Value, then_label: str, else_label: str) -> None:
        super().__init__()
        self.cond = cond
        self.then_label = then_label
        self.else_label = else_label

    def uses(self) -> Tuple[Var, ...]:
        return tuple(v for v in (self.cond,) if isinstance(v, Var))

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        self.cond = _subst(self.cond, mapping)

    def critical_uses(self) -> Tuple[Value, ...]:
        return (self.cond,)

    def is_terminator(self) -> bool:
        return True

    def successors(self) -> Tuple[str, ...]:
        return (self.then_label, self.else_label)

    def __str__(self) -> str:
        return f"if {self.cond} goto {self.then_label} else {self.else_label}"


class Jump(Instr):
    """``goto l`` — unconditional branch."""

    def __init__(self, target: str) -> None:
        super().__init__()
        self.target = target

    def is_terminator(self) -> bool:
        return True

    def successors(self) -> Tuple[str, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"goto {self.target}"


class Ret(Instr):
    """``ret r`` — function return.

    After memory-SSA construction, ``mus`` carry the virtual output
    parameters (the live-out versions of the function's modified
    address-taken variables, Figure 4).
    """

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__()
        self.value = value

    def uses(self) -> Tuple[Var, ...]:
        return tuple(v for v in (self.value,) if isinstance(v, Var))

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        if self.value is not None:
            self.value = _subst(self.value, mapping)

    def is_terminator(self) -> bool:
        return True

    def successors(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        suffix = f" {self.value}" if self.value is not None else ""
        return f"ret{suffix}{self._annot()}"


class Output(Instr):
    """``output x`` — externally observable write (a check point).

    Stands in for values escaping to the OS (``write``/``printf``), which
    MSan's runtime also checks for definedness.
    """

    def __init__(self, value: Value) -> None:
        super().__init__()
        self.value = value

    def uses(self) -> Tuple[Var, ...]:
        return tuple(v for v in (self.value,) if isinstance(v, Var))

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        self.value = _subst(self.value, mapping)

    def critical_uses(self) -> Tuple[Value, ...]:
        return (self.value,)

    def __str__(self) -> str:
        return f"output {self.value}{self._annot()}"


class Phi(Instr):
    """``v := φ(v, v)`` — SSA join for a top-level variable.

    ``incomings`` maps predecessor block labels to the incoming value.
    """

    def __init__(self, dst: Var, incomings: Optional[Dict[str, Value]] = None) -> None:
        super().__init__()
        self.dst = dst
        self.incomings: Dict[str, Value] = dict(incomings or {})

    def defs(self) -> Tuple[Var, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Var, ...]:
        return tuple(v for v in self.incomings.values() if isinstance(v, Var))

    def replace_uses(self, mapping: Dict[Var, Value]) -> None:
        self.incomings = {
            label: _subst(value, mapping) for label, value in self.incomings.items()
        }

    def __str__(self) -> str:
        args = ", ".join(
            f"{label}: {value}" for label, value in sorted(self.incomings.items())
        )
        return f"{self.dst} := phi({args}){self._annot()}"


@dataclass
class MemPhi:
    """``ρ_l := φ(ρ_m, ρ_n)`` — SSA join for an address-taken variable.

    Memory φs live on blocks (not in the instruction stream); they are
    created by memory-SSA construction and consumed by the VFG builder and
    by guided instrumentation ([Phi] rule).
    """

    loc: object
    new_version: Optional[int] = None
    incomings: Dict[str, Optional[int]] = field(default_factory=dict)

    def __str__(self) -> str:
        args = ", ".join(
            f"{label}: {self.loc}.{v}" for label, v in sorted(self.incomings.items())
        )
        return f"{self.loc}.{self.new_version} := mphi({args})"


def has_critical_uses(instr: Instr) -> bool:
    """Whether ``instr`` performs a critical operation (Definition 1)."""
    return isinstance(instr, (Load, Store, Branch, Output))
