"""Textual pretty-printer for IR modules (debugging and golden tests)."""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.module import Module


def function_to_str(function: Function, show_uids: bool = False) -> str:
    lines: List[str] = []
    params = ", ".join(function.params)
    vparams = ""
    if function.virtual_params:
        vparams = " [" + ", ".join(str(v) for v in function.virtual_params) + "]"
    lines.append(f"def {function.name}({params}){vparams} {{")
    for block in function.blocks:
        lines.append(f"{block.label}:")
        for mphi in block.mem_phis:
            lines.append(f"    {mphi}")
        for instr in block.instrs:
            prefix = f"[{instr.uid:>4}] " if show_uids else ""
            lines.append(f"    {prefix}{instr}")
    lines.append("}")
    return "\n".join(lines)


def module_to_str(module: Module, show_uids: bool = False) -> str:
    lines: List[str] = [f"; module {module.name}"]
    for glob in module.globals.values():
        init = "T" if glob.initialized else "F"
        extra = f" array[{glob.size}]" if glob.is_array else (
            f" fields={glob.size}" if glob.size > 1 else ""
        )
        lines.append(f"global {glob.name} (init={init}{extra})")
    for function in module.functions.values():
        lines.append("")
        lines.append(function_to_str(function, show_uids))
    return "\n".join(lines)
