"""The value-flow graph: construction, definedness resolution, MFCs."""

from repro.vfg.builder import build_vfg
from repro.vfg.definedness import Definedness, resolve_definedness, step_context
from repro.vfg.demand import (
    DemandEngine,
    LazyDefinedness,
    resolve_definedness_demand,
)
from repro.vfg.explain import (
    FlowStep,
    explain_check_site,
    explain_undefined,
    explain_undefined_demand,
)
from repro.vfg.graph import (
    BOT,
    CALL,
    INTRA,
    MEM_SUMMARY,
    RET,
    TOP,
    CheckSite,
    Edge,
    MemNode,
    Node,
    Root,
    SummaryNode,
    TopNode,
    VFG,
)
from repro.vfg.mfc import MFC, compute_mfc

__all__ = [
    "build_vfg",
    "Definedness",
    "resolve_definedness",
    "step_context",
    "DemandEngine",
    "LazyDefinedness",
    "resolve_definedness_demand",
    "FlowStep",
    "explain_check_site",
    "explain_undefined",
    "explain_undefined_demand",
    "BOT",
    "CALL",
    "INTRA",
    "MEM_SUMMARY",
    "RET",
    "TOP",
    "CheckSite",
    "Edge",
    "MemNode",
    "Node",
    "Root",
    "SummaryNode",
    "TopNode",
    "VFG",
    "MFC",
    "compute_mfc",
]
