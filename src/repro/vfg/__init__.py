"""The value-flow graph: construction, definedness resolution, MFCs."""

from repro.vfg.builder import build_vfg
from repro.vfg.definedness import Definedness, resolve_definedness
from repro.vfg.explain import FlowStep, explain_check_site, explain_undefined
from repro.vfg.graph import (
    BOT,
    CALL,
    INTRA,
    MEM_SUMMARY,
    RET,
    TOP,
    CheckSite,
    Edge,
    MemNode,
    Node,
    Root,
    SummaryNode,
    TopNode,
    VFG,
)
from repro.vfg.mfc import MFC, compute_mfc

__all__ = [
    "build_vfg",
    "Definedness",
    "resolve_definedness",
    "FlowStep",
    "explain_check_site",
    "explain_undefined",
    "BOT",
    "CALL",
    "INTRA",
    "MEM_SUMMARY",
    "RET",
    "TOP",
    "CheckSite",
    "Edge",
    "MemNode",
    "Node",
    "Root",
    "SummaryNode",
    "TopNode",
    "VFG",
    "MFC",
    "compute_mfc",
]
