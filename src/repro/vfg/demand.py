"""Demand-driven definedness: answer Γ for one node by VFG slicing.

Whole-program resolution (:func:`repro.vfg.definedness.resolve_definedness`)
walks forward from the F root and labels every node it reaches — the
right tool when Γ is needed for the entire graph, wasteful when only a
handful of check sites matter (``repro check --explain``, on-demand DOT
coloring, Opt II's re-resolution).  This module answers the single-node
question by *backward* slicing from the queried node toward the roots,
in the style of Sui & Xue's demand-driven value-flow refinement: only
the queried node's backward slice is ever visited, the search stops the
moment a realizable ⊥-path is found, and per-(node, context) verdicts
are memoized and shared across successive queries.

Both resolvers are supported and both are *bit-identical* to their
whole-program oracle (differentially tested):

* ``callstring`` — k-limited call strings (§3.3, the paper's setting is
  k = 1).  A backward step must compute the exact *preimage* of the
  forward transition :func:`~repro.vfg.definedness.step_context`.
  Because the forward push truncates at depth k, the preimage of a call
  edge is not a single context but a *set* of them; backward states
  therefore carry a context **constraint** ``(frames, open)``: the set
  of forward call strings beginning with ``frames`` (any suffix up to
  depth k when ``open``, exactly ``frames`` otherwise).  Every backward
  edge maps a constraint to the exact preimage constraints, so a
  backward path from the query to ``(F, constraint ∋ ())`` exists iff a
  forward realizable path exists — the verdicts match the oracle
  exactly, state by state.

* ``summary`` — unbounded context via the tabulation summaries of
  :mod:`repro.vfg.tabulation`.  A realizable forward path is
  phase 0 (intra/ret/summary edges) then phase 1 (intra/call/summary);
  the demand query runs the same automaton backward from the target and
  accepts at ``(F, phase 0)``.  Summaries are computed once per engine
  and reused by every query.

Memoization policy (what makes batched queries cheap):

* a search that *succeeds* marks every state on the discovered ⊥-path
  (it can reach an accepting state) — and may splice into a previously
  memoized ⊥ state mid-search;
* a search that *exhausts* marks every visited state ⊤ — exhaustion
  means the entire backward closure of each visited state was explored
  and contained no accepting state;
* states already memoized ⊤ are pruned, states memoized ⊥ end the
  search immediately.

Engine invalidation is by construction: an engine captures one VFG and
its memo is valid only for that graph's edge set.  Opt II, which
rewires edges on a scratch copy, builds a *fresh* engine for the
scratch graph (see :func:`repro.core.opt2.redundant_check_elimination`)
rather than mutating a queried one.

Batched queries can fan out across worker processes
(``query_sites(sites, jobs=N)``): check-site slices are independent,
workers inherit the engine through ``fork`` copy-on-write, and their
memo tables merge by plain union on join — a memoized verdict is an
order-independent property of the graph (⊥ = an accepting path exists
through the state, ⊤ = its backward closure is accepting-free), so two
workers can never disagree about a state and later batches reuse every
verdict any worker established.  Verdicts are bit-identical to the
serial loop either way.
"""

from __future__ import annotations

import time
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.parallel import fork_available, fork_pool, resolve_jobs
from repro.analysis.solverstats import QueryStats
from repro.obs.trace import TRACE
from repro.vfg.definedness import Definedness, step_context
from repro.vfg.graph import BOT, CALL, INTRA, RET, CheckSite, Edge, Node, Root, VFG

Context = Tuple[int, ...]
#: A backward context constraint: (frames, open).  Denotes the forward
#: call strings that start with ``frames`` — any completion up to the
#: engine depth when ``open`` is True, exactly ``frames`` otherwise.
Constraint = Tuple[Context, bool]
#: A backward search state.  ``callstring``: (node, frames, open);
#: ``summary``: (node, phase).
State = Tuple

#: The initial constraint of every query: any forward context at all.
ANY: Constraint = ((), True)


def _call_preimages(
    frames: Context, open_: bool, callsite: Optional[int], depth: int
) -> List[Constraint]:
    """Constraints on ctx' with ``step_context(ctx', CALL, cs) ∈ S``.

    Forward, a call edge maps ctx' to ``((cs,) + ctx')[:depth]`` — the
    result always begins with ``cs`` and has length ≥ 1.
    """
    if not frames:
        # S is either exactly {()} (closed: no preimage, results are
        # never empty) or every context (open: every ctx' qualifies).
        return [ANY] if open_ else []
    if frames[0] != callsite:
        return []
    if not open_ and len(frames) < depth:
        # No truncation happened: ctx' is exactly the popped frames.
        return [(frames[1:], False)]
    # Truncation may have dropped one frame of ctx' (len(frames) == depth)
    # or S was open anyway: any completion of the popped frames.
    return [(frames[1:], True)]


def _ret_preimages(
    frames: Context, open_: bool, callsite: Optional[int], depth: int
) -> List[Constraint]:
    """Constraints on ctx' with ``step_context(ctx', RET, cs) ∈ S``.

    Forward, a return edge maps ``()`` to ``()`` (truncated string, any
    return allowed) and ``(cs,) + t`` to ``t``; other contexts are
    unrealizable.
    """
    out: List[Constraint] = []
    if len(frames) + 1 <= depth:
        out.append(((callsite,) + frames, open_))
    if not frames:
        # The empty forward context survives any return unchanged.
        out.append(((), False))
    return out


class DemandEngine:
    """Backward-slicing definedness oracle for one VFG.

    Answers ``Γ(node)`` per query, memoizing verdicts across queries.
    ``resolver`` selects the context-matching discipline; verdicts are
    bit-identical to the matching whole-program resolver.
    """

    def __init__(
        self,
        vfg: "VFG | Callable[[], VFG]",
        context_depth: int = 1,
        resolver: str = "callstring",
        stats: Optional[QueryStats] = None,
    ) -> None:
        if resolver not in ("callstring", "summary"):
            raise ValueError(f"unknown resolver {resolver!r}")
        if resolver == "callstring" and context_depth < 0:
            raise ValueError("context_depth must be >= 0")
        #: ``vfg`` may be a zero-argument thunk (the lazy tier: the
        #: deferred static pipeline); the first query forces it.
        if callable(vfg):
            self._vfg: Optional[VFG] = None
            self._vfg_thunk: Optional[Callable[[], VFG]] = vfg
        else:
            self._vfg = vfg
            self._vfg_thunk = None
        self.resolver = resolver
        self.context_depth = -1 if resolver == "summary" else context_depth
        self.stats = stats or QueryStats(
            resolver=resolver,
            context_depth=self.context_depth,
            graph_nodes=self._vfg.num_nodes if self._vfg is not None else 0,
        )
        #: state -> verdict (True = a realizable ⊥-path exists through it)
        self._memo: Dict[State, bool] = {}
        #: summary mode: reverse summary edges, built lazily once.
        self._rev_summaries: Optional[Dict[Node, List[Node]]] = None

    @property
    def vfg(self) -> VFG:
        """The engine's graph, forcing a deferred one on first access."""
        if self._vfg is None:
            assert self._vfg_thunk is not None
            self._vfg = self._vfg_thunk()
            self._vfg_thunk = None
            self.stats.graph_nodes = self._vfg.num_nodes
        return self._vfg

    # -- public surface ------------------------------------------------
    def is_bottom(self, node: Optional[Node]) -> bool:
        """Γ(node) = ⊥?  Mirrors the oracle: constants (``None``) and
        the roots themselves are never ⊥."""
        if node is None or isinstance(node, Root):
            return False
        started = time.perf_counter()
        if TRACE.enabled:
            with TRACE.span("demand.query") as span:
                verdict, states, nodes, memo_hit, cutoff = self._search(
                    self._start_states(node)
                )
                span.tag(bottom=verdict, states=states, memo_hit=memo_hit)
        else:
            verdict, states, nodes, memo_hit, cutoff = self._search(
                self._start_states(node)
            )
        self.stats.note_query(
            bottom=verdict,
            states=states,
            nodes=nodes,
            memo_hit=memo_hit,
            early_cutoff=cutoff,
            seconds=time.perf_counter() - started,
        )
        self.stats.memo_entries = len(self._memo)
        return verdict

    def is_defined(self, node: Optional[Node]) -> bool:
        return not self.is_bottom(node)

    def query_nodes(self, nodes: Iterable[Optional[Node]]) -> Dict[Node, bool]:
        """Batched mode: Γ for many nodes, sharing one memo table.

        Returns ``{node: is_defined}``; ``None`` entries are skipped
        (constants are trivially defined).
        """
        verdicts: Dict[Node, bool] = {}
        for node in nodes:
            if node is None:
                continue
            verdicts[node] = self.is_defined(node)
        return verdicts

    def query_sites(
        self, sites: Sequence[CheckSite], jobs: Optional[int] = None
    ) -> Dict[int, bool]:
        """Γ per check site, keyed by instruction uid: an instruction is
        "defined" iff every checked operand node is ⊤.

        With ``jobs > 1`` (``None`` defers to the session default /
        ``REPRO_JOBS``) the sites fan out across a fork-start worker
        pool; each worker answers its share against the inherited memo
        snapshot and the tables merge on join, so this engine keeps
        (and later queries reuse) every verdict any worker proved.
        Verdicts are identical to the serial loop by construction.
        """
        sites = list(sites)
        jobs = min(resolve_jobs(jobs), len(sites))
        with TRACE.span("demand.query_sites", sites=len(sites), jobs=jobs):
            if jobs > 1 and fork_available():
                parallel = self._query_sites_parallel(sites, jobs)
                if parallel is not None:
                    return parallel
            verdicts: Dict[int, bool] = {}
            for site in sites:
                ok = self.is_defined(site.node)
                verdicts[site.instr_uid] = (
                    verdicts.get(site.instr_uid, True) and ok
                )
            return verdicts

    def _query_sites_parallel(
        self, sites: List[CheckSite], jobs: int
    ) -> Optional[Dict[int, bool]]:
        """Fan ``sites`` across ``jobs`` forked workers; ``None`` means
        a pool could not be created and the caller should run serially.
        """
        # Force a deferred VFG (the lazy tier's thunk) in the *parent*
        # before the pool forks: the workers then inherit the built
        # graph copy-on-write instead of each forcing a private copy
        # whose construction the parent never observes — the thunk must
        # run exactly once, in this process, regardless of jobs.
        self.vfg
        if self.resolver == "summary":
            # Build the reverse summaries once in the parent so every
            # worker inherits them instead of recomputing per process.
            self._reverse_summaries()
        global _FORK_ENGINE
        _FORK_ENGINE = self
        try:
            try:
                pool = fork_pool(jobs)
            except (OSError, AssertionError):
                return None
            # Round-robin striping spreads expensive neighbouring sites
            # across workers; verdict order does not matter because the
            # per-uid fold is an AND.
            chunks = [sites[offset::jobs] for offset in range(jobs)]
            with pool:
                replies = pool.map(_answer_chunk, chunks)
        finally:
            _FORK_ENGINE = None
        verdicts: Dict[int, bool] = {}
        for chunk_verdicts, memo, stats, spans in replies:
            # Union is the whole merge: verdicts are order-independent
            # graph properties, so overlapping entries always agree.
            self._memo.update(memo)
            self.stats.merge(stats)
            if TRACE.enabled and spans:
                TRACE.adopt(spans)
            for uid, ok in chunk_verdicts.items():
                verdicts[uid] = verdicts.get(uid, True) and ok
        self.stats.memo_entries = len(self._memo)
        self.stats.parallel_jobs = max(self.stats.parallel_jobs, jobs)
        self.stats.parallel_batches += 1
        return verdicts

    def gamma(self) -> "LazyDefinedness":
        """A :class:`Definedness`-compatible lazy view over this engine."""
        return LazyDefinedness(self)

    def find_bottom_chain(
        self, node: Optional[Node]
    ) -> Optional[List[Tuple[Node, Optional[Edge]]]]:
        """A shortest realizable F → ``node`` chain, or ``None`` if ⊤.

        Each element is ``(node, edge taken into it)`` in forward
        order, the F root first — the shape
        :func:`repro.vfg.explain.steps_from_chain` renders.  Only the
        backward slice of ``node`` is explored; ⊤-memoized states prune
        the search (sound: they lie on no ⊥-path), ⊥-memoized states
        are *not* spliced so the returned chain is complete and
        shortest.  Callstring mode only (summary-mode paths hop over
        summary edges, which are not concrete value flows).
        """
        if self.resolver != "callstring":
            raise ValueError("find_bottom_chain requires the callstring resolver")
        if node is None or isinstance(node, Root):
            return None
        from collections import deque

        started = time.perf_counter()
        start_states = self._start_states(node)
        parents: Dict[State, Tuple[Optional[State], Optional[Edge]]] = {
            s: (None, None) for s in start_states
        }
        queue = deque(start_states)
        touched: Set[Node] = set()
        expanded = 0
        goal: Optional[State] = None
        while queue:
            state = queue.popleft()
            expanded += 1
            touched.add(state[0])
            if self._accepting(state):
                goal = state
                break
            for pred, edge in self._predecessors(state):
                # ⊤-memoized states lie on no ⊥-path: prune.  ⊥-memoized
                # states are NOT spliced — the BFS must run through to F
                # so the chain is complete and shortest.
                if self._memo.get(pred) is False or pred in parents:
                    continue
                parents[pred] = (state, edge)
                queue.append(pred)
        if goal is not None:
            current2: Optional[State] = goal
            while current2 is not None:
                self._memo[current2] = True
                current2 = parents[current2][0]
        else:
            for state in parents:
                self._memo[state] = False
        self.stats.note_query(
            bottom=goal is not None,
            states=expanded,
            nodes=len(touched),
            memo_hit=False,
            early_cutoff=goal is not None and bool(queue),
            seconds=time.perf_counter() - started,
        )
        self.stats.memo_entries = len(self._memo)
        if goal is None:
            return None
        # The backward parent chain goal → query start *is* the forward
        # F → node path: walk it and emit (node, incoming edge) pairs.
        chain: List[Tuple[Node, Optional[Edge]]] = []
        current: Optional[State] = goal
        incoming: Optional[Edge] = None
        while current is not None:
            chain.append((current[0], incoming))
            nxt, edge = parents[current]
            incoming = edge
            current = nxt
        return chain

    # -- search core ---------------------------------------------------
    def _start_states(self, node: Node) -> List[State]:
        if self.resolver == "callstring":
            return [(node, ANY[0], ANY[1])]
        return [(node, 1), (node, 0)]

    def _accepting(self, state: State) -> bool:
        if self.resolver == "callstring":
            node, frames, _open = state
            return node == BOT and not frames
        return state == (BOT, 0)

    def _predecessors(self, state: State):
        """Backward expansion: exact preimages across incoming edges."""
        if self.resolver == "callstring":
            node, frames, open_ = state
            depth = self.context_depth
            for edge in self.vfg.deps_of(node):
                if depth == 0 or edge.kind == INTRA:
                    yield (edge.src, frames, open_), edge
                elif edge.kind == CALL:
                    for f, o in _call_preimages(
                        frames, open_, edge.callsite, depth
                    ):
                        yield (edge.src, f, o), edge
                elif edge.kind == RET:
                    for f, o in _ret_preimages(
                        frames, open_, edge.callsite, depth
                    ):
                        yield (edge.src, f, o), edge
            return
        # Summary mode: reversed two-phase automaton.
        node, phase = state
        for edge in self.vfg.deps_of(node):
            if edge.kind == INTRA:
                yield (edge.src, phase), edge
            elif edge.kind == RET:
                if phase == 0:
                    yield (edge.src, 0), edge
            elif edge.kind == CALL:
                if phase == 1:
                    yield (edge.src, 0), edge
                    yield (edge.src, 1), edge
        for src in self._reverse_summaries().get(node, ()):
            yield (src, phase), None

    def _reverse_summaries(self) -> Dict[Node, List[Node]]:
        if self._rev_summaries is None:
            from repro.vfg.tabulation import compute_summaries

            rev: Dict[Node, List[Node]] = {}
            for src, targets in compute_summaries(self.vfg).items():
                for dst in targets:
                    rev.setdefault(dst, []).append(src)
            self._rev_summaries = rev
        return self._rev_summaries

    def _search(
        self, starts: List[State]
    ) -> Tuple[bool, int, int, bool, bool]:
        """Memoized backward reachability to an accepting (F) state.

        Returns ``(verdict, states_expanded, nodes_touched, memo_hit,
        early_cutoff)``.
        """
        memo = self._memo
        known = [memo.get(s) for s in starts]
        if any(v is True for v in known):
            return True, 0, 0, True, False
        if all(v is False for v in known):
            return False, 0, 0, True, False

        parents: Dict[State, Optional[State]] = {}
        work: List[State] = []
        for state in starts:
            if memo.get(state) is False:
                continue
            parents[state] = None
            work.append(state)
        touched: Set[Node] = set()
        expanded = 0
        goal: Optional[State] = None
        while work:
            state = work.pop()
            verdict = memo.get(state)
            if verdict is True:
                goal = state  # splice into a previously proven ⊥-path
                break
            expanded += 1
            touched.add(state[0])
            if self._accepting(state):
                goal = state
                break
            for pred, _edge in self._predecessors(state):
                if pred in parents or memo.get(pred) is False:
                    continue
                parents[pred] = state
                work.append(pred)
        if goal is not None:
            # Everything on the chain from the query down to the goal
            # can reach an accepting state: memoize ⊥.
            current: Optional[State] = goal
            while current is not None:
                memo[current] = True
                current = parents[current]
            return True, expanded, len(touched), False, bool(work)
        # Exhausted: the whole explored closure is ⊥-free.
        for state in parents:
            memo[state] = False
        return False, expanded, len(touched), False, False


#: Fork-inherited engine for parallel ``query_sites``: set in the
#: parent immediately before the pool forks, read by workers from their
#: copy-on-write heap (the engine, its VFG and its memo snapshot are
#: never pickled).
_FORK_ENGINE: Optional[DemandEngine] = None


def _answer_chunk(
    chunk: List[CheckSite],
) -> Tuple[Dict[int, bool], Dict[State, bool], QueryStats, List[tuple]]:
    """Worker entry point: answer one stripe of check sites.

    Returns the stripe's verdicts, the memo entries this worker *added*
    on top of the inherited snapshot, a fresh stats object covering
    only this worker's queries (the parent merges it; reusing the
    inherited stats would double-count the pre-fork history), and the
    worker's finished trace spans (empty when tracing is off) for the
    parent to :meth:`~repro.obs.trace.Tracer.adopt`.
    """
    engine = _FORK_ENGINE
    assert engine is not None, "query worker started without fork context"
    inherited = set(engine._memo)
    engine.stats = QueryStats(
        resolver=engine.resolver,
        context_depth=engine.context_depth,
        graph_nodes=engine.vfg.num_nodes,
    )
    if TRACE.enabled:
        # Drop the fork-copied parent events; export only this
        # worker's spans for the parent to stitch back in.
        TRACE.clear()
    verdicts: Dict[int, bool] = {}
    with TRACE.span("demand.worker", sites=len(chunk)):
        for site in chunk:
            ok = engine.is_defined(site.node)
            verdicts[site.instr_uid] = (
                verdicts.get(site.instr_uid, True) and ok
            )
    fresh = {
        state: verdict
        for state, verdict in engine._memo.items()
        if state not in inherited
    }
    spans = TRACE.export_spans() if TRACE.enabled else []
    return verdicts, fresh, engine.stats, spans


class LazyDefinedness(Definedness):
    """A Γ that resolves nodes on demand through a :class:`DemandEngine`.

    Drop-in for :class:`~repro.vfg.definedness.Definedness` wherever
    only ``is_defined``/``gamma`` are consumed (guided instrumentation,
    DOT coloring).  ``bottom_nodes``/``count_bottom`` force the full
    graph through the engine (memoized, so no worse than one whole
    resolution) — prefer the eager resolvers when the full ⊥ set is the
    point.
    """

    def __init__(self, engine: DemandEngine) -> None:
        super().__init__(set(), engine.context_depth)
        self.engine = engine
        self._forced = False

    def is_defined(self, node: Optional[Node]) -> bool:
        if self._forced:
            return super().is_defined(node)
        return self.engine.is_defined(node)

    @property
    def bottom_nodes(self) -> Set[Node]:
        self._force()
        return set(self._bottom)

    def count_bottom(self) -> int:
        self._force()
        return len(self._bottom)

    def _force(self) -> None:
        if self._forced:
            return
        for node in self.engine.vfg.nodes():
            if self.engine.is_bottom(node):
                self._bottom.add(node)
        self._forced = True


def resolve_definedness_demand(
    vfg: VFG,
    context_depth: int = 1,
    resolver: str = "callstring",
    warm_sites: bool = True,
    jobs: Optional[int] = None,
) -> LazyDefinedness:
    """A lazy Γ over a fresh engine, optionally pre-answering every
    check site (the batched mode Opt II and ``run_usher`` use).

    ``jobs`` fans the warm-up batch across worker processes (``None``
    defers to the session default / ``REPRO_JOBS``); the verdicts are
    identical either way.
    """
    engine = DemandEngine(vfg, context_depth=context_depth, resolver=resolver)
    if warm_sites:
        engine.query_sites(vfg.check_sites, jobs=jobs)
    return engine.gamma()
