"""Explain why a value may be undefined: shortest realizable F-path.

Given a ⊥ node (typically a critical use the analysis kept a check
for), finds a shortest *realizable* value-flow path from the F root —
the same call/return-matched traversal definedness resolution performs,
with parent links — and renders it step by step with source lines.
This is the diagnostic companion to a warning: not just *where* an
undefined value was used, but *how* it got there.

Two path finders produce the same renderable chain shape:

* :func:`explain_undefined` — the original forward BFS from F (visits
  the whole reachable state space up to the target; kept as the
  oracle);
* the demand engine's backward slice
  (:meth:`repro.vfg.demand.DemandEngine.find_bottom_chain`), rendered
  through :func:`steps_from_chain` — what ``repro check --explain``
  uses, visiting only the target's backward slice.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.module import Module
from repro.vfg.definedness import step_context
from repro.vfg.graph import BOT, CALL, RET, Edge, MemNode, Node, Root, TopNode, VFG

Context = Tuple[int, ...]
State = Tuple[Node, Context]


@dataclass
class FlowStep:
    """One hop of the explanation."""

    node: Node
    kind: str  # def-site kind tag
    line: Optional[int]
    description: str
    edge_kind: str = "intra"

    def render(self) -> str:
        where = f"line {self.line}" if self.line is not None else "        "
        arrow = {
            CALL: "  ↳ into call",
            RET: "  ↰ back out",
        }.get(self.edge_kind, "")
        return f"  {where:>9} | {self.description}{arrow}"


def explain_undefined(
    vfg: VFG,
    module: Module,
    target: Node,
    context_depth: int = 1,
    max_steps: int = 50,
) -> Optional[List[FlowStep]]:
    """The shortest realizable F → ``target`` path, or ``None`` if the
    node is not reachable from F (i.e. it is defined)."""
    parents: Dict[State, Tuple[Optional[State], Optional[Edge]]] = {}
    start: State = (BOT, ())
    parents[start] = (None, None)
    queue: deque = deque([start])
    goal: Optional[State] = None
    while queue:
        node, ctx = queue.popleft()
        if node == target:
            goal = (node, ctx)
            break
        for edge in vfg.flows_of(node):
            next_ctx = step_context(ctx, edge.kind, edge.callsite, context_depth)
            if next_ctx is None:
                continue
            state = (edge.dst, next_ctx)
            if state not in parents:
                parents[state] = ((node, ctx), edge)
                queue.append(state)
    if goal is None:
        return None

    # Reconstruct.
    chain: List[Tuple[Node, Optional[Edge]]] = []
    state: Optional[State] = goal
    while state is not None:
        parent, edge = parents[state]
        chain.append((state[0], edge))
        state = parent
    chain.reverse()
    return steps_from_chain(chain, vfg, module, max_steps=max_steps)


def steps_from_chain(
    chain: List[Tuple[Node, Optional[Edge]]],
    vfg: VFG,
    module: Module,
    max_steps: int = 50,
) -> List[FlowStep]:
    """Render a forward F → target chain of ``(node, incoming edge)``
    pairs — the shape both path finders produce — as flow steps."""
    by_uid = module.instr_by_uid()
    steps: List[FlowStep] = []
    for node, edge in chain[: max_steps + 1]:
        uid, kind = vfg.def_site.get(node, (None, "unknown"))
        instr = by_uid.get(uid) if uid is not None else None
        steps.append(
            FlowStep(
                node=node,
                kind=kind,
                line=getattr(instr, "line", None),
                description=_describe(node, kind, instr),
                edge_kind=edge.kind if edge is not None else "intra",
            )
        )
    return steps


def _describe(node: Node, kind: str, instr) -> str:
    if isinstance(node, Root):
        return "undefined value originates (F root)"
    if kind == "undef":
        return f"{_name(node)} is read before any assignment"
    if kind == "param":
        return f"enters {getattr(node, 'func', '?')}() as parameter {_name(node)}"
    if kind == "entry":
        return f"memory state enters {getattr(node, 'func', '?')}()"
    if kind == "chi_alloc" and instr is not None:
        return f"allocated uninitialized at `{instr}`"
    if kind and kind.startswith("chi_store") and instr is not None:
        return f"stored into memory at `{instr}`"
    if kind == "chi_call" and instr is not None:
        return f"memory state returns from `{instr}`"
    if kind == "memphi":
        return f"memory states merge ({_name(node)})"
    if kind == "phi" and instr is not None:
        return f"control-flow paths merge at `{instr}`"
    if instr is not None:
        return f"flows through `{instr}`"
    return f"flows through {_name(node)}"


def _name(node: Node) -> str:
    return str(node)


def explain_undefined_demand(
    engine,
    module: Module,
    target: Node,
    max_steps: int = 50,
) -> Optional[List[FlowStep]]:
    """Demand-driven twin of :func:`explain_undefined`: the same
    shortest realizable F → ``target`` path, found by backward-slicing
    only ``target``'s dependence cone through a
    :class:`~repro.vfg.demand.DemandEngine`."""
    chain = engine.find_bottom_chain(target)
    if chain is None:
        return None
    return steps_from_chain(chain, engine.vfg, module, max_steps=max_steps)


def explain_check_site(
    vfg: VFG,
    module: Module,
    instr_uid: int,
    context_depth: int = 1,
    engine=None,
) -> Optional[List[FlowStep]]:
    """Explain the first ⊥ critical use at instruction ``instr_uid``.

    With ``engine`` (a :class:`~repro.vfg.demand.DemandEngine` over
    ``vfg``) the path is found demand-driven; otherwise by the
    whole-graph forward BFS.
    """
    for site in vfg.check_sites:
        if site.instr_uid == instr_uid and site.node is not None:
            if engine is not None:
                steps = explain_undefined_demand(engine, module, site.node)
            else:
                steps = explain_undefined(vfg, module, site.node, context_depth)
            if steps is not None:
                return steps
    return None
