"""Array initialization-loop analysis (the paper's future work, §6).

Collapsed arrays are the biggest precision loss of the offset-based
memory model: a single store can never strongly update the one
location that stands for all cells, so ``malloc``'d arrays stay
⊥ forever even when the program initializes every cell before reading
any ("memset-by-loop", the dominant idiom in C).  The paper's
conclusion names "new techniques for handling arrays and heap objects"
as future work; this module implements one.

A *canonical initialization loop* is recognized structurally:

.. code-block:: none

    x := alloc_F ρ (array[N])         ; same function, single object
    ...
    H:  i := φ(0, i')                 ; induction from 0
        if i < C goto BODY else EXIT  ; constant bound C >= N
    BODY:
        t := gep x, i                 ; address derived from x by i
        *t := v                       ; executes on every iteration
        ...
        i' := i + 1                   ; unit stride
        goto H

with the safety conditions:

- the loop body never *reads* the array (no μ of ρ at loads, and no
  call in the body may reference or modify ρ);
- the covering store dominates the loop latch (it executes each
  iteration — a conditional store could skip cells);
- the allocation produced a *single* abstract object (no heap clones:
  the cut below would bypass other call sites' pre-states), and either
  the owning function is ``main`` or the object is a non-escaping
  stack array (otherwise instances from earlier invocations of the
  owner are merged into the same abstract location and their possibly
  undefined state must not be bypassed).

When the pattern holds, every cell is overwritten before the loop
exits, so the value flow entering the loop-header memory φ from the
*preheader* (which carries the allocation's undefined state) can be
cut — the array-granularity analogue of the paper's semi-strong update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ir import instructions as ins
from repro.ir.cfg import CFG
from repro.ir.dominance import DominatorTree
from repro.ir.function import Block, Function
from repro.ir.module import Module
from repro.ir.values import Const, Var
from repro.analysis.andersen import PointerResult
from repro.analysis.memobjects import STACK, MemLoc


@dataclass(frozen=True)
class ArrayInitLoop:
    """One proven initialization loop.

    ``loc`` is the collapsed array location; the cut removes the
    value-flow edge from version ``pre_version`` into the loop-header
    memory φ defining ``phi_version``.
    """

    function: str
    loc: MemLoc
    header_label: str
    pre_version: int
    phi_version: int


def find_array_init_loops(
    module: Module,
    pointers: PointerResult,
    escaping: "frozenset",
) -> List[ArrayInitLoop]:
    """Find all canonical initialization loops in ``module``.

    ``escaping`` is the escaping-object set from mod/ref analysis.
    Requires the module to be in memory-SSA form.
    """
    found: List[ArrayInitLoop] = []
    for function in module.functions.values():
        found.extend(_scan_function(module, function, pointers, escaping))
    return found


def _scan_function(
    module: Module,
    function: Function,
    pointers: PointerResult,
    escaping,
) -> List[ArrayInitLoop]:
    cfg = CFG(function)
    dt = DominatorTree(function)
    by_name: Dict[Tuple[str, int], ins.Instr] = {}
    for instr in function.instructions():
        for var in instr.defs():
            by_name[(var.name, var.version or 0)] = instr

    results: List[ArrayInitLoop] = []
    for header in function.blocks:
        loop = _match_loop_shape(function, cfg, dt, header, by_name)
        if loop is None:
            continue
        body_blocks, pre_label, latch, induction, bound = loop
        results.extend(
            _match_init_stores(
                module,
                function,
                dt,
                header,
                body_blocks,
                pre_label,
                latch,
                induction,
                bound,
                by_name,
                pointers,
                escaping,
            )
        )
    return results


def _match_loop_shape(
    function: Function,
    cfg: CFG,
    dt: DominatorTree,
    header: Block,
    by_name,
) -> Optional[Tuple[Set[str], str, str, Var, int]]:
    """Match ``i := φ(0, i+1); if i < C`` at ``header``.

    Returns (body block labels, preheader label, latch label,
    induction var def, constant bound) or None.
    """
    term = header.instrs[-1] if header.instrs else None
    if not isinstance(term, ins.Branch) or not isinstance(term.cond, Var):
        return None
    cond_def = by_name.get((term.cond.name, term.cond.version or 0))
    if not (
        isinstance(cond_def, ins.BinOp)
        and cond_def.op == "<"
        and isinstance(cond_def.lhs, Var)
        and isinstance(cond_def.rhs, Const)
        and cond_def.block is header
    ):
        return None
    bound = cond_def.rhs.value
    induction_use = cond_def.lhs
    phi = by_name.get((induction_use.name, induction_use.version or 0))
    # The condition may read the φ through copies.
    seen = set()
    while isinstance(phi, ins.Copy) and isinstance(phi.src, Var):
        key = (phi.src.name, phi.src.version or 0)
        if key in seen:
            return None
        seen.add(key)
        phi = by_name.get(key)
    if not isinstance(phi, ins.Phi) or phi.block is not header:
        return None
    preds = cfg.preds[header.label]
    if len(preds) != 2 or set(phi.incomings) != set(preds):
        return None
    latch = next(
        (p for p in preds if dt.dominates(header.label, p)), None
    )
    if latch is None:
        return None
    pre_label = next(p for p in preds if p != latch)
    # Initial value 0 from the preheader (possibly through copies of a
    # constant definition).
    init = phi.incomings[pre_label]
    if not _is_const_zero(by_name, init):
        return None
    # Unit stride from the latch.
    step_value = phi.incomings[latch]
    if not isinstance(step_value, Var):
        return None
    step_def = by_name.get((step_value.name, step_value.version or 0))
    while isinstance(step_def, ins.Copy) and isinstance(step_def.src, Var):
        step_def = by_name.get((step_def.src.name, step_def.src.version or 0))
    if not (
        isinstance(step_def, ins.BinOp)
        and step_def.op == "+"
        and _is_phi_value(by_name, step_def, phi.dst)
        and _plus_one(step_def)
    ):
        return None
    # Natural loop of the back edge latch -> header.
    body = _natural_loop(cfg, header.label, latch)
    # The loop must exit to outside.
    if term.then_label not in body and term.else_label not in body:
        return None
    return body, pre_label, latch, phi.dst, bound



def _is_const_zero(by_name, value) -> bool:
    """Whether ``value`` is the constant 0, possibly through copies."""
    if isinstance(value, Const):
        return value.value == 0
    if not isinstance(value, Var):
        return False
    root = _root_var(by_name, value)
    instr = by_name.get((root.name, root.version or 0))
    if isinstance(instr, ins.ConstCopy):
        return instr.value == 0
    if isinstance(instr, ins.Copy) and isinstance(instr.src, Const):
        return instr.src.value == 0
    return False


def _root_var(by_name, var: Var) -> Var:
    """Resolve top-level copies back to the defining variable."""
    seen = set()
    current = var
    while True:
        key = (current.name, current.version or 0)
        if key in seen:
            return current
        seen.add(key)
        instr = by_name.get(key)
        if isinstance(instr, ins.Copy) and isinstance(instr.src, Var):
            current = instr.src
            continue
        return current


def _is_phi_value(by_name, binop: ins.BinOp, phi_dst: Var) -> bool:
    for operand in (binop.lhs, binop.rhs):
        if isinstance(operand, Var) and _root_var(by_name, operand) == phi_dst:
            return True
    return False


def _plus_one(binop: ins.BinOp) -> bool:
    return (isinstance(binop.rhs, Const) and binop.rhs.value == 1) or (
        isinstance(binop.lhs, Const) and binop.lhs.value == 1
    )


def _natural_loop(cfg: CFG, header: str, latch: str) -> Set[str]:
    body = {header, latch}
    work = [latch]
    while work:
        label = work.pop()
        for pred in cfg.preds[label]:
            if pred not in body:
                body.add(pred)
                work.append(pred)
    return body


def _match_init_stores(
    module: Module,
    function: Function,
    dt: DominatorTree,
    header: Block,
    body: Set[str],
    pre_label: str,
    latch: str,
    induction: Var,
    bound: int,
    by_name,
    pointers: PointerResult,
    escaping,
) -> List[ArrayInitLoop]:
    func = function.name
    results: List[ArrayInitLoop] = []
    if not header.mem_phis:
        return results

    # Candidate covering stores: *gep(x, i) := v inside the body,
    # dominating the latch.
    for block in function.blocks:
        if block.label not in body or block.label == header.label:
            continue
        for store in block.instrs:
            if not isinstance(store, ins.Store) or not isinstance(store.ptr, Var):
                continue
            gep = by_name.get((store.ptr.name, store.ptr.version or 0))
            if not (
                isinstance(gep, ins.Gep)
                and isinstance(gep.offset, Var)
                and _root_var(by_name, gep.offset) == induction
                and isinstance(gep.base, Var)
            ):
                continue
            alloc = _trace_alloc(by_name, gep.base)
            if alloc is None or not alloc.is_array or alloc.size > bound:
                continue
            objects = pointers.alloc_objects.get(alloc.uid, [])
            if len(objects) != 1:
                continue  # heap clones: other call sites' state at risk
            obj = objects[0]
            if not (
                func == "main"
                or (obj.kind == STACK and obj not in escaping)
            ):
                continue
            if not dt.dominates(block.label, latch):
                continue  # a conditional store could skip cells
            loc = MemLoc(obj, 0)
            if _loop_reads_loc(module, function, body, header, loc):
                continue
            phi = next(
                (mp for mp in header.mem_phis if mp.loc == loc), None
            )
            if phi is None or pre_label not in phi.incomings:
                continue
            results.append(
                ArrayInitLoop(
                    function=func,
                    loc=loc,
                    header_label=header.label,
                    pre_version=phi.incomings[pre_label],
                    phi_version=phi.new_version,
                )
            )
    return results


def _trace_alloc(by_name, var: Var) -> Optional[ins.Alloc]:
    """Follow top-level copies from ``var`` back to an Alloc, or None."""
    seen = set()
    current = var
    while True:
        key = (current.name, current.version or 0)
        if key in seen:
            return None
        seen.add(key)
        instr = by_name.get(key)
        if isinstance(instr, ins.Alloc):
            return instr
        if isinstance(instr, ins.Copy) and isinstance(instr.src, Var):
            current = instr.src
            continue
        return None


def _loop_reads_loc(
    module: Module,
    function: Function,
    body: Set[str],
    header: Block,
    loc: MemLoc,
) -> bool:
    """Whether the loop (body or header) may read ``loc``."""
    for block in function.blocks:
        if block.label not in body:
            continue
        for instr in block.instrs:
            if isinstance(instr, ins.Load):
                if any(mu.loc == loc for mu in instr.mus):
                    return True
            elif isinstance(instr, ins.Call):
                if any(mu.loc == loc for mu in instr.mus) or any(
                    chi.loc == loc for chi in instr.chis
                ):
                    return True
    return False
