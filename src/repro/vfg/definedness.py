"""Definedness resolution (§3.3).

The definedness Γ of every VFG node is resolved by graph reachability
from the F root: Γ(v) = ⊥ if undefinedness can flow into v, and ⊤
otherwise.  Interprocedural flows are matched context-sensitively in the
standard call-string manner: entering a callee pushes the call site,
leaving pops it, and only matching call/return pairs are traversed.
Call strings are truncated at ``context_depth`` (the paper configures
1-callsite sensitivity); a truncated (empty) string may return to any
call site, which is sound.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.vfg.graph import BOT, CALL, RET, Node, VFG

Context = Tuple[int, ...]


class Definedness:
    """The Γ function: maps VFG nodes to ⊥ (maybe-undefined) or ⊤."""

    def __init__(self, bottom: Set[Node], context_depth: int) -> None:
        self._bottom = bottom
        self.context_depth = context_depth

    def is_defined(self, node: Optional[Node]) -> bool:
        """Γ(node) = ⊤?  Constants (``None``) are always defined."""
        if node is None:
            return True
        return node not in self._bottom

    def gamma(self, node: Optional[Node]) -> str:
        return "⊤" if self.is_defined(node) else "⊥"

    @property
    def bottom_nodes(self) -> Set[Node]:
        return set(self._bottom)

    def count_bottom(self) -> int:
        return len(self._bottom)


def resolve_definedness(vfg: VFG, context_depth: int = 1) -> Definedness:
    """Compute Γ by context-sensitive forward reachability from F."""
    if context_depth < 0:
        raise ValueError("context_depth must be >= 0")
    bottom: Set[Node] = set()
    empty: Context = ()
    seen: Set[Tuple[Node, Context]] = {(BOT, empty)}
    work: List[Tuple[Node, Context]] = [(BOT, empty)]
    while work:
        node, ctx = work.pop()
        bottom.add(node)
        for edge in vfg.flows_of(node):
            next_ctx = step_context(ctx, edge.kind, edge.callsite, context_depth)
            if next_ctx is None:
                continue  # mismatched return: unrealizable path
            state = (edge.dst, next_ctx)
            if state not in seen:
                seen.add(state)
                work.append(state)
    bottom.discard(BOT)
    return Definedness(bottom, context_depth)


def step_context(
    ctx: Context, kind: str, callsite: Optional[int], depth: int
) -> Optional[Context]:
    """Advance a k-limited call string across one value-flow edge.

    The single transition function both the whole-program resolution and
    the demand engine's backward preimages are defined against: ``CALL``
    pushes the call site (truncating at ``depth``), ``RET`` pops a
    matching site (``None`` = unrealizable), everything else is a
    no-op.  A truncated (empty) string may return to any call site.
    """
    if kind == CALL:
        if depth == 0:
            return ctx
        return ((callsite,) + ctx)[:depth]
    if kind == RET:
        if depth == 0:
            return ctx
        if not ctx:
            return ctx  # truncated/unknown caller: any return is allowed
        if ctx[0] == callsite:
            return ctx[1:]
        return None
    return ctx


#: Back-compat alias (pre-demand-engine internal name).
_step = step_context
