"""Value-flow graph construction (the "Building VFG" phase, §3.2).

Builds the interprocedural VFG from a module in memory-SSA form.  The
distinguishing feature (and the paper's novelty in this phase) is the
treatment of stores, with three update flavors:

- **strong**: the pointer uniquely targets one concrete location — the
  old value flow is killed;
- **semi-strong**: the pointer provably derives from a dominating
  allocation site of the target object — the old flow is redirected to
  the allocation's *incoming* version, bypassing the
  undefined-at-allocation state (Figure 6);
- **weak**: everything else — old and new flows merge.

The semi-strong rule here carries one extra soundness guard on top of the
paper's description: the store's χ must consume exactly the version the
allocation's χ produced (no intervening indirect writes to the object
between allocation and store), which is the situation of Figure 6.

With ``address_taken=False`` the builder produces the Usher_TL graph:
address-taken memory collapses into a single summary node that every
store writes and every load reads, modelling "top-level variables only".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import instructions as ins
from repro.ir.dominance import DominatorTree, loop_blocks
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Const, Value, Var
from repro.analysis.andersen import PointerResult
from repro.analysis.callgraph import CallGraph
from repro.analysis.memobjects import GLOBAL, HEAP, STACK, MemLoc
from repro.analysis.modref import ModRefResult
from repro.vfg.graph import (
    BOT,
    CALL,
    MEM_SUMMARY,
    RET,
    TOP,
    CheckSite,
    MemNode,
    Node,
    TopNode,
    VFG,
)


def is_concrete_loc(
    loc: MemLoc,
    module: Module,
    recursive_functions: "Set[str]",
    loops_by_function: Optional[Dict[str, Set[str]]] = None,
) -> bool:
    """Whether ``loc`` denotes exactly one concrete memory cell.

    Globals do; stack objects do unless their function is recursive or
    the allocation sits in a loop; heap objects never do (older
    instances of the abstract object may still be alive).
    """
    obj = loc.obj
    if obj.is_array:
        return False
    if obj.kind == GLOBAL:
        return True
    if obj.kind != STACK:
        return False
    if obj.func in recursive_functions:
        return False
    if obj.alloc_uid is None:
        return False
    instr = module.instr_by_uid().get(obj.alloc_uid)
    if instr is None or instr.block is None:
        return False
    owner = instr.block.function.name
    if loops_by_function is not None:
        loops = loops_by_function.get(owner, set())
    else:
        loops = loop_blocks(module.functions[owner])
    return instr.block.label not in loops


def build_vfg(
    module: Module,
    pointers: PointerResult,
    callgraph: CallGraph,
    modref: ModRefResult,
    address_taken: bool = True,
    semi_strong: bool = True,
    array_init: bool = False,
) -> VFG:
    """Build the VFG of ``module`` (which must be in memory-SSA form).

    ``array_init`` additionally enables the initialization-loop analysis
    for collapsed arrays (:mod:`repro.vfg.arrayinit` — an extension
    beyond the paper, from its stated future work)."""
    return _Builder(
        module, pointers, callgraph, modref, address_taken, semi_strong,
        array_init,
    ).build()


class _Builder:
    def __init__(
        self,
        module: Module,
        pointers: PointerResult,
        callgraph: CallGraph,
        modref: ModRefResult,
        address_taken: bool,
        semi_strong: bool,
        array_init: bool = False,
    ) -> None:
        self.module = module
        self.pointers = pointers
        self.callgraph = callgraph
        self.modref = modref
        self.address_taken = address_taken
        self.semi_strong = semi_strong
        self.array_init = array_init
        self.vfg = VFG(address_taken)
        self._undef_nodes: Set[Node] = set()
        #: (func, var name, version) -> defining instruction
        self._top_defs: Dict[Tuple[str, str, int], ins.Instr] = {}
        self._dom: Dict[str, DominatorTree] = {}
        self._loops: Dict[str, Set[str]] = {}
        self._derive_cache: Dict[Tuple[str, str, int, int], bool] = {}

    # ------------------------------------------------------------------
    def build(self) -> VFG:
        for function in self.module.functions.values():
            self._dom[function.name] = DominatorTree(function)
            self._loops[function.name] = loop_blocks(function)
            for instr in function.instructions():
                for var in instr.defs():
                    self._top_defs[(function.name, var.name, var.version)] = instr
        for function in self.module.functions.values():
            self._build_function(function)
        self._seed_main_entry()
        for node in self._undef_nodes:
            self.vfg.add_edge(BOT, node)
            self.vfg.record_def(node, None, "undef")
        if self.array_init and self.address_taken:
            self._apply_array_init()
        return self.vfg

    def _apply_array_init(self) -> None:
        """Cut the preheader flow into proven initialization loops'
        memory φs (see :mod:`repro.vfg.arrayinit`)."""
        from repro.vfg.arrayinit import find_array_init_loops

        loops = find_array_init_loops(
            self.module, self.pointers, self.modref.escaping
        )
        for loop in loops:
            phi_node = MemNode(loop.function, loop.loc, loop.phi_version)
            pre_node = MemNode(loop.function, loop.loc, loop.pre_version)
            self.vfg.stats.array_init_cuts += self.vfg.remove_edges_between(
                pre_node, phi_node
            )

    # ------------------------------------------------------------------
    # Node helpers
    # ------------------------------------------------------------------
    def _top(self, func: str, var: Var) -> TopNode:
        node = TopNode(func, var.name, var.version or 0)
        if node.version == 0:
            self._undef_nodes.add(node)
        return node

    def _mem(self, func: str, loc: MemLoc, version: Optional[int]) -> Node:
        if not self.address_taken:
            return MEM_SUMMARY
        node = MemNode(func, loc, version or 0)
        if node.version == 0:
            self._undef_nodes.add(node)
        return node

    def _val(self, func: str, value: Value) -> Node:
        if isinstance(value, Const):
            return TOP
        return self._top(func, value)

    # ------------------------------------------------------------------
    def _seed_main_entry(self) -> None:
        """Root the program-entry state.

        ``main``'s formals and virtual input parameters have no caller:
        globals start in their C-initialized state; non-global locations
        (not yet allocated when ``main`` starts) are unreadable, hence ⊤.
        """
        if "main" not in self.module.functions:
            return
        main = self.module.functions["main"]
        for param in main.params:
            node = TopNode("main", param, 1)
            self.vfg.add_edge(TOP, node)
            self.vfg.record_def(node, None, "param")
        if not self.address_taken:
            # The summary memory absorbs the globals' initial states.
            for glob in self.module.globals.values():
                root = TOP if glob.initialized else BOT
                self.vfg.add_edge(root, MEM_SUMMARY)
            return
        for loc, version in main.entry_versions.items():
            node = self._mem("main", loc, version)
            if loc.obj.kind == GLOBAL and not loc.obj.initialized:
                self.vfg.add_edge(BOT, node)
            else:
                self.vfg.add_edge(TOP, node)
            self.vfg.record_def(node, None, "entry")

    # ------------------------------------------------------------------
    def _build_function(self, function: Function) -> None:
        func = function.name
        for block in function.blocks:
            if self.address_taken:
                for mphi in block.mem_phis:
                    new = self._mem(func, mphi.loc, mphi.new_version)
                    self.vfg.record_def(new, None, "memphi")
                    for version in mphi.incomings.values():
                        self.vfg.add_edge(self._mem(func, mphi.loc, version), new)
            for instr in block.instrs:
                self._build_instr(func, instr)

    def _build_instr(self, func: str, instr: ins.Instr) -> None:
        vfg = self.vfg
        if isinstance(instr, ins.ConstCopy):
            dst = self._top(func, instr.dst)
            vfg.add_edge(TOP, dst)
            vfg.record_def(dst, instr.uid, "const")
        elif isinstance(instr, ins.Copy):
            dst = self._top(func, instr.dst)
            vfg.add_edge(self._val(func, instr.src), dst)
            vfg.record_def(dst, instr.uid, "copy")
        elif isinstance(instr, ins.UnOp):
            dst = self._top(func, instr.dst)
            vfg.add_edge(self._val(func, instr.operand), dst)
            vfg.record_def(dst, instr.uid, "unop")
        elif isinstance(instr, ins.BinOp):
            dst = self._top(func, instr.dst)
            vfg.add_edge(self._val(func, instr.lhs), dst)
            vfg.add_edge(self._val(func, instr.rhs), dst)
            vfg.record_def(dst, instr.uid, "binop")
        elif isinstance(instr, ins.Gep):
            dst = self._top(func, instr.dst)
            vfg.add_edge(self._val(func, instr.base), dst)
            vfg.add_edge(self._val(func, instr.offset), dst)
            vfg.record_def(dst, instr.uid, "gep")
        elif isinstance(instr, (ins.GlobalAddr, ins.FuncAddr)):
            dst = self._top(func, instr.dst)
            vfg.add_edge(TOP, dst)
            vfg.record_def(dst, instr.uid, "addr")
        elif isinstance(instr, ins.Alloc):
            self._build_alloc(func, instr)
        elif isinstance(instr, ins.Load):
            self._build_load(func, instr)
        elif isinstance(instr, ins.Store):
            self._build_store(func, instr)
        elif isinstance(instr, ins.Call):
            self._build_call(func, instr)
        elif isinstance(instr, ins.Phi):
            dst = self._top(func, instr.dst)
            for value in instr.incomings.values():
                vfg.add_edge(self._val(func, value), dst)
            vfg.record_def(dst, instr.uid, "phi")
        # Branch / Jump / Ret / Output define nothing.
        self._collect_checks(func, instr)

    def _collect_checks(self, func: str, instr: ins.Instr) -> None:
        critical = getattr(instr, "critical_uses", None)
        if critical is None:
            return
        for operand in critical():
            if isinstance(operand, Var):
                node: Optional[Node] = self._top(func, operand)
            else:
                node = None  # constants are always defined
            self.vfg.check_sites.append(
                CheckSite(instr.uid, func, node, str(operand))
            )

    # ------------------------------------------------------------------
    def _build_alloc(self, func: str, instr: ins.Alloc) -> None:
        vfg = self.vfg
        dst = self._top(func, instr.dst)
        vfg.add_edge(TOP, dst)  # the pointer itself is defined
        vfg.record_def(dst, instr.uid, "alloc")
        init_root = TOP if instr.initialized else BOT
        if not self.address_taken:
            vfg.add_edge(init_root, MEM_SUMMARY)
            return
        for chi in instr.chis:
            new = self._mem(func, chi.loc, chi.new_version)
            old = self._mem(func, chi.loc, chi.old_version)
            vfg.add_edge(init_root, new)
            vfg.add_edge(old, new)
            vfg.record_def(new, instr.uid, "chi_alloc")
        if instr.kind == HEAP and not instr.is_array:
            vfg.stats.heap_alloc_sites += 1

    def _build_load(self, func: str, instr: ins.Load) -> None:
        vfg = self.vfg
        dst = self._top(func, instr.dst)
        vfg.record_def(dst, instr.uid, "load")
        if not self.address_taken:
            vfg.add_edge(MEM_SUMMARY, dst)
            return
        for mu in instr.mus:
            vfg.add_edge(self._mem(func, mu.loc, mu.version), dst)

    def _build_store(self, func: str, instr: ins.Store) -> None:
        vfg = self.vfg
        vfg.stats.stores_total += 1
        value_node = self._val(func, instr.value)
        if not self.address_taken:
            vfg.add_edge(value_node, MEM_SUMMARY)
            return
        singleton = len(instr.chis) == 1
        strong_done = False
        singleton_weak = False
        for chi in instr.chis:
            new = self._mem(func, chi.loc, chi.new_version)
            old = self._mem(func, chi.loc, chi.old_version)
            vfg.add_edge(value_node, new)
            if singleton and self._strong_ok(func, chi.loc):
                # Strong update: the old flow is killed.
                vfg.record_def(new, instr.uid, "chi_store_strong")
                strong_done = True
                continue
            bypass = self._semi_strong_target(func, instr, chi)
            if bypass is not None:
                # Semi-strong update: bypass the allocation's fresh state.
                vfg.add_edge(self._mem(func, chi.loc, bypass), new)
                vfg.record_def(new, instr.uid, "chi_store_semi")
                vfg.stats.semi_strong_applied += 1
            else:
                vfg.add_edge(old, new)
                vfg.record_def(new, instr.uid, "chi_store_weak")
                if singleton:
                    singleton_weak = True
        if strong_done:
            vfg.stats.stores_strong += 1
        elif singleton_weak or (singleton and not strong_done):
            vfg.stats.stores_singleton_weak += 1

    def _strong_ok(self, func: str, loc: MemLoc) -> bool:
        """Whether the location is a unique concrete cell (strong update).

        Globals are; stack objects are unless their function is recursive
        (several frames alive) or the allocation sits in a loop; heap
        objects never are (old instances stay alive).
        """
        return is_concrete_loc(
            loc,
            self.module,
            self.callgraph.recursive,
            self._loops,
        )

    def _alloc_instr(self, uid: Optional[int]) -> Optional[ins.Alloc]:
        if uid is None:
            return None
        if not hasattr(self, "_by_uid"):
            self._by_uid = self.module.instr_by_uid()
        instr = self._by_uid.get(uid)
        return instr if isinstance(instr, ins.Alloc) else None

    def _semi_strong_target(
        self, func: str, store: ins.Store, chi: ins.Chi
    ) -> Optional[int]:
        """The version to redirect the old flow to, or ``None``.

        Applicable when (a) the target object is allocated in this very
        function, (b) the store's pointer provably derives from the
        allocation's result (the paper's "ẑ dominates x̂ in the VFG"),
        and (c) the store consumes exactly the version the allocation
        defined — so the only state bypassed is the allocation's fresh
        (possibly undefined) contents, which the store overwrites.
        """
        if not self.semi_strong:
            return None
        obj = chi.loc.obj
        if obj.is_array:
            # A collapsed array location stands for many cells; the
            # store overwrites only one, so the allocation's undefined
            # state cannot be bypassed for the others.
            return None
        if obj.func != func or obj.alloc_uid is None:
            return None
        alloc = self._alloc_instr(obj.alloc_uid)
        if alloc is None or alloc.block is None:
            return None
        if alloc.block.function.name != func:
            return None
        alloc_chi = next((c for c in alloc.chis if c.loc == chi.loc), None)
        if alloc_chi is None:
            return None
        if alloc_chi.new_version != chi.old_version:
            return None
        if not isinstance(store.ptr, Var):
            return None
        if not self._derives_only_from(func, store.ptr, alloc.dst):
            return None
        if not self._dom[func].instr_dominates(alloc, store):
            return None
        return alloc_chi.old_version

    def _derives_only_from(self, func: str, var: Var, source: Var) -> bool:
        """Whether every value of ``var`` flows through top-level variable
        ``source`` (the VFG-dominance condition of §3.2), following only
        top-level copies, geps and φs.

        Cycles (φ loops) are resolved optimistically — a cycle introduces
        no value source of its own.
        """
        state: Dict[Tuple[str, int], bool] = {}

        def walk(v: Var) -> bool:
            if v.name == source.name and v.version == source.version:
                return True
            key = (v.name, v.version or 0)
            if key in state:
                return state[key]
            state[key] = True  # optimistic for cycles
            instr = self._top_defs.get((func, v.name, v.version or 0))
            if isinstance(instr, ins.Copy) and isinstance(instr.src, Var):
                result = walk(instr.src)
            elif isinstance(instr, ins.Gep) and isinstance(instr.base, Var):
                result = walk(instr.base)
            elif isinstance(instr, ins.Phi):
                result = all(
                    isinstance(value, Var) and walk(value)
                    for value in instr.incomings.values()
                )
            else:
                result = False
            state[key] = result
            return result

        return walk(var)

    # ------------------------------------------------------------------
    def _build_call(self, func: str, instr: ins.Call) -> None:
        vfg = self.vfg
        callees = sorted(self.callgraph.callees.get(instr.uid, ()))
        cs = instr.uid

        if instr.dst is not None:
            dst = self._top(func, instr.dst)
            vfg.record_def(dst, instr.uid, "call")
            if not callees:
                vfg.add_edge(TOP, dst)

        #: caller-side current version per location at this call site
        caller_version: Dict[MemLoc, int] = {}
        for mu in instr.mus:
            caller_version[mu.loc] = mu.version or 0
        for chi in instr.chis:
            caller_version[chi.loc] = chi.old_version or 0

        for callee_name in callees:
            callee = self.module.functions[callee_name]
            # Actual arguments -> formal parameters.
            for formal, actual in zip(callee.params, instr.args):
                formal_node = TopNode(callee_name, formal, 1)
                vfg.add_edge(self._val(func, actual), formal_node, CALL, cs)
                vfg.record_def(formal_node, None, "param")
            rets = [
                i for i in callee.instructions() if isinstance(i, ins.Ret)
            ]
            # Return value -> call result.
            if instr.dst is not None:
                dst = self._top(func, instr.dst)
                for ret in rets:
                    if ret.value is not None:
                        vfg.add_edge(
                            self._val(callee_name, ret.value), dst, RET, cs
                        )
            if not self.address_taken:
                continue
            # Virtual input parameters.
            for loc, version in callee.entry_versions.items():
                if loc in caller_version:
                    entry_node = self._mem(callee_name, loc, version)
                    vfg.add_edge(
                        self._mem(func, loc, caller_version[loc]),
                        entry_node,
                        CALL,
                        cs,
                    )
                    if entry_node not in vfg.def_site:
                        vfg.record_def(entry_node, None, "entry")
            # Virtual output parameters.
            callee_mod = self.modref._lift(
                self.modref.mod[callee_name], callee_name, cs
            )
            for chi in instr.chis:
                if chi.loc not in callee_mod:
                    continue
                new = self._mem(func, chi.loc, chi.new_version)
                vfg.record_def(new, instr.uid, "chi_call")
                for ret in rets:
                    mu = next((m for m in ret.mus if m.loc == chi.loc), None)
                    if mu is not None:
                        vfg.add_edge(
                            self._mem(callee_name, chi.loc, mu.version),
                            new,
                            RET,
                            cs,
                        )

        if self.address_taken:
            # A χ'd location not modified by every callee (or with no
            # resolved callee) keeps its incoming value on those paths.
            for chi in instr.chis:
                new = self._mem(func, chi.loc, chi.new_version)
                if (instr.uid, "chi_call") != self.vfg.def_site.get(new, (None, None)):
                    vfg.record_def(new, instr.uid, "chi_call")
                needs_passthrough = not callees or any(
                    chi.loc
                    not in self.modref._lift(
                        self.modref.mod[callee_name], callee_name, cs
                    )
                    for callee_name in callees
                )
                if needs_passthrough:
                    vfg.add_edge(
                        self._mem(func, chi.loc, chi.old_version), new
                    )
