"""Must Flow-from Closure (Definition 2).

The MFC of a top-level variable x is the DAG of top-level definitions
whose values *must* flow into x through copies and (non-bitwise) binary
operations; constants and allocation results contribute the ⊤ root.
Loads, calls, φs and parameters stop the expansion: their values cannot
be bypassed during shadow propagation.

Mirroring §4.1's bit-level-precision adjustment, binary operations
expand only when the operator is not bitwise: for ``&``, ``|``, ``^``
and shifts, a single undefined *bit* does not make the whole result
undefined, so the conjunction-of-sources shortcut of Opt I would be
unsound and the expansion stops instead.

The *grouping rule* (``grouping=True``, Opt I's flavor): a closure may
anchor Opt I's conjunction only when the sink's own defining operation
**spreads** — a non-bitwise binary operation, a ``-``/``!`` unary or a
``gep``, whose result mask is all-or-nothing.  The conjunction Opt I
emits is ``σ(sink) := spread(∨ σ(sources))``; that is exact precisely
when the sink's true mask is spread-shaped.  A sink defined by a
mask-*preserving* operation (a copy, or bitwise-not ``~``) carries its
operand's possibly-partial mask through unchanged, and spreading it
would over-approximate: a later bitwise operation (which stops
expansion and is instrumented bit-precisely) can launder the exact
partial mask to fully-defined while the spread mask still taints the
word — a spurious warning.  Under ``grouping=True`` such sinks
degenerate to their own source, making Opt I fall back to the plain
Figure 7 rule.  Mask-preserving nodes remain fine as closure
*interiors*: the induction behind the conjunction only needs every
interior mask to be zero iff its sources' masks are (copies and ``~``
preserve exactly that — only the bitwise laundering operators break
it, and those always stop the expansion).

Opt II (``grouping=False``, the default) reasons at the boolean
"would the check fire?" level — detection at the check site implies
every dominated consumer's report is redundant — for which the
zero-iff induction alone suffices, so mask-preserving sinks keep their
full closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.ir import instructions as ins
from repro.ir.module import Module
from repro.vfg.graph import TOP, Node, Root, TopNode, VFG

#: Definition kinds that the closure expands through.
_EXPAND_KINDS = frozenset({"copy", "unop", "binop", "gep"})
#: Definition kinds contributing the ⊤ root as a source.
_CONST_KINDS = frozenset({"const", "alloc", "addr"})

_BITWISE_OPS = frozenset({"&", "|", "^", "<<", ">>"})

#: Unary operators whose result mask is the operand mask, bit for bit.
_MASK_PRESERVING_UNOPS = frozenset({"~"})


@dataclass
class MFC:
    """The must-flow-from closure of a sink node.

    Attributes:
        sink: The top-level variable the closure was computed for.
        nodes: All nodes in the closure (including the sink and ⊤ when
            constants feed it).
        sources: The closure's source nodes — the nodes whose shadows
            the sink's shadow is a conjunction of.
        interior: Nodes strictly between sources and sink, whose shadow
            propagations Opt I can elide.
    """

    sink: TopNode
    nodes: Set[Node] = field(default_factory=set)
    sources: Set[Node] = field(default_factory=set)

    @property
    def interior(self) -> Set[Node]:
        return self.nodes - self.sources - {self.sink}

    @property
    def simplifiable(self) -> bool:
        """Opt I is profitable when the closure has interior nodes."""
        return bool(self.interior)


def _preserves_mask(by_uid, uid, kind: str) -> bool:
    """Whether a definition carries its operand's mask through bit for
    bit (copies, ``~``) instead of spreading it."""
    if kind == "copy":
        return True
    if kind == "unop" and uid is not None:
        instr = by_uid.get(uid)
        return (
            isinstance(instr, ins.UnOp)
            and instr.op in _MASK_PRESERVING_UNOPS
        )
    return False


def compute_mfc(
    vfg: VFG, module: Module, sink: TopNode, grouping: bool = False
) -> MFC:
    """Compute the MFC of ``sink`` (Definition 2).

    With ``grouping=True`` (Opt I) the grouping rule applies: a
    mask-preserving sink cannot anchor the spread conjunction and
    degenerates to its own source, so Opt I falls back to the exact
    per-statement rule.
    """
    by_uid = module.instr_by_uid()
    mfc = MFC(sink)
    if grouping:
        sink_uid, sink_kind = vfg.def_site.get(sink, (None, "unknown"))
        if _preserves_mask(by_uid, sink_uid, sink_kind):
            mfc.nodes.add(sink)
            mfc.sources.add(sink)
            return mfc
    work: List[Node] = [sink]
    while work:
        node = work.pop()
        if node in mfc.nodes:
            continue
        mfc.nodes.add(node)
        if isinstance(node, Root):
            mfc.sources.add(node)
            continue
        uid, kind = vfg.def_site.get(node, (None, "unknown"))
        if not isinstance(node, TopNode) or kind not in (
            _EXPAND_KINDS | _CONST_KINDS
        ):
            mfc.sources.add(node)
            continue
        if kind in _CONST_KINDS:
            mfc.sources.add(TOP)
            mfc.nodes.add(TOP)
            continue
        if kind == "binop" and uid is not None:
            instr = by_uid.get(uid)
            if isinstance(instr, ins.BinOp) and instr.op in _BITWISE_OPS:
                mfc.sources.add(node)
                continue
        preds = vfg.deps_of(node)
        if not preds:
            mfc.sources.add(node)
            continue
        for edge in preds:
            work.append(edge.src)
    return mfc
