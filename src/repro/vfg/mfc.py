"""Must Flow-from Closure (Definition 2).

The MFC of a top-level variable x is the DAG of top-level definitions
whose values *must* flow into x through copies and (non-bitwise) binary
operations; constants and allocation results contribute the ⊤ root.
Loads, calls, φs and parameters stop the expansion: their values cannot
be bypassed during shadow propagation.

Mirroring §4.1's bit-level-precision adjustment, binary operations
expand only when the operator is not bitwise: for ``&``, ``|``, ``^``
and shifts, a single undefined *bit* does not make the whole result
undefined, so the conjunction-of-sources shortcut of Opt I would be
unsound and the expansion stops instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.ir import instructions as ins
from repro.ir.module import Module
from repro.vfg.graph import TOP, Node, Root, TopNode, VFG

#: Definition kinds that the closure expands through.
_EXPAND_KINDS = frozenset({"copy", "unop", "binop", "gep"})
#: Definition kinds contributing the ⊤ root as a source.
_CONST_KINDS = frozenset({"const", "alloc", "addr"})

_BITWISE_OPS = frozenset({"&", "|", "^", "<<", ">>"})


@dataclass
class MFC:
    """The must-flow-from closure of a sink node.

    Attributes:
        sink: The top-level variable the closure was computed for.
        nodes: All nodes in the closure (including the sink and ⊤ when
            constants feed it).
        sources: The closure's source nodes — the nodes whose shadows
            the sink's shadow is a conjunction of.
        interior: Nodes strictly between sources and sink, whose shadow
            propagations Opt I can elide.
    """

    sink: TopNode
    nodes: Set[Node] = field(default_factory=set)
    sources: Set[Node] = field(default_factory=set)

    @property
    def interior(self) -> Set[Node]:
        return self.nodes - self.sources - {self.sink}

    @property
    def simplifiable(self) -> bool:
        """Opt I is profitable when the closure has interior nodes."""
        return bool(self.interior)


def compute_mfc(vfg: VFG, module: Module, sink: TopNode) -> MFC:
    """Compute the MFC of ``sink`` (Definition 2)."""
    by_uid = module.instr_by_uid()
    mfc = MFC(sink)
    work: List[Node] = [sink]
    while work:
        node = work.pop()
        if node in mfc.nodes:
            continue
        mfc.nodes.add(node)
        if isinstance(node, Root):
            mfc.sources.add(node)
            continue
        uid, kind = vfg.def_site.get(node, (None, "unknown"))
        if not isinstance(node, TopNode) or kind not in (
            _EXPAND_KINDS | _CONST_KINDS
        ):
            mfc.sources.add(node)
            continue
        if kind in _CONST_KINDS:
            mfc.sources.add(TOP)
            mfc.nodes.add(TOP)
            continue
        if kind == "binop" and uid is not None:
            instr = by_uid.get(uid)
            if isinstance(instr, ins.BinOp) and instr.op in _BITWISE_OPS:
                mfc.sources.add(node)
                continue
        preds = vfg.deps_of(node)
        if not preds:
            mfc.sources.add(node)
            continue
        for edge in preds:
            work.append(edge.src)
    return mfc
