"""Summary-based definedness resolution (tabulation, after [23]).

The paper resolves definedness "context-sensitively by matching call and
return edges to rule out unrealizable interprocedural flows of values in
the standard manner [18, 23, 25, 29, 33]" and configures 1-callsite call
strings (§4.1).  This module provides the *fully* context-sensitive
alternative those citations describe: single-source Dyck-CFL
reachability with procedure summaries, equivalent to call strings of
unbounded depth.

A realizable value-flow path from F first ascends (unmatched returns —
the value escaping to callers), then descends (unmatched calls — the
value flowing into callees), with arbitrarily nested *matched*
call/return pairs throughout.  The classic two-phase algorithm:

1. **Summaries** (the tabulation): for every callee-side entry node
   (a node targeted by a call edge), compute the set of nodes reachable
   from it along *same-level* (balanced) paths; whenever such a path
   reaches a return edge whose call site matches a call edge into the
   entry, a summary edge caller-source → caller-target is recorded and
   replayed transitively.
2. **Reachability**: from F, propagate through intra and summary edges;
   phase one may also take raw return edges (unmatched closes), phase
   two may also take raw call edges (unmatched opens).  A node is ⊥ iff
   reached in either phase.

The result is never less precise than any k-limited call-string
resolution (property-tested), at the cost of the summary computation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.vfg.definedness import Definedness
from repro.vfg.graph import BOT, CALL, INTRA, RET, Edge, Node, VFG


def resolve_definedness_summary(vfg: VFG) -> Definedness:
    """Compute Γ by summary-based (unbounded-context) reachability."""
    summaries = compute_summaries(vfg)
    bottom = _two_phase_reachability(vfg, summaries)
    bottom.discard(BOT)
    # context_depth = -1 marks the unbounded (summary) resolution.
    return Definedness(bottom, context_depth=-1)


def compute_summaries(vfg: VFG) -> Dict[Node, Set[Node]]:
    """Summary edges: caller node → caller node, skipping a balanced
    call-through (the tabulation of [23] with a single data fact)."""
    #: callee entry node -> call edges targeting it
    entry_calls: Dict[Node, List[Edge]] = defaultdict(list)
    for edge in vfg.edges():
        if edge.kind == CALL:
            entry_calls[edge.dst].append(edge)

    #: path edges: entry -> same-level-reachable nodes
    path: Dict[Node, Set[Node]] = {e: {e} for e in entry_calls}
    #: summary edges discovered so far: src -> targets
    summaries: Dict[Node, Set[Node]] = defaultdict(set)
    work: List[Tuple[Node, Node]] = [(e, e) for e in entry_calls]

    def add_path(entry: Node, node: Node) -> None:
        if node not in path[entry]:
            path[entry].add(node)
            work.append((entry, node))

    def add_summary(src: Node, dst: Node) -> None:
        if dst in summaries[src]:
            return
        summaries[src].add(dst)
        # Replay in every context where src is already same-level
        # reachable.
        for entry, nodes in path.items():
            if src in nodes:
                add_path(entry, dst)

    while work:
        entry, node = work.pop()
        for edge in vfg.flows_of(node):
            if edge.kind == INTRA:
                add_path(entry, edge.dst)
            elif edge.kind == CALL:
                # Descend: the callee's entry gets its own tabulation;
                # its summaries will lift the flow back here.
                if edge.dst in path:
                    pass  # seeded at initialization
            elif edge.kind == RET:
                # A same-level path of `entry` ended at a return to call
                # site edge.callsite: every matching call edge into
                # `entry` yields a summary in the caller.
                for call_edge in entry_calls.get(entry, ()):
                    if call_edge.callsite == edge.callsite:
                        add_summary(call_edge.src, edge.dst)
        # Summary edges already known from `node` extend this context.
        for target in summaries.get(node, ()):
            add_path(entry, target)

    return summaries


def _two_phase_reachability(
    vfg: VFG, summaries: Dict[Node, Set[Node]]
) -> Set[Node]:
    #: (node, phase): phase 0 = unmatched closes allowed,
    #: phase 1 = unmatched opens allowed.
    seen: Set[Tuple[Node, int]] = {(BOT, 0)}
    work: List[Tuple[Node, int]] = [(BOT, 0)]
    bottom: Set[Node] = set()

    def push(node: Node, phase: int) -> None:
        state = (node, phase)
        if state not in seen:
            seen.add(state)
            work.append(state)

    while work:
        node, phase = work.pop()
        bottom.add(node)
        for target in summaries.get(node, ()):
            push(target, phase)
        for edge in vfg.flows_of(node):
            if edge.kind == INTRA:
                push(edge.dst, phase)
            elif edge.kind == RET:
                if phase == 0:
                    push(edge.dst, 0)
                # In phase 1 a raw return would close a call it did not
                # open: unrealizable.
            elif edge.kind == CALL:
                push(edge.dst, 1)
    return bottom


#: Back-compat alias (pre-demand-engine internal name).
_compute_summaries = compute_summaries
