"""GraphViz (DOT) export of value-flow graphs.

Renders the VFG with definedness coloring — the fastest way to see why
a particular value resolved ⊥: follow the red flow from F.

    dot = vfg_to_dot(vfg, gamma)
    Path("flow.dot").write_text(dot)   # then: dot -Tsvg flow.dot

Nodes: box = top-level definition, ellipse = address-taken location
version, diamond = the ⊤/F roots, octagon = the Usher_TL memory
summary.  Red fill marks Γ(v) = ⊥; double borders mark nodes used at a
critical operation.  Call/return edges are dashed/dotted and labelled
with their call site.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.vfg.definedness import Definedness
from repro.vfg.graph import (
    CALL,
    RET,
    MemNode,
    Node,
    Root,
    SummaryNode,
    VFG,
)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_id(node: Node, ids: Dict[Node, str]) -> str:
    if node not in ids:
        ids[node] = f"n{len(ids)}"
    return ids[node]


def _shape(node: Node) -> str:
    if isinstance(node, Root):
        return "diamond"
    if isinstance(node, MemNode):
        return "ellipse"
    if isinstance(node, SummaryNode):
        return "octagon"
    return "box"


def vfg_to_dot(
    vfg: VFG,
    gamma: Optional[Definedness] = None,
    only_function: Optional[str] = None,
    max_nodes: int = 400,
    highlight: Optional[Set[Node]] = None,
) -> str:
    """Render ``vfg`` as DOT text.

    ``only_function`` restricts to one function's nodes (plus roots and
    direct interprocedural neighbours); ``max_nodes`` guards against
    unreadable outputs (raises ValueError when exceeded).

    ``gamma`` may be any object with ``is_defined`` — in particular a
    :class:`~repro.vfg.demand.LazyDefinedness`, in which case only the
    *rendered* nodes are ever resolved (on-demand coloring: with
    ``only_function`` the rest of the graph is never visited).
    ``highlight`` draws the given nodes (e.g. a demand query's
    backward slice) with a bold blue border.
    """
    checked: Set[Node] = {
        site.node for site in vfg.check_sites if site.node is not None
    }

    def keep(node: Node) -> bool:
        if only_function is None or isinstance(node, (Root, SummaryNode)):
            return True
        return getattr(node, "func", None) == only_function

    nodes = [n for n in vfg.nodes() if keep(n)]
    if len(nodes) > max_nodes:
        raise ValueError(
            f"{len(nodes)} nodes exceed max_nodes={max_nodes}; restrict "
            f"with only_function or raise the limit"
        )

    ids: Dict[Node, str] = {}
    lines = [
        "digraph vfg {",
        "  rankdir=BT;",
        '  node [fontname="monospace", fontsize=10];',
    ]
    kept = set(nodes)
    for node in sorted(kept, key=str):
        attrs = [f'label="{_escape(str(node))}"', f"shape={_shape(node)}"]
        if gamma is not None and not gamma.is_defined(node):
            attrs.append('style=filled, fillcolor="#f4cccc"')
        elif isinstance(node, Root):
            attrs.append('style=filled, fillcolor="#d9ead3"')
        if node in checked:
            attrs.append("peripheries=2")
        if highlight and node in highlight:
            attrs.append('color="#3c78d8", penwidth=2')
        lines.append(f"  {_node_id(node, ids)} [{', '.join(attrs)}];")

    for edge in sorted(vfg.edges(), key=str):
        if edge.src not in kept or edge.dst not in kept:
            continue
        attrs = []
        if edge.kind == CALL:
            attrs.append(f'style=dashed, label="call@{edge.callsite}"')
        elif edge.kind == RET:
            attrs.append(f'style=dotted, label="ret@{edge.callsite}"')
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(
            f"  {_node_id(edge.src, ids)} -> {_node_id(edge.dst, ids)}{suffix};"
        )
    lines.append("}")
    return "\n".join(lines)
