"""Value-flow graph representation (§3.2).

Nodes are SSA definitions — top-level variable versions and
address-taken location versions — plus the two roots ⊤ (``TOP``,
"defined") and F (``BOT``, "undefined").  An edge ``src → dst`` means
the *value flows* from ``src`` into ``dst`` (``dst`` data-depends on
``src``; the paper draws the same edge in the dependence direction).

Interprocedural edges carry their call site and a kind (``"call"`` /
``"ret"``) so that definedness resolution can match them
context-sensitively (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.memobjects import MemLoc

INTRA = "intra"
CALL = "call"
RET = "ret"


@dataclass(frozen=True)
class Root:
    """A VFG root: ``T`` (defined) or ``F`` (undefined)."""

    name: str

    def __str__(self) -> str:
        return self.name


TOP = Root("T")
BOT = Root("F")


@dataclass(frozen=True)
class TopNode:
    """The definition of top-level SSA variable ``name.version`` in
    ``func``."""

    func: str
    name: str
    version: int

    def __str__(self) -> str:
        return f"{self.func}::{self.name}.{self.version}"


@dataclass(frozen=True)
class MemNode:
    """The definition of version ``version`` of address-taken location
    ``loc`` within ``func``'s memory SSA."""

    func: str
    loc: MemLoc
    version: int

    def __str__(self) -> str:
        return f"{self.func}::[{self.loc}].{self.version}"


@dataclass(frozen=True)
class SummaryNode:
    """The single conflated memory node used by the top-level-only
    configuration (Usher_TL), where address-taken variables are not
    analyzed: every load may read it, every store/allocation writes it."""

    name: str = "MEM"

    def __str__(self) -> str:
        return self.name


MEM_SUMMARY = SummaryNode()

Node = Union[Root, TopNode, MemNode, SummaryNode]


@dataclass(frozen=True)
class Edge:
    """A value-flow edge ``src → dst``."""

    src: Node
    dst: Node
    kind: str = INTRA
    callsite: Optional[int] = None

    def __str__(self) -> str:
        tag = f" [{self.kind}@{self.callsite}]" if self.kind != INTRA else ""
        return f"{self.src} -> {self.dst}{tag}"


@dataclass
class CheckSite:
    """A critical operation's use of a value (Definition 1).

    ``node`` is the VFG node of the used SSA definition; ``None`` when
    the operand is a constant (always defined, never checked).
    """

    instr_uid: int
    func: str
    node: Optional[Node]
    operand: str


@dataclass
class VFGStats:
    """Build statistics feeding Table 1."""

    stores_total: int = 0
    stores_strong: int = 0
    stores_singleton_weak: int = 0
    semi_strong_applied: int = 0
    heap_alloc_sites: int = 0
    array_init_cuts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


#: Edge-kind codes in the flat edge columns.
_KIND_CODES = {INTRA: 0, CALL: 1, RET: 2}
_KIND_FROM_CODE = (INTRA, CALL, RET)
#: ``callsite`` column value for intraprocedural edges.
_NO_CALLSITE = -1
#: ``kind`` column value of a tombstoned (removed) edge row.
_DEAD = -1
#: Words per edge row: ``[src nid, dst nid, kind code, callsite]``.
_ROW = 4


class VFG:
    """The whole-program value-flow graph, stored struct-of-arrays.

    Nodes are interned to dense integer ids; edges live as fixed-width
    rows ``[src nid, dst nid, kind code, callsite]`` in one flat
    ``int64`` arena (:class:`repro.analysis.bitsets.Int64Arena`), with
    per-node adjacency as lists of row indices.  :class:`Edge` objects
    are materialized lazily (and cached per row) only when a traversal
    asks for them, so a million-edge graph costs four machine words per
    edge plus its interned node objects — not a million Python tuples —
    and the edge columns can be published through
    ``multiprocessing.shared_memory`` verbatim (:meth:`edge_columns` /
    :meth:`from_columns`).

    ``remove_edge`` tombstones the row (kind code ``-1``) and unlinks
    it from the adjacency lists; the arena is append-only.  All public
    iteration orders match the previous object-graph representation:
    ``deps_of`` / ``flows_of`` are in per-node insertion order and
    ``edges()`` groups by destination in first-seen order.
    """

    def __init__(self, address_taken: bool = True) -> None:
        from repro.analysis.bitsets import Int64Arena

        self.address_taken = address_taken
        #: node interning: object -> dense id, id -> object
        self._node_ids: Dict[Node, int] = {}
        self._node_list: List[Node] = []
        #: edge rows, _ROW words each, append-only
        self._columns = Int64Arena()
        #: (src, dst, kind, callsite) -> row index (dedupe + removal)
        self._edge_ids: Dict[Tuple[Node, Node, str, Optional[int]], int] = {}
        #: row index -> materialized Edge (lazy)
        self._edge_cache: Dict[int, Edge] = {}
        #: node id -> in-/out-edge row indices, insertion order
        self._deps: Dict[int, List[int]] = {}
        self._flows: Dict[int, List[int]] = {}
        self.check_sites: List[CheckSite] = []
        #: node -> (defining instruction uid, def kind tag)
        self.def_site: Dict[Node, Tuple[Optional[int], str]] = {}
        self.stats = VFGStats()

    # ------------------------------------------------------------------
    def _nid(self, node: Node) -> int:
        nid = self._node_ids.get(node)
        if nid is None:
            nid = len(self._node_list)
            self._node_ids[node] = nid
            self._node_list.append(node)
        return nid

    def _edge(self, eid: int) -> Edge:
        edge = self._edge_cache.get(eid)
        if edge is None:
            words = self._columns.words
            base = eid * _ROW
            callsite = words[base + 3]
            edge = Edge(
                self._node_list[words[base]],
                self._node_list[words[base + 1]],
                _KIND_FROM_CODE[words[base + 2]],
                None if callsite == _NO_CALLSITE else callsite,
            )
            self._edge_cache[eid] = edge
        return edge

    # ------------------------------------------------------------------
    def add_edge(
        self,
        src: Node,
        dst: Node,
        kind: str = INTRA,
        callsite: Optional[int] = None,
    ) -> None:
        key = (src, dst, kind, callsite)
        if key in self._edge_ids:
            return
        sid = self._nid(src)
        did = self._nid(dst)
        eid = len(self._columns) // _ROW
        self._columns.extend(
            (
                sid,
                did,
                _KIND_CODES[kind],
                _NO_CALLSITE if callsite is None else callsite,
            )
        )
        self._edge_ids[key] = eid
        self._deps.setdefault(did, []).append(eid)
        self._flows.setdefault(sid, []).append(eid)
        self._deps.setdefault(sid, [])
        self._flows.setdefault(did, [])

    def remove_edge(self, edge: Edge) -> None:
        key = (edge.src, edge.dst, edge.kind, edge.callsite)
        eid = self._edge_ids.pop(key, None)
        if eid is None:
            return
        self._columns.words[eid * _ROW + 2] = _DEAD
        self._deps[self._node_ids[edge.dst]].remove(eid)
        self._flows[self._node_ids[edge.src]].remove(eid)
        self._edge_cache.pop(eid, None)

    def remove_edges_between(self, src: Node, dst: Node) -> int:
        """Remove every ``src → dst`` edge (any kind / callsite).

        Works directly on the edge rows — no :class:`Edge` objects are
        materialized — and returns the number removed.
        """
        sid = self._node_ids.get(src)
        did = self._node_ids.get(dst)
        if sid is None or did is None:
            return 0
        words = self._columns.words
        matches = [
            eid for eid in self._deps.get(did, ()) if words[eid * _ROW] == sid
        ]
        for eid in matches:
            base = eid * _ROW
            callsite = words[base + 3]
            key = (
                src,
                dst,
                _KIND_FROM_CODE[words[base + 2]],
                None if callsite == _NO_CALLSITE else callsite,
            )
            del self._edge_ids[key]
            words[base + 2] = _DEAD
            self._deps[did].remove(eid)
            self._flows[sid].remove(eid)
            self._edge_cache.pop(eid, None)
        return len(matches)

    def deps_of(self, node: Node) -> List[Edge]:
        """Edges into ``node`` (the values it depends on)."""
        nid = self._node_ids.get(node)
        if nid is None:
            return []
        return [self._edge(eid) for eid in self._deps.get(nid, ())]

    def flows_of(self, node: Node) -> List[Edge]:
        """Edges out of ``node`` (the nodes its value flows into)."""
        nid = self._node_ids.get(node)
        if nid is None:
            return []
        return [self._edge(eid) for eid in self._flows.get(nid, ())]

    def nodes(self) -> Iterable[Node]:
        return list(self._node_list)

    def edges(self) -> Iterable[Edge]:
        for eids in self._deps.values():
            for eid in eids:
                yield self._edge(eid)

    @property
    def num_nodes(self) -> int:
        return len(self._node_list)

    @property
    def num_edges(self) -> int:
        return len(self._edge_ids)

    def record_def(self, node: Node, instr_uid: Optional[int], kind: str) -> None:
        self.def_site[node] = (instr_uid, kind)

    # ------------------------------------------------------------------
    def edge_columns(self):
        """The node table and raw edge arena ``(nodes, columns)``.

        ``columns`` is the append-only row arena (including tombstoned
        rows, kind code ``-1``); publish it with
        ``Int64Arena.to_shared_memory`` and rebuild on the other side
        with :meth:`from_columns`.  The node table is small (interned
        objects) and travels by pickle.
        """
        return list(self._node_list), self._columns

    @classmethod
    def from_columns(cls, address_taken: bool, nodes, columns) -> "VFG":
        """Rebuild a graph from :meth:`edge_columns` output (for
        example an arena attached from shared memory); tombstoned rows
        are skipped."""
        vfg = cls(address_taken)
        for base in range(0, len(columns), _ROW):
            code = columns[base + 2]
            if code == _DEAD:
                continue
            callsite = columns[base + 3]
            vfg.add_edge(
                nodes[columns[base]],
                nodes[columns[base + 1]],
                _KIND_FROM_CODE[code],
                None if callsite == _NO_CALLSITE else callsite,
            )
        return vfg

    def copy(self) -> "VFG":
        """A structural copy sharing node objects (for Opt II, which
        rewires edges on a scratch copy before re-resolving Γ).

        Struct-of-arrays makes this four bulk copies — node table,
        edge arena, two adjacency maps — instead of re-adding every
        edge through the interning path.
        """
        from array import array

        clone = VFG(self.address_taken)
        clone._node_ids = dict(self._node_ids)
        clone._node_list = list(self._node_list)
        clone._columns.words = array("q", self._columns.words)
        clone._edge_ids = dict(self._edge_ids)
        clone._deps = {nid: list(eids) for nid, eids in self._deps.items()}
        clone._flows = {nid: list(eids) for nid, eids in self._flows.items()}
        clone.check_sites = list(self.check_sites)
        clone.def_site = dict(self.def_site)
        clone.stats = self.stats
        return clone
