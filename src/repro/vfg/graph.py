"""Value-flow graph representation (§3.2).

Nodes are SSA definitions — top-level variable versions and
address-taken location versions — plus the two roots ⊤ (``TOP``,
"defined") and F (``BOT``, "undefined").  An edge ``src → dst`` means
the *value flows* from ``src`` into ``dst`` (``dst`` data-depends on
``src``; the paper draws the same edge in the dependence direction).

Interprocedural edges carry their call site and a kind (``"call"`` /
``"ret"``) so that definedness resolution can match them
context-sensitively (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.memobjects import MemLoc

INTRA = "intra"
CALL = "call"
RET = "ret"


@dataclass(frozen=True)
class Root:
    """A VFG root: ``T`` (defined) or ``F`` (undefined)."""

    name: str

    def __str__(self) -> str:
        return self.name


TOP = Root("T")
BOT = Root("F")


@dataclass(frozen=True)
class TopNode:
    """The definition of top-level SSA variable ``name.version`` in
    ``func``."""

    func: str
    name: str
    version: int

    def __str__(self) -> str:
        return f"{self.func}::{self.name}.{self.version}"


@dataclass(frozen=True)
class MemNode:
    """The definition of version ``version`` of address-taken location
    ``loc`` within ``func``'s memory SSA."""

    func: str
    loc: MemLoc
    version: int

    def __str__(self) -> str:
        return f"{self.func}::[{self.loc}].{self.version}"


@dataclass(frozen=True)
class SummaryNode:
    """The single conflated memory node used by the top-level-only
    configuration (Usher_TL), where address-taken variables are not
    analyzed: every load may read it, every store/allocation writes it."""

    name: str = "MEM"

    def __str__(self) -> str:
        return self.name


MEM_SUMMARY = SummaryNode()

Node = Union[Root, TopNode, MemNode, SummaryNode]


@dataclass(frozen=True)
class Edge:
    """A value-flow edge ``src → dst``."""

    src: Node
    dst: Node
    kind: str = INTRA
    callsite: Optional[int] = None

    def __str__(self) -> str:
        tag = f" [{self.kind}@{self.callsite}]" if self.kind != INTRA else ""
        return f"{self.src} -> {self.dst}{tag}"


@dataclass
class CheckSite:
    """A critical operation's use of a value (Definition 1).

    ``node`` is the VFG node of the used SSA definition; ``None`` when
    the operand is a constant (always defined, never checked).
    """

    instr_uid: int
    func: str
    node: Optional[Node]
    operand: str


@dataclass
class VFGStats:
    """Build statistics feeding Table 1."""

    stores_total: int = 0
    stores_strong: int = 0
    stores_singleton_weak: int = 0
    semi_strong_applied: int = 0
    heap_alloc_sites: int = 0
    array_init_cuts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class VFG:
    """The whole-program value-flow graph."""

    def __init__(self, address_taken: bool = True) -> None:
        self.address_taken = address_taken
        self._deps: Dict[Node, List[Edge]] = {}
        self._flows: Dict[Node, List[Edge]] = {}
        self._edge_set: Set[Tuple[Node, Node, str, Optional[int]]] = set()
        self.check_sites: List[CheckSite] = []
        #: node -> (defining instruction uid, def kind tag)
        self.def_site: Dict[Node, Tuple[Optional[int], str]] = {}
        self.stats = VFGStats()

    # ------------------------------------------------------------------
    def add_edge(
        self,
        src: Node,
        dst: Node,
        kind: str = INTRA,
        callsite: Optional[int] = None,
    ) -> None:
        key = (src, dst, kind, callsite)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        edge = Edge(src, dst, kind, callsite)
        self._deps.setdefault(dst, []).append(edge)
        self._flows.setdefault(src, []).append(edge)
        self._deps.setdefault(src, self._deps.get(src, []))
        self._flows.setdefault(dst, self._flows.get(dst, []))

    def remove_edge(self, edge: Edge) -> None:
        key = (edge.src, edge.dst, edge.kind, edge.callsite)
        if key not in self._edge_set:
            return
        self._edge_set.discard(key)
        self._deps[edge.dst].remove(edge)
        self._flows[edge.src].remove(edge)

    def deps_of(self, node: Node) -> List[Edge]:
        """Edges into ``node`` (the values it depends on)."""
        return self._deps.get(node, [])

    def flows_of(self, node: Node) -> List[Edge]:
        """Edges out of ``node`` (the nodes its value flows into)."""
        return self._flows.get(node, [])

    def nodes(self) -> Iterable[Node]:
        seen: Set[Node] = set(self._deps) | set(self._flows)
        return seen

    def edges(self) -> Iterable[Edge]:
        for edges in self._deps.values():
            yield from edges

    @property
    def num_nodes(self) -> int:
        return sum(1 for _ in self.nodes())

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    def record_def(self, node: Node, instr_uid: Optional[int], kind: str) -> None:
        self.def_site[node] = (instr_uid, kind)

    def copy(self) -> "VFG":
        """A structural copy sharing node objects (for Opt II, which
        rewires edges on a scratch copy before re-resolving Γ)."""
        clone = VFG(self.address_taken)
        for edge in self.edges():
            clone.add_edge(edge.src, edge.dst, edge.kind, edge.callsite)
        clone.check_sites = list(self.check_sites)
        clone.def_site = dict(self.def_site)
        clone.stats = self.stats
        return clone
