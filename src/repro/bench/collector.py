"""Row emission: bench cells into the unified stats stream.

Every cell row goes through :func:`repro.obs.registry.write_stats_row`
— the single benchmark-log writer — stamped ``kind: "bench"`` so
``tools/diff_solver_stats.py`` groups it by cell and applies the bench
gates (exact warned sets / checks / propagations, ratio-gated solver
work).  The same rows land in the in-process
:class:`~repro.obs.registry.StatsRegistry` via its ``record_bench``
adapter, so a resident service or report section can read the latest
sweep without re-parsing JSONL.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.registry import REGISTRY, write_stats_row

#: The ``kind`` marker distinguishing bench rows in shared JSONL logs.
BENCH_KIND = "bench"


def write_rows(path: str, rows: List[Dict]) -> List[Dict]:
    """Append every cell row to ``path`` in the gated log shape.

    Returns the rows as written (schema-stamped, tags normalized).
    """
    written = []
    for row in rows:
        payload = {k: v for k, v in row.items() if k != "elapsed"}
        out = write_stats_row(
            path,
            benchmark=row["workload"],
            seed=0,
            factor=1,
            elapsed=row.get("elapsed"),
            kind=BENCH_KIND,
            **payload,
        )
        REGISTRY.record_bench(out)
        written.append(out)
    return written


__all__ = ["BENCH_KIND", "write_rows"]
