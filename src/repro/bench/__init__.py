"""``repro bench``: the scenario-factory benchmark orchestrator.

One declarative :class:`~repro.bench.matrix.MatrixSpec` — workloads ×
configs × tiers × storages × schedules × jobs — expands into
:class:`~repro.bench.matrix.Cell` objects, executes across a process
pool with per-cell timeouts and crash isolation
(:mod:`repro.bench.scheduler`), lands schema-stamped rows in a JSONL
log (:mod:`repro.bench.collector`), aggregates the paper-style tables
(:mod:`repro.bench.report`), and gates against a committed baseline
(:mod:`repro.bench.baseline`).  Oracle-minimized reproducers graduate
into the permanent corpus through :mod:`repro.bench.promote`.
"""

from repro.bench.baseline import diff_rows, load_rows
from repro.bench.collector import write_rows
from repro.bench.matrix import (
    BenchSpecError,
    CONFIG_SPECS,
    Cell,
    MatrixSpec,
    SPEC_TO_CONFIG,
)
from repro.bench.promote import promote
from repro.bench.report import format_bench_report
from repro.bench.scheduler import error_row, run_cell, run_matrix

__all__ = [
    "BenchSpecError",
    "CONFIG_SPECS",
    "Cell",
    "MatrixSpec",
    "SPEC_TO_CONFIG",
    "diff_rows",
    "error_row",
    "format_bench_report",
    "load_rows",
    "promote",
    "run_cell",
    "run_matrix",
    "write_rows",
]
