"""Cell execution: one worker process per cell, crash-isolated.

:func:`run_cell` is the measurement itself — resolve the workload (the
registry's 19 programs or an oracle-bred corpus seed), run the full
pipeline under the cell's exact knob setting, execute instrumented,
and return one flat row of counters.  :func:`run_matrix` drives a
bounded pool of **fork-started processes, one per cell**: a cell that
raises, dies, or overruns its timeout becomes a ``status: "error"``
row and the run continues — a 200-cell sweep must never lose 199
results to one pathological cell.

Fork-per-cell (rather than a reusable worker pool) is deliberate:

- a crashed or wedged interpreter cannot poison later cells — each
  cell gets a pristine process;
- timeouts are enforceable with ``terminate()`` without killing a
  shared worker mid-queue;
- monkeypatched measurement functions propagate to workers through
  fork copy-on-write, which is what lets the crash-isolation tests
  inject faults without plumbing.

On platforms without ``fork`` (or with ``pool=1``) execution degrades
to in-process, still exception-isolated per cell; rows are identical
because every configuration's result is bit-identical across all
parallelism (the contract the differential suite enforces) — the pool
only buys wall-clock and crash isolation.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.analysis.parallel import fork_available
from repro.bench.matrix import BenchSpecError, Cell
from repro.options import AnalysisOptions

#: Default per-cell wall-clock budget (seconds) in process mode.
DEFAULT_TIMEOUT = 300.0

#: Poll interval while waiting on worker pipes (seconds).
_POLL_S = 0.02


def resolve_workload(name: str, corpus_dir=None):
    """Resolve a cell's workload name: the registry's generated
    programs first, then the oracle-bred corpus.  Returns
    ``("workload", Workload)`` or ``("corpus", CorpusSeed)``."""
    from repro.workloads import BY_NAME
    from repro.workloads.corpus import load_corpus

    if name in BY_NAME:
        return "workload", BY_NAME[name]
    for seed in load_corpus(corpus_dir):
        if seed.name == name:
            return "corpus", seed
    known = sorted(BY_NAME) + [s.name for s in load_corpus(corpus_dir)]
    raise BenchSpecError(
        f"unknown workload {name!r} (known: {', '.join(known)})"
    )


def error_row(cell: Cell, message: str, elapsed: float = 0.0) -> Dict:
    """The row shape of a failed cell: identity, error, no counters."""
    row = cell.identity()
    row.update(status="error", error=message, elapsed=round(elapsed, 6))
    return row


def run_cell(cell: Cell, corpus_dir=None) -> Dict:
    """Execute one cell end to end and return its flat counter row.

    Registry workloads render TinyC at the cell's scale and go through
    ``analyze(source=...)``; corpus seeds parse as printed IR and run
    the oracle's pipeline level (``FUZZ_PIPELINE``), so a corpus
    cell's warned set is exactly the manifest's pinned set — the same
    contract ``repro fuzz --module`` replays.  Raises on failure; the
    scheduler turns that into an error row.
    """
    from repro.api import analyze

    started = time.perf_counter()
    kind, obj = resolve_workload(cell.workload, corpus_dir)
    options = AnalysisOptions(
        tier=cell.tier,
        storage=cell.storage,
        schedule=cell.schedule,
        jobs=cell.jobs,
    )
    config = cell.analysis_config
    if kind == "corpus":
        from repro.ir.parser import parse_ir
        from repro.oracle.harness import FUZZ_PIPELINE

        analysis = analyze(
            module=parse_ir(obj.text()),
            name=cell.workload,
            level=FUZZ_PIPELINE,
            configs=[config],
            options=options,
        )
    else:
        analysis = analyze(
            source=obj.source(cell.scale),
            name=cell.workload,
            configs=[config],
            options=options,
        )
    report = analysis.run(config)
    plan = analysis.plans[config]
    solver = analysis.prepared.solver_stats
    row = cell.identity()
    row.update(
        status="ok",
        warned_uids=sorted(report.warning_set()),
        warnings=len(report.warning_set()),
        checks=plan.count_checks(),
        propagations=plan.count_propagations(),
        native_ops=report.native_ops,
        slowdown_percent=round(analysis.slowdown(config), 3),
        pops=solver.pops if solver is not None else 0,
        facts_propagated=(
            solver.facts_propagated if solver is not None else 0
        ),
        elapsed=round(time.perf_counter() - started, 6),
    )
    return row


def _child(cell: Cell, corpus_dir, conn) -> None:
    """Worker body: measure, or report the exception as an error row.
    Runs in a forked child; the pipe is its only output channel."""
    started = time.perf_counter()
    try:
        row = run_cell(cell, corpus_dir)
    except BaseException as error:  # the row IS the crash report
        row = error_row(
            cell,
            f"{type(error).__name__}: {error}",
            elapsed=time.perf_counter() - started,
        )
    try:
        conn.send(row)
    finally:
        conn.close()


def _run_serial(
    cells: List[Cell], corpus_dir, log: Callable[[str], None]
) -> List[Dict]:
    rows: List[Dict] = []
    for cell in cells:
        started = time.perf_counter()
        try:
            row = run_cell(cell, corpus_dir)
        except Exception as error:
            row = error_row(
                cell,
                f"{type(error).__name__}: {error}",
                elapsed=time.perf_counter() - started,
            )
        log(_describe(row))
        rows.append(row)
    return rows


def _describe(row: Dict) -> str:
    if row["status"] == "ok":
        return (
            f"  {row['cell']}: ok, {row['warnings']} warning(s), "
            f"{row['checks']} checks, {row['elapsed']:.2f}s"
        )
    return f"  {row['cell']}: ERROR {row['error']}"


def run_matrix(
    cells: List[Cell],
    pool: int = 1,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    corpus_dir=None,
    log: Optional[Callable[[str], None]] = None,
) -> List[Dict]:
    """Execute every cell; one row per cell, in matrix order.

    ``pool`` bounds concurrent worker processes; ``timeout`` is the
    per-cell wall-clock budget (process mode only — ``None`` disables
    it).  Failed cells come back as error rows; the function itself
    raises only on programmer error.
    """
    say = log if log is not None else (lambda message: None)
    # Validate every workload name up front: an unknown name is a spec
    # error for the *whole* run, not 40 error rows deep into it.
    for name in {cell.workload for cell in cells}:
        resolve_workload(name, corpus_dir)
    if pool <= 1 or not fork_available():
        return _run_serial(cells, corpus_dir, say)

    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    queue = list(cells)
    next_index = 0
    running: Dict = {}  # proc -> (index, cell, conn, deadline)
    rows: List[Optional[Dict]] = [None] * len(cells)
    try:
        while next_index < len(queue) or running:
            while next_index < len(queue) and len(running) < pool:
                cell = queue[next_index]
                parent, child = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child, args=(cell, corpus_dir, child)
                )
                proc.start()
                child.close()
                deadline = (
                    time.monotonic() + timeout if timeout else None
                )
                running[proc] = (next_index, cell, parent, deadline)
                next_index += 1
            finished = []
            for proc, (index, cell, conn, deadline) in running.items():
                row: Optional[Dict] = None
                if conn.poll(0):
                    try:
                        row = conn.recv()
                    except EOFError:
                        row = error_row(
                            cell, "worker closed the pipe without a row"
                        )
                elif not proc.is_alive():
                    row = error_row(
                        cell,
                        f"worker crashed (exit code {proc.exitcode})",
                    )
                elif deadline is not None and time.monotonic() > deadline:
                    proc.terminate()
                    row = error_row(
                        cell, f"timeout after {timeout:g}s", elapsed=timeout
                    )
                if row is not None:
                    proc.join()
                    conn.close()
                    rows[index] = row
                    say(_describe(row))
                    finished.append(proc)
            for proc in finished:
                del running[proc]
            if not finished:
                time.sleep(_POLL_S)
    finally:
        for proc in running:
            proc.terminate()
            proc.join()
    # Every slot is filled: each worker ends in exactly one of the
    # three arms above.  The assert documents the invariant.
    assert all(row is not None for row in rows)
    return rows  # type: ignore[return-value]


__all__ = [
    "DEFAULT_TIMEOUT",
    "error_row",
    "resolve_workload",
    "run_cell",
    "run_matrix",
]
