"""Markdown aggregation of a bench sweep: the paper-style views.

Three tables over one run's rows:

- **static instrumentation** (Table-1-style): per workload, the check
  and propagation counts under each configuration;
- **modelled slowdown** (Figure-10/11-style): per workload, the cost
  model's slowdown percentage under each configuration;
- **analysis wall-clock by tier**: mean per-cell seconds for each
  (configuration, tier) pair — the axis the tiered-solving work
  exists to move.

Detection results are bit-identical across tiers / storages /
schedules / jobs (the differential suite's contract), so the first
two tables collapse those axes and take each (workload, config)'s
first row; the wall-clock table is where the collapsed axes show up.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.matrix import CONFIG_SPECS


def _ordered_configs(rows: List[Dict]) -> List[str]:
    present = {row["config"] for row in rows}
    return [spec for spec in CONFIG_SPECS if spec in present]


def _first_by(rows: List[Dict]) -> Dict:
    first: Dict = {}
    for row in rows:
        first.setdefault((row["workload"], row["config"]), row)
    return first


def _table(header: List[str], body: List[List[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    lines.extend("| " + " | ".join(cells) + " |" for cells in body)
    return lines


def format_bench_report(rows: List[Dict]) -> str:
    """The full markdown report for one sweep's rows."""
    ok = [row for row in rows if row.get("status") == "ok"]
    errors = [row for row in rows if row.get("status") != "ok"]
    lines = [
        "# Bench matrix report",
        "",
        f"{len(rows)} cell(s): {len(ok)} ok, {len(errors)} error(s).",
        "",
    ]
    if ok:
        configs = _ordered_configs(ok)
        first = _first_by(ok)
        workloads = sorted({row["workload"] for row in ok})

        lines += ["## Static instrumentation (checks / propagations)", ""]
        body = []
        for workload in workloads:
            cells = [workload]
            for spec in configs:
                row = first.get((workload, spec))
                cells.append(
                    f"{row['checks']} / {row['propagations']}"
                    if row is not None and row.get("status") == "ok"
                    else "—"
                )
            body.append(cells)
        lines += _table(["workload"] + list(configs), body) + [""]

        lines += ["## Modelled slowdown (%)", ""]
        body = []
        for workload in workloads:
            cells = [workload]
            for spec in configs:
                row = first.get((workload, spec))
                cells.append(
                    f"{row['slowdown_percent']:.1f}"
                    if row is not None and row.get("status") == "ok"
                    else "—"
                )
            body.append(cells)
        lines += _table(["workload"] + list(configs), body) + [""]

        tiers = sorted({row["tier"] for row in ok})
        if len(tiers) > 1 or len(ok) > len(first):
            lines += ["## Mean cell wall-clock by tier (s)", ""]
            body = []
            for spec in configs:
                cells = [spec]
                for tier in tiers:
                    sample = [
                        row["elapsed"]
                        for row in ok
                        if row["config"] == spec and row["tier"] == tier
                    ]
                    cells.append(
                        f"{sum(sample) / len(sample):.3f}"
                        if sample
                        else "—"
                    )
                body.append(cells)
            lines += _table(["config"] + tiers, body) + [""]
    if errors:
        lines += ["## Errors", ""]
        lines += [
            f"- `{row['cell']}`: {row.get('error', 'unknown')}"
            for row in errors
        ]
        lines.append("")
    return "\n".join(lines)


__all__ = ["format_bench_report"]
