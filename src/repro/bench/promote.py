"""``repro bench --promote``: reproducers graduate into the corpus.

A minimized ``.ir`` reproducer from a fuzz campaign is worth keeping
exactly when the divergence it reproduced is *fixed*: it then pins
the distilled program shape forever.  Promotion therefore re-derives
everything from scratch via :func:`repro.workloads.corpus.pin_text` —
parse, verify, oracle contract diff under all four base configs,
native ground truth, per-config warned sets — and refuses reproducers
that still diverge.  What passes is copied into the corpus directory
and added to ``manifest.json`` with its freshly pinned sets; the seed
is a first-class bench workload from the next run on.

``dry_run=True`` performs the full validation and reports what would
be written without touching the corpus — the nightly fuzz lane runs
this over its own reproducers as a self-test.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.workloads.corpus import (
    CorpusError,
    default_corpus_dir,
    load_corpus,
    pin_text,
    write_manifest,
)


def _existing_entries(corpus_dir) -> List[Dict]:
    return [
        {
            "name": seed.name,
            "file": Path(seed.path).name,
            "origin": seed.origin,
            "true_bugs": list(seed.true_bugs),
            "pinned": {
                spec: list(uids) for spec, uids in seed.pinned
            },
        }
        for seed in load_corpus(corpus_dir)
    ]


def promote(
    paths: List[str],
    corpus_dir=None,
    origin: Optional[str] = None,
    dry_run: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> List[str]:
    """Validate and promote reproducers into the permanent corpus.

    Returns the promoted seed names.  Raises :class:`CorpusError` on a
    reproducer that fails validation (still-divergent, unparsable,
    natively faulting) or a name collision with a committed seed —
    promotion is all-or-nothing, so a batch with one bad file changes
    nothing.
    """
    say = log if log is not None else (lambda message: None)
    base = Path(corpus_dir) if corpus_dir is not None else default_corpus_dir()
    if base is None:
        raise CorpusError(
            "no corpus directory (pass --corpus-dir or run from a checkout)"
        )
    entries = _existing_entries(base)
    taken = {entry["name"] for entry in entries}
    promoted: List[str] = []
    staged: List[Dict] = []
    for path in paths:
        source = Path(path)
        name = source.stem
        if name in taken:
            raise CorpusError(
                f"{name}: a corpus seed of that name already exists "
                f"(rename the reproducer to promote it)"
            )
        text = source.read_text()
        say(f"validating {name} ({source})...")
        payload = pin_text(text, name)
        say(
            f"  ok: true bugs {payload['true_bugs']}, pinned "
            + ", ".join(
                f"{spec}={uids}" for spec, uids in payload["pinned"].items()
            )
        )
        staged.append(
            {
                "name": name,
                "file": source.name,
                "origin": origin
                or f"promoted by `repro bench --promote` from {source}",
                **payload,
            }
        )
        taken.add(name)
        promoted.append(name)
    if dry_run:
        say(
            f"dry run: would promote {len(promoted)} seed(s) into {base} "
            "(corpus unchanged)"
        )
        return promoted
    for entry, path in zip(staged, paths):
        shutil.copyfile(path, base / entry["file"])
    write_manifest(base, entries + staged)
    say(f"promoted {len(promoted)} seed(s) into {base}")
    return promoted


__all__ = ["promote"]
