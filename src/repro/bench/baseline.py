"""Baseline gating: this sweep's rows against a committed JSONL log.

The contract mirrors the paper's determinism claims.  Per matching
cell (keyed by the cell name):

- **exact**: ``status``, ``warned_uids``, ``checks``, ``propagations``
  — detection results and static instrumentation are bit-identical
  run to run and machine to machine, so *any* drift is a finding;
- **ratio** (default 2.0x): ``pops``, ``facts_propagated`` — solver
  work counters are deterministic too, but legitimately move with
  algorithmic changes, so only a large regression gates;
- **never**: wall-clock — baselines are committed, diffs run on
  other machines.

A cell present in the baseline but missing from the current run is a
failure (silently shrinking coverage must not pass CI); new cells are
fine — that's how the matrix grows.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

#: Cell fields compared for exact equality.
EXACT_FIELDS = ("status", "warned_uids", "checks", "propagations")

#: Cell fields gated by growth ratio.
RATIO_FIELDS = ("pops", "facts_propagated")

#: Default tolerated growth for ratio-gated counters.
MAX_RATIO = 2.0


def load_rows(path: str) -> List[Dict]:
    """The bench rows of a JSONL log (other record kinds are ignored,
    so bench rows can share a log with solver/fuzz rows)."""
    rows = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("kind") == "bench":
                rows.append(row)
    return rows


def diff_rows(
    current: List[Dict],
    baseline: List[Dict],
    max_ratio: float = MAX_RATIO,
) -> Tuple[List[str], int]:
    """Compare a sweep against its baseline.

    Returns ``(problems, compared)``: human-readable problem lines
    (empty means the gate passes) and the number of cells compared.
    """
    problems: List[str] = []
    current_by = {row["cell"]: row for row in current}
    baseline_by = {row["cell"]: row for row in baseline}
    compared = 0
    for cell, base in sorted(baseline_by.items()):
        row = current_by.get(cell)
        if row is None:
            problems.append(
                f"{cell}: in baseline but missing from this run "
                "(matrix coverage shrank)"
            )
            continue
        compared += 1
        for field in EXACT_FIELDS:
            if row.get(field) != base.get(field):
                problems.append(
                    f"{cell}: {field} changed "
                    f"{base.get(field)!r} -> {row.get(field)!r}"
                )
        for field in RATIO_FIELDS:
            was, now = base.get(field), row.get(field)
            if not isinstance(was, (int, float)) or not isinstance(
                now, (int, float)
            ):
                continue
            if now > max(was, 1) * max_ratio:
                problems.append(
                    f"{cell}: {field} grew {was} -> {now} "
                    f"(> {max_ratio:g}x)"
                )
    return problems, compared


__all__ = [
    "EXACT_FIELDS",
    "MAX_RATIO",
    "RATIO_FIELDS",
    "diff_rows",
    "load_rows",
]
