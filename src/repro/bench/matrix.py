"""The declarative bench matrix: axes in, cells out.

A :class:`MatrixSpec` names the six axes — workloads, configurations,
solving tiers, points-to storages, worklist schedules, worker counts —
plus one scale factor, and :meth:`MatrixSpec.expand` takes the cross
product into an ordered, deduplicated list of :class:`Cell` records.
Everything here is pure data: no workload is rendered and no analysis
runs until the scheduler executes a cell, so a 500-cell matrix can be
validated, named and diffed for free.

Axis values are validated at construction (:class:`BenchSpecError`
with a one-line message), the same boundary discipline as
:class:`repro.options.AnalysisOptions`: a typo'd tier must fail where
it was written, not 40 cells into a run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.bitsets import STORAGES
from repro.analysis.tiers import TIERS
from repro.options import SCHEDULES

#: Differ-style config spec -> ``analyze()`` configuration name.
SPEC_TO_CONFIG = {
    "msan": "msan",
    "tl": "usher_tl",
    "tl_at": "usher_tl_at",
    "opt_i": "usher_opt1",
    "full": "usher",
    "ext": "usher_ext",
}

#: The accepted configuration axis values, in presentation order.
CONFIG_SPECS = tuple(SPEC_TO_CONFIG)

#: The default configuration axis: the paper's four Usher columns.
DEFAULT_CONFIGS = ("tl", "tl_at", "opt_i", "full")

#: The default tier axis: eager solving and the Steensgaard pre-pass.
DEFAULT_TIERS = ("full", "unified")


class BenchSpecError(ValueError):
    """An invalid bench matrix: unknown axis value, empty axis, ..."""


@dataclass(frozen=True)
class Cell:
    """One point of the matrix: a workload under one exact setup.

    The :attr:`name` — ``164.gzip/tl/full/int/wave/j1`` — is the stable
    identity baselines and reports key on; ``scale`` deliberately stays
    out of it (a run has one scale, recorded per row) so baselines
    survive scale-for-speed changes being caught *explicitly* by the
    diff, not silently by cells failing to match.
    """

    workload: str
    config: str
    tier: str
    storage: str
    schedule: str
    jobs: int
    scale: float

    @property
    def name(self) -> str:
        return (
            f"{self.workload}/{self.config}/{self.tier}/"
            f"{self.storage}/{self.schedule}/j{self.jobs}"
        )

    @property
    def analysis_config(self) -> str:
        """The ``analyze()`` configuration name for this cell."""
        return SPEC_TO_CONFIG[self.config]

    def identity(self) -> dict:
        """The row fields that identify this cell in the JSONL log."""
        return {
            "cell": self.name,
            "workload": self.workload,
            "config": self.config,
            "tier": self.tier,
            "storage": self.storage,
            "schedule": self.schedule,
            "jobs": self.jobs,
            "scale": self.scale,
        }


def _check_axis(name: str, values: Sequence, allowed: Sequence) -> None:
    if not values:
        raise BenchSpecError(f"empty {name} axis")
    for value in values:
        if value not in allowed:
            known = ", ".join(str(a) for a in allowed)
            raise BenchSpecError(
                f"unknown {name} {value!r} (expected one of: {known})"
            )


@dataclass(frozen=True)
class MatrixSpec:
    """The declarative matrix: six axes and a scale.

    Workload names are carried opaquely — the scheduler resolves them
    against the workload registry and the corpus at execution time —
    but every other axis validates eagerly against the pipeline's
    accepted values.
    """

    workloads: Tuple[str, ...]
    configs: Tuple[str, ...] = DEFAULT_CONFIGS
    tiers: Tuple[str, ...] = DEFAULT_TIERS
    storages: Tuple[str, ...] = ("int",)
    schedules: Tuple[str, ...] = ("wave",)
    jobs: Tuple[int, ...] = (1,)
    scale: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "configs", tuple(self.configs))
        object.__setattr__(self, "tiers", tuple(self.tiers))
        object.__setattr__(self, "storages", tuple(self.storages))
        object.__setattr__(self, "schedules", tuple(self.schedules))
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if not self.workloads:
            raise BenchSpecError("empty workloads axis")
        for name in self.workloads:
            if not name or not isinstance(name, str):
                raise BenchSpecError(f"invalid workload name {name!r}")
        _check_axis("config", self.configs, CONFIG_SPECS)
        _check_axis("tier", self.tiers, TIERS)
        _check_axis("storage", self.storages, STORAGES)
        _check_axis("schedule", self.schedules, SCHEDULES)
        if not self.jobs:
            raise BenchSpecError("empty jobs axis")
        for count in self.jobs:
            if not isinstance(count, int) or count < 1:
                raise BenchSpecError(
                    f"jobs axis values must be positive integers, "
                    f"got {count!r}"
                )
        if not (isinstance(self.scale, (int, float)) and self.scale > 0):
            raise BenchSpecError(f"scale must be positive, got {self.scale!r}")

    def expand(self) -> List[Cell]:
        """The cross product as cells, workload-major, deduplicated.

        Repeated axis values (``--configs tl,tl``) collapse to their
        first occurrence; order is deterministic, so two expansions of
        the same spec enumerate identical lists — the property the
        resumable collector and the baseline diff rely on.
        """
        cells: List[Cell] = []
        seen = set()
        for combo in itertools.product(
            self.workloads,
            self.configs,
            self.tiers,
            self.storages,
            self.schedules,
            self.jobs,
        ):
            cell = Cell(*combo, scale=self.scale)
            if cell.name not in seen:
                seen.add(cell.name)
                cells.append(cell)
        return cells

    @classmethod
    def from_args(
        cls,
        workloads: Sequence[str],
        configs: str = ",".join(DEFAULT_CONFIGS),
        tiers: str = ",".join(DEFAULT_TIERS),
        storages: str = "int",
        schedules: str = "wave",
        jobs: str = "1",
        scale: float = 1.0,
    ) -> "MatrixSpec":
        """Build a spec from the CLI's comma-separated axis strings."""
        try:
            jobs_axis = tuple(int(j) for j in _split(jobs, "jobs"))
        except ValueError:
            raise BenchSpecError(
                f"jobs axis must be a comma list of integers, got {jobs!r}"
            ) from None
        return cls(
            workloads=tuple(workloads),
            configs=_split(configs, "configs"),
            tiers=_split(tiers, "tiers"),
            storages=_split(storages, "storages"),
            schedules=_split(schedules, "schedules"),
            jobs=jobs_axis,
            scale=scale,
        )


def _split(text: str, axis: str) -> Tuple[str, ...]:
    values = tuple(part.strip() for part in text.split(",") if part.strip())
    if not values:
        raise BenchSpecError(f"empty {axis} axis: {text!r}")
    return values


__all__ = [
    "BenchSpecError",
    "CONFIG_SPECS",
    "Cell",
    "DEFAULT_CONFIGS",
    "DEFAULT_TIERS",
    "MatrixSpec",
    "SPEC_TO_CONFIG",
]
