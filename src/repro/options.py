"""The consolidated analysis-options surface: one frozen record, one
resolution path.

Historically every knob of the analysis pipeline — ``jobs=``, ``tier=``,
``demand=``, ``resolver=``, ``schedule=`` — was threaded separately
through :func:`repro.api.analyze`, :func:`repro.core.prepare_module`,
:func:`repro.harness.report.build_report`,
:func:`repro.oracle.run_campaign` and three copies of the same argparse
flags.  :class:`AnalysisOptions` replaces the five parallel threads with
one frozen dataclass accepted everywhere (``analyze(options=...)``,
``prepare_module(..., options=...)``, ``build_report(options=...)``,
``run_campaign(..., options=...)``, the CLI via a shared argparse group
and :class:`repro.service.session.AnalysisSession`).

Resolution order is unchanged and uniform per knob::

    explicit > session default > environment > built-in default

A field left ``None`` simply defers to the next layer — the same
semantics the individual keywords always had
(:func:`repro.analysis.parallel.resolve_jobs`,
:func:`repro.analysis.tiers.resolve_tier`).  The old keyword arguments
remain as thin shims for one release; an options object always wins
over a keyword when both are given.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Iterator, Optional

from repro.analysis.bitsets import (
    STORAGE_ENV,
    STORAGES,
    InvalidStorageError,
    default_storage,
    parse_storage,
)
from repro.analysis.parallel import (
    JOBS_ENV,
    InvalidJobsError,
    default_jobs,
    parse_jobs,
)
from repro.analysis.tiers import (
    TIER_ENV,
    TIERS,
    InvalidTierError,
    default_tier,
    parse_tier,
)

#: Definedness resolvers accepted by ``AnalysisOptions.resolver``.
RESOLVERS = ("callstring", "summary")

#: Solver worklist schedules accepted by ``AnalysisOptions.schedule``.
SCHEDULES = ("wave", "fifo")


@dataclass(frozen=True)
class AnalysisOptions:
    """Every analysis knob in one immutable record.

    All fields default to ``None`` — "defer to the next resolution
    layer" (session default, then environment, then built-in default).
    Construction validates eagerly, so a typo'd tier or worker count
    fails where it was written, not mid-analysis.

    Attributes:
        tier: Solving tier (``full`` / ``lazy`` / ``unified``); ``None``
            defers to :func:`repro.analysis.tiers.resolve_tier`.
        jobs: Worker processes for the parallel paths; ``None`` defers
            to :func:`repro.analysis.parallel.resolve_jobs`.
        demand: Resolve Γ demand-driven (backward VFG slicing) instead
            of whole-program reachability; ``None`` keeps each entry
            point's default (``False`` everywhere today).
        resolver: ``"callstring"`` or ``"summary"``.
        schedule: :class:`~repro.analysis.andersen.DeltaSolver` worklist
            discipline, ``"wave"`` or ``"fifo"``.
        storage: Points-to set representation (``int`` / ``compressed``
            / ``auto``); ``None`` defers to
            :func:`repro.analysis.bitsets.resolve_storage`.  Results
            are bit-identical for any storage.
        config: A configuration name (``usher``, ``usher_tl``, ...) for
            entry points that analyze one configuration — ``repro
            serve`` sessions and ``analyze()`` when ``configs=`` is not
            given.
        context_depth: Call-string depth for definedness resolution.
    """

    tier: Optional[str] = None
    jobs: Optional[int] = None
    demand: Optional[bool] = None
    resolver: Optional[str] = None
    schedule: Optional[str] = None
    storage: Optional[str] = None
    config: Optional[str] = None
    context_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.tier is not None:
            object.__setattr__(self, "tier", parse_tier(self.tier, origin="tier"))
        if self.storage is not None:
            object.__setattr__(
                self, "storage", parse_storage(self.storage, origin="storage")
            )
        if self.jobs is not None:
            object.__setattr__(
                self, "jobs", parse_jobs(str(self.jobs), origin="jobs")
            )
        if self.demand is not None and not isinstance(self.demand, bool):
            raise ValueError(f"demand must be a bool or None, got {self.demand!r}")
        if self.resolver is not None and self.resolver not in RESOLVERS:
            known = ", ".join(RESOLVERS)
            raise ValueError(
                f"resolver must be one of {known}; got {self.resolver!r}"
            )
        if self.schedule is not None and self.schedule not in SCHEDULES:
            known = ", ".join(SCHEDULES)
            raise ValueError(
                f"schedule must be one of {known}; got {self.schedule!r}"
            )
        if self.context_depth is not None and (
            not isinstance(self.context_depth, int) or self.context_depth < 0
        ):
            raise ValueError(
                f"context_depth must be a non-negative integer, "
                f"got {self.context_depth!r}"
            )

    # ------------------------------------------------------------------
    def merged(self, **overrides) -> "AnalysisOptions":
        """A copy with the non-``None`` ``overrides`` applied."""
        updates = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **updates) if updates else self

    def or_keywords(self, **keywords) -> dict:
        """Resolve keyword fallbacks against this record.

        For each ``name=fallback``, the returned dict holds this
        record's field when it is set and ``fallback`` otherwise —
        the one-liner every ``options=``-accepting entry point uses to
        honor its legacy keywords."""
        out = {}
        for name, fallback in keywords.items():
            value = getattr(self, name)
            out[name] = fallback if value is None else value
        return out

    def as_dict(self) -> dict:
        """The non-``None`` fields, for JSON round-trips (``repro
        serve`` requests) and stats records."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        }

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "AnalysisOptions":
        """Validated construction from a JSON-ish mapping; unknown keys
        are rejected (a typo'd knob must not silently default)."""
        if not data:
            return cls()
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            names = ", ".join(sorted(unknown))
            raise ValueError(f"unknown analysis option(s): {names}")
        return cls(**data)


@contextmanager
def session_options(options: Optional[AnalysisOptions]) -> Iterator[AnalysisOptions]:
    """Install ``options``'s tier and worker count as session defaults
    for the enclosed block (layer 2 of the resolution order).

    ``None`` fields — and a ``None`` options object — are no-ops, so an
    optional CLI argument passes straight through.  Nesting restores the
    previous defaults on exit."""
    opts = options if options is not None else AnalysisOptions()
    with default_jobs(opts.jobs):
        with default_tier(opts.tier):
            with default_storage(opts.storage):
                yield opts


# ----------------------------------------------------------------------
# CLI integration: one shared argparse group + boundary validation.
# ----------------------------------------------------------------------
def validate_jobs_arg(raw: Optional[str]) -> Optional[int]:
    """Validate a ``--jobs`` value (kept as text so a typo produces a
    one-line message instead of argparse's usage dump).  With no flag, a
    *malformed* ``REPRO_JOBS`` is rejected here, at the boundary, rather
    than mid-analysis."""
    if raw is None:
        env = os.environ.get(JOBS_ENV)
        if env is not None:
            parse_jobs(env, origin=JOBS_ENV)
        return None
    return parse_jobs(raw, origin="--jobs")


def validate_tier_arg(raw: Optional[str]) -> Optional[str]:
    """Validate a ``--tier`` value (same boundary discipline as
    :func:`validate_jobs_arg`: with no flag, a *malformed*
    ``REPRO_TIER`` is rejected here with a one-line message, not
    mid-analysis)."""
    if raw is None:
        env = os.environ.get(TIER_ENV)
        if env is not None:
            parse_tier(env, origin=TIER_ENV)
        return None
    return parse_tier(raw, origin="--tier")


def validate_storage_arg(raw: Optional[str]) -> Optional[str]:
    """Validate a ``--storage`` value (same boundary discipline as
    :func:`validate_tier_arg`: with no flag, a *malformed*
    ``REPRO_STORAGE`` is rejected here with a one-line message, not
    mid-analysis)."""
    if raw is None:
        env = os.environ.get(STORAGE_ENV)
        if env is not None:
            parse_storage(env, origin=STORAGE_ENV)
        return None
    return parse_storage(raw, origin="--storage")


def add_analysis_options(parser, *, demand_flag: bool = False) -> None:
    """Add the shared ``--jobs`` / ``--tier`` (and optionally
    ``--demand``) analysis-options group to an argparse (sub)parser.

    One definition replaces the previously triplicated flag blocks of
    ``repro check`` / ``report`` / ``fuzz``; ``repro serve`` picks it up
    for free."""
    group = parser.add_argument_group("analysis options")
    group.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="worker processes for the parallel analysis paths (sharded "
        "constraint generation; batched demand queries); default: "
        "$REPRO_JOBS or 1 (serial). Results are identical for any value",
    )
    group.add_argument(
        "--tier",
        default=None,
        metavar="TIER",
        help="solving tier: full (eager Andersen fixpoint), lazy (defer "
        "solving; queries force only their backward constraint slice) "
        "or unified (Steensgaard-style pre-collapse, then solve); "
        "default: $REPRO_TIER or full. Results are identical for any tier",
    )
    group.add_argument(
        "--storage",
        default=None,
        metavar="STORAGE",
        help="points-to set representation: int (dense Python-int "
        "bitsets), compressed (roaring-style array/bitmap/run "
        "containers) or auto (compressed for large modules); default: "
        "$REPRO_STORAGE or int. Results are identical for any storage",
    )
    if demand_flag:
        group.add_argument(
            "--demand",
            action="store_true",
            help="resolve definedness demand-driven (backward VFG "
            "slicing) instead of whole-program reachability; identical "
            "verdicts",
        )


def options_from_args(args) -> AnalysisOptions:
    """Build a validated :class:`AnalysisOptions` from parsed CLI args.

    Runs the boundary validation (malformed flag *or* malformed
    environment variable → one-line :class:`InvalidJobsError` /
    :class:`InvalidTierError`, which the CLI maps to exit code 2)."""
    demand = getattr(args, "demand", None)
    return AnalysisOptions(
        jobs=validate_jobs_arg(getattr(args, "jobs", None)),
        tier=validate_tier_arg(getattr(args, "tier", None)),
        storage=validate_storage_arg(getattr(args, "storage", None)),
        demand=True if demand else None,
        config=getattr(args, "config", None),
    )


__all__ = [
    "RESOLVERS",
    "SCHEDULES",
    "STORAGES",
    "AnalysisOptions",
    "InvalidJobsError",
    "InvalidStorageError",
    "InvalidTierError",
    "TIERS",
    "add_analysis_options",
    "options_from_args",
    "session_options",
    "validate_jobs_arg",
    "validate_storage_arg",
    "validate_tier_arg",
]
