"""One-shot experiment report: every table and figure, as markdown.

``python -m repro report -o results.md --scale 1.0`` regenerates the
full evaluation (Table 1, Figures 10/11, §4.6, ablations, the static
warner foil and the array-init extension) into a single document —
the artifact EXPERIMENTS.md's numbers come from.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.api import analyze
from repro.options import AnalysisOptions, session_options
from repro.core.static_warner import false_positive_report
from repro.harness.ablation import build_ablation, format_ablation
from repro.harness.figure10 import build_figure10, format_figure10
from repro.harness.figure11 import build_figure11, format_figure11
from repro.harness.opt_levels import build_opt_levels, format_opt_levels
from repro.harness.runner import run_workload
from repro.harness.table1 import build_table1, format_table1
from repro.workloads import WORKLOADS

ABLATION_DEFAULT = ("181.mcf", "188.ammp", "300.twolf", "254.gap")


def _block(text: str) -> str:
    return f"```\n{text}\n```"


def build_report(
    scale: float = 1.0,
    sections: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    options: Optional[AnalysisOptions] = None,
) -> str:
    """Build the full markdown report.

    ``sections`` may restrict to a subset of
    ``{"table1", "figure10", "figure11", "opt_levels", "ablation",
    "warner", "extension", "solver", "trace"}`` ("trace" is opt-in
    only — it never appears in the default set).  ``options`` (or the legacy
    ``jobs`` keyword) installs session-default knobs — worker count,
    solving tier — so every analysis the report runs picks them up;
    the report content is identical for any value.
    """
    opts = options if options is not None else AnalysisOptions()
    if jobs is not None and opts.jobs is None:
        opts = opts.merged(jobs=jobs)
    with session_options(opts):
        return _build_report_body(scale, sections)


def _build_report_body(
    scale: float,
    sections: Optional[List[str]],
) -> str:
    wanted = set(
        sections
        or (
            "table1",
            "figure10",
            "figure11",
            "opt_levels",
            "ablation",
            "warner",
            "extension",
            "solver",
        )
    )
    # "trace" is opt-in: it re-runs an analysis with tracing enabled,
    # so it only appears when asked for via --sections.
    started = time.perf_counter()
    parts: List[str] = [
        "# Usher reproduction — experiment report",
        "",
        f"Workload scale: {scale} (1.0 = reference inputs).",
        "",
    ]

    if "table1" in wanted:
        parts += [
            "## Table 1 — benchmark statistics (O0+IM)",
            "",
            _block(format_table1(build_table1(scale=scale))),
            "",
        ]
    if "figure10" in wanted:
        figure = build_figure10(scale=scale)
        averages = figure.averages()
        reduction = 100 * (1 - averages["usher"] / averages["msan"])
        parts += [
            "## Figure 10 — slowdown vs native (O0+IM)",
            "",
            _block(format_figure10(figure)),
            "",
            f"Usher reduces MSan's average overhead by {reduction:.1f}% "
            f"(paper: 59.3%).",
            "",
        ]
    if "figure11" in wanted:
        parts += [
            "## Figure 11 — static propagations/checks vs MSan",
            "",
            _block(format_figure11(build_figure11(scale=scale))),
            "",
        ]
    if "opt_levels" in wanted:
        parts += [
            "## §4.6 — optimization levels",
            "",
            _block(format_opt_levels(build_opt_levels(scale=scale))),
            "",
        ]
    if "ablation" in wanted:
        parts += [
            "## Ablations (beyond the paper)",
            "",
            _block(
                format_ablation(
                    build_ablation(
                        scale=min(scale, 0.3),
                        workload_names=ABLATION_DEFAULT,
                    )
                )
            ),
            "",
        ]
    if "solver" in wanted:
        parts += [
            "## Constraint solver profile (delta vs reference)",
            "",
            _solver_table(scale),
            "",
        ]
    if "warner" in wanted:
        parts += ["## Static warner foil (§1)", "", _warner_table(scale), ""]
    if "extension" in wanted:
        parts += [
            "## Array-init extension (paper's future work)",
            "",
            _extension_table(scale),
            "",
        ]
    if "trace" in wanted:
        parts += [
            "## Phase trace (one traced run of the first workload)",
            "",
            _trace_tree(scale),
            "",
        ]

    parts.append(
        f"_Generated in {time.perf_counter() - started:.1f}s by "
        f"`repro.harness.report`._"
    )
    return "\n".join(parts)


def _warner_table(scale: float) -> str:
    lines = [
        f"{'benchmark':14s}{'warnings':>10s}{'true bugs':>11s}{'FP rate':>9s}"
    ]
    for w in WORKLOADS:
        run = run_workload(w, scale=min(scale, 0.3))
        report = false_positive_report(
            w.name, run.analysis.prepared, run.native().true_bug_set()
        )
        lines.append(
            f"{w.name:14s}{report.static_warning_sites:>10d}"
            f"{report.true_bug_sites:>11d}{report.false_positive_rate:>8.0%}"
        )
    return _block("\n".join(lines))


def _solver_table(scale: float) -> str:
    """Per-workload work profile of both constraint solvers."""
    from repro.analysis.andersen import analyze_pointers
    from repro.tinyc import compile_source

    lines = [
        f"{'benchmark':14s}{'solver':>10s}{'pops':>9s}{'facts':>10s}"
        f"{'added':>9s}{'SCCs':>6s}{'solve(s)':>10s}"
    ]
    for w in WORKLOADS:
        module = compile_source(w.source(min(scale, 0.3)), w.name)
        for label, use_reference in (("delta", False), ("reference", True)):
            stats = analyze_pointers(
                module, use_reference=use_reference
            ).solver_stats
            lines.append(
                f"{w.name:14s}{label:>10s}{stats.pops:>9d}"
                f"{stats.facts_propagated:>10d}{stats.facts_added:>9d}"
                f"{stats.sccs_collapsed:>6d}"
                f"{stats.phase_seconds.get('solve', 0.0):>10.4f}"
            )
    return _block("\n".join(lines))


def _trace_tree(scale: float) -> str:
    """Span tree of one traced end-to-end analysis.

    Captures every phase span — parse, constraint solving (per wave),
    VFG construction, Opt I/II, instrumentation — for the first
    workload at a small scale, and renders the hierarchy with wall
    times.  Spans under 1% of the root are folded away.
    """
    from repro.obs.trace import TRACE

    w = WORKLOADS[0]
    with TRACE.capture():
        analyze(source=w.source(min(scale, 0.3)), name=w.name)
        tree = TRACE.render_tree(min_fraction=0.01)
    return _block(tree or "(no spans recorded)")


def _extension_table(scale: float) -> str:
    lines = [f"{'benchmark':14s}{'usher':>10s}{'usher_ext':>11s}{'cuts':>6s}"]
    for w in WORKLOADS:
        analysis = analyze(
            source=w.source(min(scale, 0.3)),
            name=w.name,
            configs=["usher", "usher_ext"],
        )
        lines.append(
            f"{w.name:14s}{analysis.slowdown('usher'):>9.1f}%"
            f"{analysis.slowdown('usher_ext'):>10.1f}%"
            f"{analysis.results['usher_ext'].vfg.stats.array_init_cuts:>6d}"
        )
    return _block("\n".join(lines))
