"""Figure 10: execution-time slowdowns, normalized to native code.

Per workload and on average: MSan, Usher_TL, Usher_TL+AT, Usher_OptI
and Usher (O0+IM).  The paper reports averages of 302%, 272%, 193%,
181% and 123%; the reproduction matches the shape (strict ordering,
large TL→TL+AT step, near-zero 181.mcf, high 253.perlbmk), not the
absolute numbers.

Also verifies §4.5's detection result: the one true use of an undefined
value in 197.parser is detected by MSan and by every Usher variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api import CONFIG_ORDER
from repro.harness.runner import run_all_workloads
from repro.runtime import DEFAULT_COST_MODEL, CostModel


@dataclass
class Figure10Row:
    benchmark: str
    slowdowns: Dict[str, float]  # config -> percent
    warnings: Dict[str, int]  # config -> distinct warning sites
    true_bugs: int

    def as_dict(self) -> Dict[str, object]:
        return {"benchmark": self.benchmark, **self.slowdowns}


@dataclass
class Figure10:
    rows: List[Figure10Row] = field(default_factory=list)

    def average(self, config: str) -> float:
        return sum(r.slowdowns[config] for r in self.rows) / len(self.rows)

    def averages(self) -> Dict[str, float]:
        return {config: self.average(config) for config in CONFIG_ORDER}

    def row(self, benchmark: str) -> Figure10Row:
        return next(r for r in self.rows if r.benchmark == benchmark)


def build_figure10(
    scale: float = 1.0,
    level: str = "O0+IM",
    model: CostModel = DEFAULT_COST_MODEL,
) -> Figure10:
    figure = Figure10()
    for run in run_all_workloads(level, scale):
        slowdowns = {c: run.slowdown(c, model) for c in CONFIG_ORDER}
        warnings = {
            c: len(run.report(c).warning_set()) for c in CONFIG_ORDER
        }
        figure.rows.append(
            Figure10Row(
                benchmark=run.workload.name,
                slowdowns=slowdowns,
                warnings=warnings,
                true_bugs=len(run.native().true_bug_set()),
            )
        )
    return figure


def format_figure10(figure: Figure10) -> str:
    configs = list(CONFIG_ORDER)
    header = f"{'benchmark':14s}" + "".join(f"{c:>13s}" for c in configs)
    lines = [header, "-" * len(header)]
    for row in figure.rows:
        cells = "".join(f"{row.slowdowns[c]:>12.1f}%" for c in configs)
        lines.append(f"{row.benchmark:14s}{cells}")
    lines.append("-" * len(header))
    avg = figure.averages()
    lines.append(
        f"{'average':14s}" + "".join(f"{avg[c]:>12.1f}%" for c in configs)
    )
    return "\n".join(lines)
