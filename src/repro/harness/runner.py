"""Shared experiment runner: analyze and execute one workload.

Caches per-(workload, level, scale) results so the table/figure
builders and the pytest benchmarks don't redo work.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.api import Analysis, analyze
from repro.runtime import DEFAULT_COST_MODEL, CostModel, ExecutionReport
from repro.vfg.graph import Node, Root
from repro.workloads import WORKLOADS, Workload


@dataclass
class WorkloadRun:
    """One workload fully analyzed and executed under every config."""

    workload: Workload
    analysis: Analysis
    peak_memory_mb: float

    def native(self) -> ExecutionReport:
        return self.analysis.run_native()

    def report(self, config: str) -> ExecutionReport:
        return self.analysis.run(config)

    def slowdown(self, config: str, model: CostModel = DEFAULT_COST_MODEL) -> float:
        return self.analysis.slowdown(config, model)


_CACHE: Dict[Tuple[str, str, float], WorkloadRun] = {}


def run_workload(
    workload: Workload,
    level: str = "O0+IM",
    scale: float = 1.0,
    use_cache: bool = True,
) -> WorkloadRun:
    key = (workload.name, level, scale)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    tracemalloc.start()
    analysis = analyze(
        source=workload.source(scale), name=workload.name, level=level
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    run = WorkloadRun(workload, analysis, peak / (1024.0 * 1024.0))
    if use_cache:
        _CACHE[key] = run
    return run


def run_all_workloads(
    level: str = "O0+IM", scale: float = 1.0
) -> List[WorkloadRun]:
    return [run_workload(w, level, scale) for w in WORKLOADS]


def clear_cache() -> None:
    _CACHE.clear()


def nodes_reaching_checks(analysis: Analysis) -> Set[Node]:
    """VFG nodes whose value reaches a needed runtime check (%B basis).

    Backward closure over dependence edges from the ⊥ critical-use
    nodes, using the TL+AT configuration's graph (the paper's Table 1 is
    computed before the VFG-based optimizations)."""
    result = analysis.results["usher_tl_at"]
    vfg, gamma = result.vfg, result.gamma
    work = [
        site.node
        for site in vfg.check_sites
        if site.node is not None and not gamma.is_defined(site.node)
    ]
    seen: Set[Node] = set()
    while work:
        node = work.pop()
        if node in seen or isinstance(node, Root):
            continue
        seen.add(node)
        for edge in vfg.deps_of(node):
            work.append(edge.src)
    return seen
