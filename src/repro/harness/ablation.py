"""Ablation studies for the design choices DESIGN.md calls out.

Not in the paper's evaluation, but each knob corresponds to a design
decision the paper motivates:

- **semi-strong updates** (§3.2, Figure 6): off → weak updates at every
  non-strong store;
- **context sensitivity depth** (§3.3): 0 (context-insensitive), 1 (the
  paper's setting), 2, and the fully context-sensitive summary-based
  tabulation (``summary``);
- **heap cloning** (§4.1): off → one abstract object per allocation
  site regardless of call site.

Reported metric: static shadow propagations + checks of the full Usher
configuration (smaller = the knob helped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api import analyze
from repro.workloads import WORKLOADS

VARIANTS = (
    "baseline",
    "no_semi_strong",
    "ctx0",
    "ctx2",
    "summary",
    "no_heap_cloning",
)


@dataclass
class AblationRow:
    benchmark: str
    #: variant -> (static propagations, static checks)
    metrics: Dict[str, "tuple[int, int]"] = field(default_factory=dict)


def _analyze(source: str, name: str, variant: str):
    kwargs = {"configs": ["usher"]}
    if variant == "no_semi_strong":
        kwargs["semi_strong"] = False
    elif variant == "ctx0":
        kwargs["context_depth"] = 0
    elif variant == "ctx2":
        kwargs["context_depth"] = 2
    elif variant == "summary":
        kwargs["resolver"] = "summary"
    elif variant == "no_heap_cloning":
        kwargs["heap_cloning"] = False
    return analyze(source=source, name=name, **kwargs)


def build_ablation(scale: float = 0.3, workload_names=None) -> List[AblationRow]:
    rows: List[AblationRow] = []
    selected = [
        w for w in WORKLOADS if workload_names is None or w.name in workload_names
    ]
    for workload in selected:
        row = AblationRow(benchmark=workload.name)
        for variant in VARIANTS:
            analysis = _analyze(workload.source(scale), workload.name, variant)
            row.metrics[variant] = (
                analysis.static_propagations("usher"),
                analysis.static_checks("usher"),
            )
        rows.append(row)
    return rows


def format_ablation(rows: List[AblationRow]) -> str:
    header = f"{'benchmark':14s}" + "".join(f"{v:>22s}" for v in VARIANTS)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = "".join(
            f"{p:>14d}p/{c:>4d}c" for p, c in (row.metrics[v] for v in VARIANTS)
        )
        lines.append(f"{row.benchmark:14s}{cells}")
    return "\n".join(lines)
