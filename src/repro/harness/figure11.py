"""Figure 11: static shadow propagations and checks, normalized to MSan.

The paper reports (averages): Usher_TL 57% propagations / 72% checks,
Usher_TL+AT 32% / 44%, Usher_OptI 22% / 44%, Usher 16% / 23%.  The
reproduction matches the monotone shape per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.harness.runner import run_all_workloads

USHER_CONFIGS = ("usher_tl", "usher_tl_at", "usher_opt1", "usher")


@dataclass
class Figure11Row:
    benchmark: str
    #: config -> (propagations fraction of MSan, checks fraction of MSan)
    normalized: Dict[str, "tuple[float, float]"]
    msan_propagations: int
    msan_checks: int


@dataclass
class Figure11:
    rows: List[Figure11Row] = field(default_factory=list)

    def average_propagations(self, config: str) -> float:
        return sum(r.normalized[config][0] for r in self.rows) / len(self.rows)

    def average_checks(self, config: str) -> float:
        return sum(r.normalized[config][1] for r in self.rows) / len(self.rows)


def build_figure11(scale: float = 1.0, level: str = "O0+IM") -> Figure11:
    figure = Figure11()
    for run in run_all_workloads(level, scale):
        analysis = run.analysis
        msan_props = max(analysis.static_propagations("msan"), 1)
        msan_checks = max(analysis.static_checks("msan"), 1)
        normalized = {}
        for config in USHER_CONFIGS:
            normalized[config] = (
                analysis.static_propagations(config) / msan_props,
                analysis.static_checks(config) / msan_checks,
            )
        figure.rows.append(
            Figure11Row(
                benchmark=run.workload.name,
                normalized=normalized,
                msan_propagations=msan_props,
                msan_checks=msan_checks,
            )
        )
    return figure


def format_figure11(figure: Figure11) -> str:
    header = f"{'benchmark':14s}" + "".join(
        f"{c + suffix:>16s}"
        for c in USHER_CONFIGS
        for suffix in ("/prop", "/chk")
    )
    lines = [header, "-" * len(header)]
    for row in figure.rows:
        cells = "".join(
            f"{row.normalized[c][i] * 100:>15.0f}%"
            for c in USHER_CONFIGS
            for i in (0, 1)
        )
        lines.append(f"{row.benchmark:14s}{cells}")
    lines.append("-" * len(header))
    avg_cells = "".join(
        f"{value * 100:>15.0f}%"
        for c in USHER_CONFIGS
        for value in (
            figure.average_propagations(c),
            figure.average_checks(c),
        )
    )
    lines.append(f"{'average':14s}{avg_cells}")
    return "\n".join(lines)
