"""§4.6: effect of compiler optimization levels on instrumentation
overhead.

Runs MSan and Usher (full) under O0+IM, O1 and O2 and reports the
average slowdowns plus Usher's overhead reduction at each level.  The
paper: MSan 302/231/212%, Usher 123/140/132%, reductions 59.3% (O0+IM),
39.4% (O1) and 37.7% (O2) — the gap narrows at higher levels because
the native baseline speeds up more than the instrumented code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.harness.runner import run_all_workloads
from repro.runtime import DEFAULT_COST_MODEL, CostModel

LEVELS = ("O0+IM", "O1", "O2")


@dataclass
class OptLevelRow:
    benchmark: str
    #: level -> {"msan": pct, "usher": pct}
    slowdowns: Dict[str, Dict[str, float]]


@dataclass
class OptLevelReport:
    rows: List[OptLevelRow] = field(default_factory=list)
    #: level -> native op counts per benchmark (baseline shrink evidence)
    native_ops: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def average(self, level: str, tool: str) -> float:
        return sum(r.slowdowns[level][tool] for r in self.rows) / len(self.rows)

    def reduction(self, level: str) -> float:
        """Usher's average overhead reduction vs MSan at ``level``."""
        msan = self.average(level, "msan")
        usher = self.average(level, "usher")
        return 100.0 * (msan - usher) / msan if msan else 0.0


def build_opt_levels(
    scale: float = 1.0, model: CostModel = DEFAULT_COST_MODEL
) -> OptLevelReport:
    report = OptLevelReport()
    per_bench: Dict[str, Dict[str, Dict[str, float]]] = {}
    for level in LEVELS:
        report.native_ops[level] = {}
        for run in run_all_workloads(level, scale):
            name = run.workload.name
            per_bench.setdefault(name, {})[level] = {
                "msan": run.slowdown("msan", model),
                "usher": run.slowdown("usher", model),
            }
            report.native_ops[level][name] = run.native().native_ops
    for name, slowdowns in per_bench.items():
        report.rows.append(OptLevelRow(benchmark=name, slowdowns=slowdowns))
    return report


def format_opt_levels(report: OptLevelReport) -> str:
    header = f"{'benchmark':14s}" + "".join(
        f"{level + '/' + tool:>14s}" for level in LEVELS for tool in ("msan", "usher")
    )
    lines = [header, "-" * len(header)]
    for row in report.rows:
        cells = "".join(
            f"{row.slowdowns[level][tool]:>13.1f}%"
            for level in LEVELS
            for tool in ("msan", "usher")
        )
        lines.append(f"{row.benchmark:14s}{cells}")
    lines.append("-" * len(header))
    avg = "".join(
        f"{report.average(level, tool):>13.1f}%"
        for level in LEVELS
        for tool in ("msan", "usher")
    )
    lines.append(f"{'average':14s}{avg}")
    lines.append(
        "overhead reduction: "
        + ", ".join(f"{level}: {report.reduction(level):.1f}%" for level in LEVELS)
    )
    return "\n".join(lines)
