"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness.ablation import build_ablation, format_ablation
from repro.harness.figure10 import Figure10, build_figure10, format_figure10
from repro.harness.figure11 import Figure11, build_figure11, format_figure11
from repro.harness.opt_levels import (
    OptLevelReport,
    build_opt_levels,
    format_opt_levels,
)
from repro.harness.report import build_report
from repro.harness.runner import (
    WorkloadRun,
    clear_cache,
    run_all_workloads,
    run_workload,
)
from repro.harness.table1 import Table1Row, build_table1, format_table1

__all__ = [
    "build_ablation",
    "format_ablation",
    "Figure10",
    "build_figure10",
    "format_figure10",
    "Figure11",
    "build_figure11",
    "format_figure11",
    "build_report",
    "OptLevelReport",
    "build_opt_levels",
    "format_opt_levels",
    "WorkloadRun",
    "clear_cache",
    "run_all_workloads",
    "run_workload",
    "Table1Row",
    "build_table1",
    "format_table1",
]
