"""Table 1: benchmark statistics under O0+IM.

Regenerates, per workload: program size, analysis time and memory,
variable population (top-level vs address-taken, split by storage
class), %F uninitialized allocations, semi-strong applications per
non-array heap allocation site (S), strong/weak store percentages
(%SU / %WU), VFG size, %B (nodes reaching a needed check), Opt I
simplified MFCs (S) and Opt II redirected nodes (R).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.memobjects import GLOBAL, HEAP, STACK
from repro.harness.runner import WorkloadRun, nodes_reaching_checks, run_all_workloads


@dataclass
class Table1Row:
    benchmark: str
    source_lines: int
    analysis_seconds: float
    memory_mb: float
    var_tl: int
    var_at_stack: int
    var_at_heap: int
    var_at_global: int
    pct_uninit_allocs: float  # %F
    semi_strong_per_heap_site: float  # S
    pct_strong_stores: float  # %SU
    pct_singleton_weak_stores: float  # %WU
    vfg_nodes: int
    pct_reaching_checks: float  # %B
    mfcs_simplified: int  # S (Opt I)
    redirected_nodes: int  # R (Opt II)

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


_COLUMNS = (
    ("benchmark", "Benchmark", "s"),
    ("source_lines", "Lines", "d"),
    ("analysis_seconds", "Time(s)", ".2f"),
    ("memory_mb", "Mem(MB)", ".1f"),
    ("var_tl", "VarTL", "d"),
    ("var_at_stack", "Stack", "d"),
    ("var_at_heap", "Heap", "d"),
    ("var_at_global", "Global", "d"),
    ("pct_uninit_allocs", "%F", ".0f"),
    ("semi_strong_per_heap_site", "S/site", ".1f"),
    ("pct_strong_stores", "%SU", ".0f"),
    ("pct_singleton_weak_stores", "%WU", ".0f"),
    ("vfg_nodes", "Nodes", "d"),
    ("pct_reaching_checks", "%B", ".0f"),
    ("mfcs_simplified", "S(OptI)", "d"),
    ("redirected_nodes", "R(OptII)", "d"),
)


def table1_row(run: WorkloadRun) -> Table1Row:
    analysis = run.analysis
    prepared = analysis.prepared
    tl_at = analysis.results["usher_tl_at"]
    full = analysis.results["usher"]
    vfg = tl_at.vfg
    stats = vfg.stats

    objects = prepared.pointers.all_objects()
    stack = [o for o in objects if o.kind == STACK]
    heap = [o for o in objects if o.kind == HEAP]
    globs = [o for o in objects if o.kind == GLOBAL]
    allocated = stack + heap
    uninit = [o for o in allocated if not o.initialized]

    top_level = {
        (f.name, v.name)
        for f in analysis.module.functions.values()
        for i in f.instructions()
        for v in i.defs()
    }

    analysis_seconds = prepared.prepare_seconds + sum(
        r.analysis_seconds for r in analysis.results.values()
    )

    stores = max(stats.stores_total, 1)
    heap_sites = max(stats.heap_alloc_sites, 1)
    reaching = nodes_reaching_checks(analysis)

    opt2 = full.opt2_stats

    return Table1Row(
        benchmark=run.workload.name,
        source_lines=len(run.workload.source().strip().splitlines()),
        analysis_seconds=analysis_seconds,
        memory_mb=run.peak_memory_mb,
        var_tl=len(top_level),
        var_at_stack=len(stack),
        var_at_heap=len(heap),
        var_at_global=len(globs),
        pct_uninit_allocs=100.0 * len(uninit) / max(len(allocated), 1),
        semi_strong_per_heap_site=stats.semi_strong_applied / heap_sites,
        pct_strong_stores=100.0 * stats.stores_strong / stores,
        pct_singleton_weak_stores=100.0 * stats.stores_singleton_weak / stores,
        vfg_nodes=vfg.num_nodes,
        pct_reaching_checks=100.0 * len(reaching) / max(vfg.num_nodes, 1),
        mfcs_simplified=analysis.results["usher_opt1"].guided_stats.mfcs_simplified,
        redirected_nodes=opt2.redirected_nodes if opt2 else 0,
    )


def build_table1(scale: float = 1.0) -> List[Table1Row]:
    return [table1_row(run) for run in run_all_workloads("O0+IM", scale)]


def format_table1(rows: List[Table1Row]) -> str:
    header = " ".join(f"{title:>9s}" for _, title, _ in _COLUMNS)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for attr, _, fmt in _COLUMNS:
            value = getattr(row, attr)
            cells.append(f"{value:>9{fmt}}" if fmt != "s" else f"{value:>9s}"[:12])
        lines.append(" ".join(cells))
    return "\n".join(lines)
