"""MSan-style full instrumentation (the baseline Usher accelerates).

Every value is shadowed and every statement gets its shadow statement
(§2.2): allocations poison/bless their memory, loads and stores
propagate shadow memory, calls relay argument/result shadows through
σ_g, and every critical operation (Definition 1) is checked.  No static
reasoning is involved — this is exactly the "blind" instrumentation the
paper describes MSan performing.
"""

from __future__ import annotations

from typing import Optional

from repro.ir import instructions as ins
from repro.ir.module import Module
from repro.ir.values import Value, Var
from repro.core.plan import (
    AndShadowVar,
    BinOpShadow,
    Check,
    CopyShadowVar,
    InstrumentationPlan,
    LoadShadow,
    PhiShadow,
    RelayIn,
    RelayOut,
    SetShadowMem,
    SetShadowVar,
    StoreShadow,
    UnOpShadow,
    VarSlot,
    var_slot,
)


def _slot(value: Value) -> Optional[VarSlot]:
    """The shadow slot of an operand (``None`` for defined constants)."""
    if isinstance(value, Var):
        return var_slot(value)
    return None


def build_msan_plan(module: Module) -> InstrumentationPlan:
    """Build the full-instrumentation plan for a module in SSA form."""
    plan = InstrumentationPlan("msan")
    for function in module.functions.values():
        _instrument_function(plan, function, module)
    return plan


def _instrument_function(
    plan: InstrumentationPlan, function, module: Module
) -> None:
    func = function.name

    # Parameters: main's are defined by the environment; everything else
    # receives its shadow through the σ_g relay at call sites.
    for index, param in enumerate(function.params):
        slot = (param, 1)
        if func == "main":
            plan.add_entry(func, SetShadowVar(slot, True))
        else:
            plan.add_entry(func, RelayIn(index, slot))

    # Version-0 (read-before-write) variables are undefined from entry.
    seen_zero = set()
    for instr in function.instructions():
        for var in instr.uses():
            if (var.version or 0) == 0 and var.name not in seen_zero:
                seen_zero.add(var.name)
                plan.add_entry(func, SetShadowVar((var.name, 0), False))
        if isinstance(instr, ins.Phi):
            for value in instr.incomings.values():
                if isinstance(value, Var) and (value.version or 0) == 0:
                    if value.name not in seen_zero:
                        seen_zero.add(value.name)
                        plan.add_entry(func, SetShadowVar((value.name, 0), False))

    for instr in function.instructions():
        _instrument_instr(plan, func, instr, module)


def _instrument_instr(
    plan: InstrumentationPlan, func: str, instr: ins.Instr, module: Module
) -> None:
    uid = instr.uid
    if isinstance(instr, (ins.ConstCopy, ins.GlobalAddr, ins.FuncAddr)):
        plan.add_post(uid, SetShadowVar(var_slot(instr.dst), True))
    elif isinstance(instr, ins.Copy):
        _propagate_unary(plan, uid, instr.dst, instr.src)
    elif isinstance(instr, ins.UnOp):
        if isinstance(instr.operand, Var):
            plan.add_post(
                uid, UnOpShadow(var_slot(instr.dst), instr.op, instr.operand)
            )
        else:
            plan.add_post(uid, SetShadowVar(var_slot(instr.dst), True))
    elif isinstance(instr, ins.BinOp):
        if instr.uses():
            plan.add_post(
                uid,
                BinOpShadow(var_slot(instr.dst), instr.op, instr.lhs, instr.rhs),
            )
        else:
            plan.add_post(uid, SetShadowVar(var_slot(instr.dst), True))
    elif isinstance(instr, ins.Gep):
        _propagate_nary(plan, uid, instr.dst, (instr.base, instr.offset))
    elif isinstance(instr, ins.Alloc):
        plan.add_post(uid, SetShadowVar(var_slot(instr.dst), True))
        plan.add_post(
            uid,
            SetShadowMem(var_slot(instr.dst), instr.initialized, whole_object=True),
        )
    elif isinstance(instr, ins.Load):
        _check(plan, instr, instr.ptr)
        ptr_slot = _slot(instr.ptr)
        if ptr_slot is not None:
            plan.add_post(uid, LoadShadow(var_slot(instr.dst), ptr_slot))
        else:
            plan.add_post(uid, SetShadowVar(var_slot(instr.dst), True))
    elif isinstance(instr, ins.Store):
        _check(plan, instr, instr.ptr)
        ptr_slot = _slot(instr.ptr)
        if ptr_slot is not None:
            plan.add_post(uid, StoreShadow(ptr_slot, _slot(instr.value)))
    elif isinstance(instr, ins.Call):
        for index, arg in enumerate(instr.args):
            plan.add_pre(uid, RelayOut(index, _slot(arg)))
        if instr.dst is not None:
            plan.add_post(uid, RelayIn("ret", var_slot(instr.dst)))
    elif isinstance(instr, ins.Ret):
        if instr.value is not None:
            plan.add_pre(uid, RelayOut("ret", _slot(instr.value)))
    elif isinstance(instr, ins.Branch):
        _check(plan, instr, instr.cond)
    elif isinstance(instr, ins.Output):
        _check(plan, instr, instr.value)
    elif isinstance(instr, ins.Phi):
        incomings = tuple(
            (label, _slot(value))
            for label, value in sorted(instr.incomings.items())
        )
        plan.add_post(uid, PhiShadow(var_slot(instr.dst), incomings))


def _check(plan: InstrumentationPlan, instr: ins.Instr, operand: Value) -> None:
    slot = _slot(operand)
    if slot is not None:
        plan.add_pre(instr.uid, Check(slot, instr.uid))


def _propagate_unary(plan, uid: int, dst: Var, src: Value) -> None:
    slot = _slot(src)
    if slot is None:
        plan.add_post(uid, SetShadowVar(var_slot(dst), True))
    else:
        plan.add_post(uid, CopyShadowVar(var_slot(dst), slot))


def _propagate_nary(plan, uid: int, dst: Var, values) -> None:
    slots = tuple(s for s in (_slot(v) for v in values) if s is not None)
    if not slots:
        plan.add_post(uid, SetShadowVar(var_slot(dst), True))
    else:
        plan.add_post(uid, AndShadowVar(var_slot(dst), slots))
