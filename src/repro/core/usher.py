"""The Usher driver: configurations, pipeline, results (Figure 3).

Typical use::

    prepared = prepare_module(module)           # pointer analysis + memory SSA
    result = run_usher(prepared, UsherConfig.full())
    msan = run_msan(prepared)

``prepare_module`` runs phases 1-2 of Figure 3 once; each configuration
then builds its own VFG (phase 3), resolves definedness (phase 4),
optionally applies the VFG-based optimizations (phase 5 — Opt I/Opt II)
and generates guided instrumentation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.ir.module import Module
from repro.analysis.andersen import PointerResult, analyze_pointers
from repro.analysis.solverstats import QueryStats, SolverStats
from repro.analysis.callgraph import CallGraph
from repro.analysis.modref import ModRefResult
from repro.core.instrument import GuidedStats, build_guided_plan
from repro.core.msan import build_msan_plan
from repro.core.opt2 import Opt2Stats, redundant_check_elimination
from repro.core.plan import InstrumentationPlan
from repro.memssa import build_memory_ssa
from repro.obs.registry import REGISTRY
from repro.obs.trace import TRACE
from repro.vfg.builder import build_vfg
from repro.vfg.definedness import Definedness, resolve_definedness
from repro.vfg.demand import LazyDefinedness, resolve_definedness_demand
from repro.vfg.graph import VFG
from repro.vfg.tabulation import resolve_definedness_summary


def resolve_for_config(vfg: VFG, config: "UsherConfig") -> Definedness:
    """Run the configuration's definedness resolver."""
    if config.resolver not in ("callstring", "summary"):
        raise ValueError(f"unknown resolver {config.resolver!r}")
    if config.demand:
        return resolve_definedness_demand(
            vfg, config.context_depth, resolver=config.resolver, jobs=config.jobs
        )
    if config.resolver == "summary":
        return resolve_definedness_summary(vfg)
    return resolve_definedness(vfg, config.context_depth)


@dataclass(frozen=True)
class UsherConfig:
    """One analysis configuration (the four variants of §4.5).

    Attributes:
        name: Display name.
        address_taken: Analyze address-taken variables (False = Usher_TL).
        opt1: Apply value-flow simplification (§3.5.1).
        opt2: Apply redundant check elimination (§3.5.2).
        semi_strong: Enable the semi-strong update rule (ablation knob).
        context_depth: Call-string depth for definedness resolution
            (the paper uses 1).  Ignored by the summary resolver.
        resolver: ``"callstring"`` (the paper's k-limited matching) or
            ``"summary"`` (fully context-sensitive tabulation,
            :mod:`repro.vfg.tabulation`).
        demand: Resolve Γ demand-driven (backward VFG slicing per
            queried node, :mod:`repro.vfg.demand`) instead of by
            whole-program reachability.  Verdicts are bit-identical;
            only the evaluation strategy (and its cost profile)
            changes.
        array_init: Enable the array initialization-loop analysis
            (an extension beyond the paper, from its stated future
            work — see :mod:`repro.vfg.arrayinit`).
        opt2_interproc: Extend Opt II's dominance reasoning across
            function boundaries (extension beyond the paper).
        jobs: Worker processes for the parallel paths (batched demand
            queries; ``prepare_module`` consults it for sharded
            constraint generation via :func:`repro.api.analyze`).
            ``None`` defers to the session default / ``REPRO_JOBS``;
            1 is strictly serial.  Results are identical either way.
    """

    name: str = "usher"
    address_taken: bool = True
    opt1: bool = False
    opt2: bool = False
    semi_strong: bool = True
    context_depth: int = 1
    resolver: str = "callstring"
    demand: bool = False
    array_init: bool = False
    opt2_interproc: bool = False
    jobs: Optional[int] = None

    @classmethod
    def tl(cls) -> "UsherConfig":
        """Usher_TL: top-level variables only, no VFG optimizations."""
        return cls(name="usher_tl", address_taken=False)

    @classmethod
    def tl_at(cls) -> "UsherConfig":
        """Usher_TL+AT: also analyzes address-taken variables."""
        return cls(name="usher_tl_at")

    @classmethod
    def opt_i(cls) -> "UsherConfig":
        """Usher_OptI: Usher_TL+AT plus value-flow simplification."""
        return cls(name="usher_opt1", opt1=True)

    @classmethod
    def full(cls) -> "UsherConfig":
        """Usher: both VFG-based optimizations enabled."""
        return cls(name="usher", opt1=True, opt2=True)

    @classmethod
    def extended(cls) -> "UsherConfig":
        """Usher plus every beyond-paper extension: the array
        initialization-loop analysis and interprocedural Opt II."""
        return cls(
            name="usher_ext",
            opt1=True,
            opt2=True,
            array_init=True,
            opt2_interproc=True,
        )

    def with_name(self, name: str) -> "UsherConfig":
        return replace(self, name=name)


@dataclass
class PreparedModule:
    """A module with phases 1-2 of Figure 3 done (shared by configs)."""

    module: Module
    pointers: PointerResult
    callgraph: CallGraph
    modref: ModRefResult
    prepare_seconds: float

    @property
    def solver_stats(self) -> Optional[SolverStats]:
        """Constraint-solver profile of the pointer-analysis phase."""
        return self.pointers.solver_stats


@dataclass
class UsherResult:
    """Everything a configuration run produces."""

    config: UsherConfig
    plan: InstrumentationPlan
    vfg: VFG
    gamma: Definedness
    guided_stats: GuidedStats
    opt2_stats: Optional[Opt2Stats]
    analysis_seconds: float

    @property
    def static_propagations(self) -> int:
        return self.plan.count_propagations()

    @property
    def static_checks(self) -> int:
        return self.plan.count_checks()

    @property
    def query_stats(self) -> Optional[QueryStats]:
        """Demand-query profile when Γ was resolved demand-driven
        (``UsherConfig.demand``); ``None`` for the eager resolvers."""
        if isinstance(self.gamma, LazyDefinedness):
            return self.gamma.engine.stats
        return None


def prepare_module(
    module: Module,
    heap_cloning: bool = True,
    use_reference_solver: bool = False,
    jobs: Optional[int] = None,
    tier: Optional[str] = None,
    schedule: Optional[str] = None,
    storage: Optional[str] = None,
    options: Optional["AnalysisOptions"] = None,
) -> PreparedModule:
    """Run pointer analysis, mod/ref and memory-SSA construction.

    ``use_reference_solver`` swaps in the naive
    :class:`~repro.analysis.andersen.ReferenceSolver` (the escape hatch
    for differential debugging); results are identical, only slower.
    ``jobs`` shards constraint generation across worker processes
    (``None`` defers to the session default / ``REPRO_JOBS``).
    ``tier`` picks the solving tier — ``"full"``, ``"lazy"`` or
    ``"unified"`` (``None`` defers to the session default /
    ``REPRO_TIER``); results are bit-identical across tiers.
    ``schedule`` picks the solver worklist discipline (``"wave"`` /
    ``"fifo"``).  ``storage`` picks the points-to representation
    (``"int"`` / ``"compressed"`` / ``"auto"``; ``None`` defers to the
    session default / ``REPRO_STORAGE``); results are bit-identical
    across storages.  ``options`` is the consolidated knob record
    (:class:`repro.options.AnalysisOptions`); a set field wins over the
    corresponding keyword.
    """
    if options is not None:
        resolved = options.or_keywords(
            jobs=jobs, tier=tier, schedule=schedule, storage=storage
        )
        jobs = resolved["jobs"]
        tier = resolved["tier"]
        schedule = resolved["schedule"]
        storage = resolved["storage"]
    started = time.perf_counter()
    with TRACE.span("prepare"):
        pointers = analyze_pointers(
            module,
            heap_cloning=heap_cloning,
            use_reference=use_reference_solver,
            schedule=schedule,
            jobs=jobs,
            tier=tier,
            storage=storage,
        )
        with TRACE.span("callgraph"):
            callgraph = CallGraph(module, pointers)
        with TRACE.span("modref"):
            modref = ModRefResult(module, pointers, callgraph)
        with TRACE.span("memssa"):
            build_memory_ssa(module, pointers, modref)
    return PreparedModule(
        module, pointers, callgraph, modref, time.perf_counter() - started
    )


def run_usher(prepared: PreparedModule, config: UsherConfig) -> UsherResult:
    """Phases 3-5 of Figure 3 under ``config``."""
    started = time.perf_counter()
    with TRACE.span("vfg.build", config=config.name):
        vfg = build_vfg(
            prepared.module,
            prepared.pointers,
            prepared.callgraph,
            prepared.modref,
            address_taken=config.address_taken,
            semi_strong=config.semi_strong,
            array_init=config.array_init,
        )
    if vfg.stats is not None:
        REGISTRY.record_vfg(vfg.stats, config=config.name)
    if config.resolver not in ("callstring", "summary"):
        raise ValueError(f"unknown resolver {config.resolver!r}")
    opt2_stats: Optional[Opt2Stats] = None
    if config.opt2:
        # Opt II re-resolves Γ on its rewired scratch graph; resolving
        # the pristine VFG first would be pure waste.
        with TRACE.span("opt2", config=config.name):
            gamma, opt2_stats = redundant_check_elimination(
                prepared.module,
                vfg,
                prepared.callgraph,
                config.context_depth,
                resolver=config.resolver,
                interprocedural=config.opt2_interproc,
                demand=config.demand,
                jobs=config.jobs,
            )
        REGISTRY.record_opt2(opt2_stats, config=config.name)
    else:
        with TRACE.span("gamma.resolve", config=config.name,
                        resolver=config.resolver, demand=config.demand):
            gamma = resolve_for_config(vfg, config)
    with TRACE.span("instrument", config=config.name, opt1=config.opt1):
        plan, guided_stats = build_guided_plan(
            prepared.module,
            vfg,
            gamma,
            prepared.callgraph,
            opt1=config.opt1,
            name=config.name,
        )
    query_stats = (
        gamma.engine.stats if isinstance(gamma, LazyDefinedness) else None
    )
    if query_stats is not None:
        REGISTRY.record_query(query_stats, config=config.name)
    return UsherResult(
        config=config,
        plan=plan,
        vfg=vfg,
        gamma=gamma,
        guided_stats=guided_stats,
        opt2_stats=opt2_stats,
        analysis_seconds=time.perf_counter() - started,
    )


def run_msan(prepared: PreparedModule) -> InstrumentationPlan:
    """The MSan-style full-instrumentation baseline."""
    return build_msan_plan(prepared.module)


def run_all_configs(prepared: PreparedModule) -> Dict[str, UsherResult]:
    """The four configurations of §4.5, keyed by name."""
    results: Dict[str, UsherResult] = {}
    for config in (
        UsherConfig.tl(),
        UsherConfig.tl_at(),
        UsherConfig.opt_i(),
        UsherConfig.full(),
    ):
        results[config.name] = run_usher(prepared, config)
    return results
