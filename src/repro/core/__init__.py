"""Usher's core: guided instrumentation, the MSan baseline, Opt I/II.

This package is the paper's primary contribution (Figure 3, phases 3-5,
plus the instrumentation rules of Figure 7 and the two VFG-based
optimizations of §3.5).
"""

from repro.core.instrument import GuidedStats, build_guided_plan
from repro.core.msan import build_msan_plan
from repro.core.opt2 import Opt2Stats, redundant_check_elimination
from repro.core.static_warner import (
    FalsePositiveReport,
    StaticWarning,
    false_positive_report,
    static_warnings,
)
from repro.core.plan import (
    AndShadowVar,
    Check,
    CopyShadowVar,
    InstrumentationPlan,
    LoadShadow,
    PhiShadow,
    RelayIn,
    RelayOut,
    SetShadowMem,
    SetShadowVar,
    ShadowOp,
    StoreShadow,
    var_slot,
)
from repro.core.usher import (
    PreparedModule,
    UsherConfig,
    UsherResult,
    prepare_module,
    run_all_configs,
    run_msan,
    run_usher,
)

__all__ = [
    "GuidedStats",
    "build_guided_plan",
    "build_msan_plan",
    "Opt2Stats",
    "redundant_check_elimination",
    "AndShadowVar",
    "Check",
    "CopyShadowVar",
    "InstrumentationPlan",
    "LoadShadow",
    "PhiShadow",
    "RelayIn",
    "RelayOut",
    "SetShadowMem",
    "SetShadowVar",
    "ShadowOp",
    "StoreShadow",
    "var_slot",
    "FalsePositiveReport",
    "StaticWarning",
    "false_positive_report",
    "static_warnings",
    "PreparedModule",
    "UsherConfig",
    "UsherResult",
    "prepare_module",
    "run_all_configs",
    "run_msan",
    "run_usher",
]
