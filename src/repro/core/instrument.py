"""Guided instrumentation (Figure 7) — the paper's key contribution.

Given the VFG and the resolved definedness Γ, this generator computes
the minimal sound instrumentation-item sets Σ.  The deduction rules of
Figure 7 are realised as a demand-driven backward walk:

- a runtime check is emitted at each critical use of a ⊥ value
  ([⊥-Check]); ⊤ uses need no check ([⊤-Check]);
- every ⊥ node whose value can reach such a check must have its shadow
  materialised: its shadow statement is emitted and its predecessors are
  demanded in turn (the ⊥-rules);
- a ⊤ node demanded as a predecessor is handled with a *strong update*
  of its shadow wherever the rules permit — ``σ(x) := T`` for top-level
  definitions ([⊤-Assign]/[⊤-Para]), ``σ(*x) := T`` at allocation sites
  ([⊤-Alloc]) and strongly-updated stores ([⊤-Store_SU]); at weak or
  semi-strong stores the demand is forwarded to the incoming memory
  state instead ([⊤-Store_WU/SemiSU]), never reading the (untracked)
  stored value;
- virtual nodes (φ, virtual parameters/returns) emit no code of their
  own — shadow values flow through shadow memory — and simply forward
  the demand ([Phi]/[VPara]/[VRet]).

With ``opt1=True`` the generator applies Opt I (value-flow
simplification, §3.5.1): a ⊥ top-level node defined by copies and
non-bitwise operations receives its shadow directly as the conjunction
of its Must-Flow-from-Closure's ⊥ sources, eliding every interior
propagation of the closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ir import instructions as ins
from repro.ir.module import Module
from repro.ir.values import Value, Var
from repro.analysis.callgraph import CallGraph
from repro.core.plan import (
    AndShadowVar,
    BinOpShadow,
    Check,
    CopyShadowVar,
    InstrumentationPlan,
    LoadShadow,
    PhiShadow,
    RelayIn,
    RelayOut,
    SetShadowMem,
    SetShadowVar,
    StoreShadow,
    UnOpShadow,
    VarSlot,
    var_slot,
)
from repro.vfg.definedness import Definedness
from repro.vfg.graph import (
    MemNode,
    Node,
    Root,
    SummaryNode,
    TopNode,
    VFG,
)
from repro.obs.trace import TRACE
from repro.vfg.mfc import compute_mfc

_EXPANDABLE = frozenset({"copy", "unop", "binop", "gep"})


@dataclass
class GuidedStats:
    """Metrics of one guided-instrumentation run."""

    demanded_nodes: int = 0
    checks_emitted: int = 0
    checks_eliminated: int = 0
    mfcs_simplified: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


def build_guided_plan(
    module: Module,
    vfg: VFG,
    gamma: Definedness,
    callgraph: CallGraph,
    opt1: bool = False,
    name: str = "usher",
) -> Tuple[InstrumentationPlan, GuidedStats]:
    """Run the Figure 7 rules; return the plan and statistics."""
    generator = _Generator(module, vfg, gamma, callgraph, opt1, name)
    if opt1:
        # Opt I (value-flow simplification) is applied node-by-node
        # during emission, so the whole guided pass is its span.
        with TRACE.span("opt1", config=name):
            return generator.run()
    return generator.run()


class _Generator:
    def __init__(
        self,
        module: Module,
        vfg: VFG,
        gamma: Definedness,
        callgraph: CallGraph,
        opt1: bool,
        name: str,
    ) -> None:
        self.module = module
        self.vfg = vfg
        self.gamma = gamma
        self.callgraph = callgraph
        self.opt1 = opt1
        self.plan = InstrumentationPlan(name)
        self.stats = GuidedStats()
        self.by_uid = module.instr_by_uid()
        self._demanded: Set[Node] = set()
        self._work: List[Node] = []

    # ------------------------------------------------------------------
    def run(self) -> Tuple[InstrumentationPlan, GuidedStats]:
        for site in self.vfg.check_sites:
            if site.node is None:
                continue
            if self.gamma.is_defined(site.node):
                self.stats.checks_eliminated += 1  # [⊤-Check]
                continue
            assert isinstance(site.node, TopNode)
            slot = (site.node.name, site.node.version)
            self.plan.add_pre(site.instr_uid, Check(slot, site.instr_uid))
            self.stats.checks_emitted += 1  # [⊥-Check]
            self.demand(site.node)
        while self._work:
            node = self._work.pop()
            self._emit(node)
        self.stats.demanded_nodes = len(self._demanded)
        return self.plan, self.stats

    def demand(self, node: Node) -> None:
        if isinstance(node, Root) or node in self._demanded:
            return
        self._demanded.add(node)
        self._work.append(node)

    def _demand_deps(self, node: Node, mem_only: bool = False) -> None:
        for edge in self.vfg.deps_of(node):
            if mem_only and isinstance(edge.src, TopNode):
                continue
            self.demand(edge.src)

    # ------------------------------------------------------------------
    def _emit(self, node: Node) -> None:
        if isinstance(node, SummaryNode):
            self._emit_summary(node)
        elif self.gamma.is_defined(node):
            self._emit_top(node)
        else:
            self._emit_bot(node)

    # -------------------------- ⊤-rules -------------------------------
    def _emit_top(self, node: Node) -> None:
        uid, kind = self.vfg.def_site.get(node, (None, "unknown"))
        if isinstance(node, TopNode):
            slot = (node.name, node.version)
            if kind == "param" or uid is None:
                # [⊤-Para] (and entry-defined values in general).
                self.plan.add_entry(node.func, SetShadowVar(slot, True))
            else:
                # [⊤-Assign]: strong update at the defining statement.
                self.plan.add_post(uid, SetShadowVar(slot, True))
            return
        assert isinstance(node, MemNode)
        if kind == "chi_alloc":
            alloc = self.by_uid[uid]
            assert isinstance(alloc, ins.Alloc)
            # [⊤-Alloc]: σ(*x) := T for the whole fresh object.
            self.plan.add_post(
                uid, SetShadowMem(var_slot(alloc.dst), True, whole_object=True)
            )
        elif kind == "chi_store_strong":
            store = self.by_uid[uid]
            assert isinstance(store, ins.Store)
            # [⊤-Store_SU]: σ(*x) := T.
            self.plan.add_post(
                uid, SetShadowMem(var_slot(store.ptr), True, whole_object=False)
            )
        elif kind in ("chi_store_weak", "chi_store_semi"):
            # [⊤-Store_WU/SemiSU]: no strong update is safe; the demand
            # moves to the incoming memory state (Σρm = Σρn).
            self._demand_deps(node, mem_only=True)
        else:
            # [VPara]/[VRet]/[Phi]/entry: virtual — forward the demand.
            self._demand_deps(node, mem_only=True)

    # -------------------------- ⊥-rules -------------------------------
    def _emit_bot(self, node: Node) -> None:
        uid, kind = self.vfg.def_site.get(node, (None, "unknown"))
        if isinstance(node, TopNode):
            self._emit_bot_top(node, uid, kind)
            return
        assert isinstance(node, MemNode)
        if kind == "chi_alloc":
            alloc = self.by_uid[uid]
            assert isinstance(alloc, ins.Alloc)
            # [⊥-Alloc]: poison/bless the fresh object, track the old
            # version as well.
            self.plan.add_post(
                uid,
                SetShadowMem(
                    var_slot(alloc.dst), alloc.initialized, whole_object=True
                ),
            )
            self._demand_deps(node)
        elif kind in ("chi_store_strong", "chi_store_weak", "chi_store_semi"):
            store = self.by_uid[uid]
            assert isinstance(store, ins.Store)
            # [⊥-Store_*]: σ(*x) := σ(y), plus the old flow when present.
            if isinstance(store.ptr, Var):
                self.plan.add_post(
                    uid,
                    StoreShadow(var_slot(store.ptr), _slot(store.value)),
                )
            self._demand_deps(node)
        else:
            # [VPara]/[VRet]/[Phi]/entry/undef mem nodes: virtual.
            self._demand_deps(node)

    def _emit_bot_top(self, node: TopNode, uid: Optional[int], kind: str) -> None:
        slot = (node.name, node.version)
        func = node.func
        if kind == "undef":
            # A read-before-write variable: poisoned from function entry.
            self.plan.add_entry(func, SetShadowVar(slot, False))
            return
        if kind == "param":
            # [⊥-Para]: relay the actual's shadow through σ_g at every
            # call site.
            function = self.module.functions[func]
            index = function.params.index(node.name)
            self.plan.add_entry(func, RelayIn(index, slot))
            for call_uid, targets in self.callgraph.callees.items():
                if func in targets:
                    call = self.by_uid[call_uid]
                    assert isinstance(call, ins.Call)
                    if index < len(call.args):
                        self.plan.add_pre(
                            call_uid, RelayOut(index, _slot(call.args[index]))
                        )
            self._demand_deps(node)
            return
        if kind in _EXPANDABLE and self.opt1 and self._emit_simplified(node, uid):
            return
        instr = self.by_uid.get(uid) if uid is not None else None
        if kind == "copy" and isinstance(instr, ins.Copy):
            self._unary(uid, instr.dst, instr.src)
            self._demand_deps(node)
        elif kind == "unop" and isinstance(instr, ins.UnOp):
            if isinstance(instr.operand, Var):
                self.plan.add_post(
                    uid, UnOpShadow(slot, instr.op, instr.operand)
                )
            else:
                self.plan.add_post(uid, SetShadowVar(slot, True))
            self._demand_deps(node)
        elif kind == "binop" and isinstance(instr, ins.BinOp):
            if instr.uses():
                self.plan.add_post(
                    uid, BinOpShadow(slot, instr.op, instr.lhs, instr.rhs)
                )
            else:
                self.plan.add_post(uid, SetShadowVar(slot, True))
            self._demand_deps(node)
        elif kind == "gep" and isinstance(instr, ins.Gep):
            self._nary(uid, instr.dst, (instr.base, instr.offset))
            self._demand_deps(node)
        elif kind == "load" and isinstance(instr, ins.Load):
            # [⊥-Load]: σ(x) := σ(*y); all indirect uses tracked.
            ptr_slot = _slot(instr.ptr)
            if ptr_slot is not None:
                self.plan.add_post(uid, LoadShadow(slot, ptr_slot))
            else:
                self.plan.add_post(uid, SetShadowVar(slot, True))
            self._demand_deps(node)
        elif kind == "call" and isinstance(instr, ins.Call):
            # [⊥-Ret]: relay the returned shadow through σ_g.
            self.plan.add_post(uid, RelayIn("ret", slot))
            for callee_name in self.callgraph.callees.get(uid, ()):
                callee = self.module.functions[callee_name]
                for ret in callee.instructions():
                    if isinstance(ret, ins.Ret):
                        self.plan.add_pre(
                            ret.uid, RelayOut("ret", _slot(ret.value))
                        )
            self._demand_deps(node)
        elif kind == "phi" and isinstance(instr, ins.Phi):
            incomings = tuple(
                (label, _slot(value))
                for label, value in sorted(instr.incomings.items())
            )
            self.plan.add_post(uid, PhiShadow(slot, incomings))
            self._demand_deps(node)
        else:
            # const/addr/alloc results are structurally ⊤; reaching here
            # means Γ was degraded (e.g. Opt II scratch graphs) — a
            # strong update is always sound for them.
            self.plan.add_post(uid, SetShadowVar(slot, True))

    def _emit_simplified(self, node: TopNode, uid: Optional[int]) -> bool:
        """Opt I: σ(sink) := ∧ σ(⊥-sources of its MFC).

        Returns ``False`` (caller falls back to the plain Figure 7 rule)
        when the closure degenerates to the sink itself: a bitwise
        operation, where bypassing operand shadows would be unsound at
        bit-level precision (§4.1), or a mask-preserving definition
        (copy, ``~``), where the conjunction's spread would
        over-approximate the exact mask (the grouping rule,
        :func:`repro.vfg.mfc.compute_mfc`).
        """
        mfc = compute_mfc(self.vfg, self.module, node, grouping=True)
        if node in mfc.sources:
            return False
        bot_sources = [
            s
            for s in sorted(mfc.sources, key=str)
            if isinstance(s, TopNode) and not self.gamma.is_defined(s)
        ]
        slot = (node.name, node.version)
        op = AndShadowVar(slot, tuple((s.name, s.version) for s in bot_sources))
        if uid is not None:
            self.plan.add_post(uid, op)
        else:
            self.plan.add_entry(node.func, op)
        if mfc.interior:
            self.stats.mfcs_simplified += 1
        for source in bot_sources:
            self.demand(source)
        return True

    # -------------------------- TL summary ----------------------------
    def _emit_summary(self, node: SummaryNode) -> None:
        """Usher_TL: address-taken memory is not analysed — once any
        load's value is demanded, every store and allocation in the
        program must propagate shadow memory, as in full
        instrumentation."""
        for instr in self.module.instructions():
            if isinstance(instr, ins.Store):
                ptr_slot = _slot(instr.ptr)
                if ptr_slot is None:
                    continue
                self.plan.add_post(
                    instr.uid,
                    StoreShadow(ptr_slot, _slot(instr.value)),
                )
                if isinstance(instr.value, Var):
                    self.demand(
                        TopNode(
                            instr.block.function.name,
                            instr.value.name,
                            instr.value.version or 0,
                        )
                    )
            elif isinstance(instr, ins.Alloc):
                self.plan.add_post(
                    instr.uid,
                    SetShadowMem(
                        var_slot(instr.dst), instr.initialized, whole_object=True
                    ),
                )

    # ------------------------------------------------------------------
    def _unary(self, uid: int, dst: Var, src: Value) -> None:
        slot = _slot(src)
        if slot is None:
            self.plan.add_post(uid, SetShadowVar(var_slot(dst), True))
        else:
            self.plan.add_post(uid, CopyShadowVar(var_slot(dst), slot))

    def _nary(self, uid: int, dst: Var, values) -> None:
        slots = tuple(s for s in (_slot(v) for v in values) if s is not None)
        if not slots:
            self.plan.add_post(uid, SetShadowVar(var_slot(dst), True))
        else:
            self.plan.add_post(uid, AndShadowVar(var_slot(dst), slots))


def _slot(value: Optional[Value]) -> Optional[VarSlot]:
    if isinstance(value, Var):
        return var_slot(value)
    return None
