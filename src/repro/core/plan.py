"""Instrumentation plans: the shadow operations a tool inserts.

An :class:`InstrumentationPlan` is the output of both the MSan-style full
instrumentation and Usher's guided instrumentation: for every
instruction, the shadow operations (Figure 7's instrumentation items)
executed alongside it, plus per-function entry operations.

The shadow machine model mirrors MSan's:

- every top-level SSA variable has a shadow σ(x) ∈ {T, F};
- every concrete memory cell has a shadow in shadow memory, addressed
  through the same pointer values the program uses (σ(*x));
- a global relay σ_g shadows parameter/return passing across scopes;
- E(l) records runtime check failures (warnings).

Each operation knows how many shadow *reads* it performs — the paper's
"shadow propagations" metric (Figure 11) — and whether it is a check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.values import Value, Var

#: A shadow slot for a top-level SSA variable: (name, version).
VarSlot = Tuple[str, int]


def var_slot(var: Var) -> VarSlot:
    return (var.name, var.version or 0)


@dataclass(frozen=True)
class ShadowOp:
    """Base class of shadow operations."""

    @property
    def reads(self) -> int:
        """Number of shadow-variable reads this operation performs."""
        return 0

    @property
    def is_check(self) -> bool:
        return False


@dataclass(frozen=True)
class SetShadowVar(ShadowOp):
    """``σ(x) := T/F`` — strong update of a top-level shadow."""

    dst: VarSlot
    literal: bool  # True = defined

    def __str__(self) -> str:
        return f"σ({_s(self.dst)}) := {'T' if self.literal else 'F'}"


@dataclass(frozen=True)
class CopyShadowVar(ShadowOp):
    """``σ(x) := σ(y)``."""

    dst: VarSlot
    src: VarSlot

    @property
    def reads(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"σ({_s(self.dst)}) := σ({_s(self.src)})"


@dataclass(frozen=True)
class AndShadowVar(ShadowOp):
    """``σ(x) := σ(y₁) ∧ … ∧ σ(yₙ)`` — conjunction of source shadows.

    Used for non-bitwise value combinations (address computations, Opt
    I's simplified must-flow closures), where full-spread semantics
    makes the conjunction exact: the result is undefined iff any source
    is (§4.1)."""

    dst: VarSlot
    srcs: Tuple[VarSlot, ...]

    @property
    def reads(self) -> int:
        return len(self.srcs)

    def __str__(self) -> str:
        srcs = " ∧ ".join(f"σ({_s(s)})" for s in self.srcs)
        return f"σ({_s(self.dst)}) := {srcs or 'T'}"


@dataclass(frozen=True)
class BinOpShadow(ShadowOp):
    """``σ(x) := σ(y) ⊕̂ σ(z)`` — the bit-precise shadow of a binary
    operation ([⊥-Bop], with the bit-operation semantics of [24]: the
    laundering rules for ``&``/``|``/shifts need the operand *values*,
    which is why the operands travel with the op)."""

    dst: VarSlot
    op: str
    lhs: Value
    rhs: Value

    @property
    def reads(self) -> int:
        return sum(1 for v in (self.lhs, self.rhs) if isinstance(v, Var))

    def __str__(self) -> str:
        return f"σ({_s(self.dst)}) := σ({self.lhs}) {self.op}̂ σ({self.rhs})"


@dataclass(frozen=True)
class UnOpShadow(ShadowOp):
    """``σ(x) := ⊖̂ σ(y)`` — the bit-precise shadow of a unary op."""

    dst: VarSlot
    op: str
    operand: Value

    @property
    def reads(self) -> int:
        return 1 if isinstance(self.operand, Var) else 0

    def __str__(self) -> str:
        return f"σ({_s(self.dst)}) := {self.op}̂ σ({self.operand})"


@dataclass(frozen=True)
class SetShadowMem(ShadowOp):
    """``σ(*x) := T/F`` — strong update of shadow memory through a
    pointer.  ``whole_object`` poisons/blesses the entire allocation
    (allocation sites); otherwise only the addressed cell."""

    ptr: VarSlot
    literal: bool
    whole_object: bool = False

    @property
    def reads(self) -> int:
        return 0

    def __str__(self) -> str:
        star = "**" if self.whole_object else "*"
        return f"σ({star}{_s(self.ptr)}) := {'T' if self.literal else 'F'}"


@dataclass(frozen=True)
class StoreShadow(ShadowOp):
    """``σ(*x) := σ(y)`` — shadow propagation of a store."""

    ptr: VarSlot
    src: Optional[VarSlot]  # None: the stored value is a constant (T)

    @property
    def reads(self) -> int:
        return 1 if self.src is not None else 0

    def __str__(self) -> str:
        src = f"σ({_s(self.src)})" if self.src else "T"
        return f"σ(*{_s(self.ptr)}) := {src}"


@dataclass(frozen=True)
class LoadShadow(ShadowOp):
    """``σ(x) := σ(*y)`` — shadow propagation of a load."""

    dst: VarSlot
    ptr: VarSlot

    @property
    def reads(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"σ({_s(self.dst)}) := σ(*{_s(self.ptr)})"


@dataclass(frozen=True)
class RelayOut(ShadowOp):
    """``σ_g[i] := σ(y)`` at a call site (argument) or ``σ_g := σ(r)``
    at a return (``slot="ret"``)."""

    slot: Union[int, str]
    src: Optional[VarSlot]  # None: constant actual (T)

    @property
    def reads(self) -> int:
        return 1 if self.src is not None else 0

    def __str__(self) -> str:
        src = f"σ({_s(self.src)})" if self.src else "T"
        return f"σ_g[{self.slot}] := {src}"


@dataclass(frozen=True)
class RelayIn(ShadowOp):
    """``σ(a) := σ_g[i]`` at a function entry (parameter) or
    ``σ(x) := σ_g`` after a call (result, ``slot="ret"``)."""

    slot: Union[int, str]
    dst: VarSlot

    @property
    def reads(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"σ({_s(self.dst)}) := σ_g[{self.slot}]"


@dataclass(frozen=True)
class PhiShadow(ShadowOp):
    """``σ(x) := σ(incoming)`` — the shadow of a φ copies the shadow of
    whichever incoming value the control flow selected."""

    dst: VarSlot
    incomings: Tuple[Tuple[str, Optional[VarSlot]], ...]  # (pred label, slot|None)

    @property
    def reads(self) -> int:
        return 1

    def __str__(self) -> str:
        args = ", ".join(
            f"{label}: {('σ(%s)' % _s(slot)) if slot else 'T'}"
            for label, slot in self.incomings
        )
        return f"σ({_s(self.dst)}) := φ({args})"


@dataclass(frozen=True)
class Check(ShadowOp):
    """``E(l) := σ(x) = F`` — a runtime definedness check."""

    operand: VarSlot
    label: int  # instruction uid

    @property
    def reads(self) -> int:
        return 1

    @property
    def is_check(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"check σ({_s(self.operand)}) @ {self.label}"


def _s(slot: VarSlot) -> str:
    return f"{slot[0]}.{slot[1]}"


@dataclass
class InstrOps:
    """Shadow operations around one instruction."""

    pre: List[ShadowOp] = field(default_factory=list)
    post: List[ShadowOp] = field(default_factory=list)

    def all_ops(self) -> List[ShadowOp]:
        return self.pre + self.post


class InstrumentationPlan:
    """The full instrumentation decision for a module."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.ops: Dict[int, InstrOps] = {}
        self.entry_ops: Dict[str, List[ShadowOp]] = {}

    def at(self, uid: int) -> InstrOps:
        return self.ops.setdefault(uid, InstrOps())

    def add_pre(self, uid: int, op: ShadowOp) -> None:
        slot = self.at(uid)
        if op not in slot.pre:
            slot.pre.append(op)

    def add_post(self, uid: int, op: ShadowOp) -> None:
        slot = self.at(uid)
        if op not in slot.post:
            slot.post.append(op)

    def add_entry(self, func: str, op: ShadowOp) -> None:
        ops = self.entry_ops.setdefault(func, [])
        if op not in ops:
            ops.append(op)

    def iter_ops(self):
        for ops in self.entry_ops.values():
            yield from ops
        for instr_ops in self.ops.values():
            yield from instr_ops.all_ops()

    # ------------------------------------------------------------------
    # Static metrics (Figure 11)
    # ------------------------------------------------------------------
    def count_propagations(self) -> int:
        """Static number of shadow propagations (shadow reads)."""
        return sum(op.reads for op in self.iter_ops() if not op.is_check)

    def count_checks(self) -> int:
        """Static number of runtime checks at critical operations."""
        return sum(1 for op in self.iter_ops() if op.is_check)

    def count_ops(self) -> int:
        return sum(1 for _ in self.iter_ops())

    def describe(self) -> str:
        return (
            f"{self.name}: {self.count_ops()} ops, "
            f"{self.count_propagations()} propagations, "
            f"{self.count_checks()} checks"
        )
