"""A purely static uninitialized-use warner (the §1/§5.1 foil).

The paper motivates hybrid static+dynamic detection by the weakness of
each side alone: "Static analysis tools can warn for the presence of
uninitialized variables but usually suffer from a high false positive
rate" (§1).  This client demonstrates the point *on Usher's own
machinery*: it reports every critical use whose VFG node resolves to ⊥
— exactly the sites Usher would instrument — as a compile-time warning,
with no run-time component.

Because Γ is sound, the warner misses no bug (every true undefined use
is warned); because Γ is approximate (weak updates, collapsed arrays,
merged contexts), most warnings on realistic code never fire — the
false-positive rate the experiment harness measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.usher import PreparedModule, UsherConfig, run_usher


@dataclass(frozen=True)
class StaticWarning:
    """One compile-time warning: a critical use of a maybe-⊥ value."""

    instr_uid: int
    function: str
    line: Optional[int]
    operand: str
    description: str

    def __str__(self) -> str:
        where = f"line {self.line}" if self.line is not None else "<?>"
        return (
            f"{where}, in {self.function}(): value {self.operand!r} may be "
            f"uninitialized at `{self.description}`"
        )


def static_warnings(
    prepared: PreparedModule, config: Optional[UsherConfig] = None
) -> List[StaticWarning]:
    """All critical uses the static analysis cannot prove defined."""
    result = run_usher(
        prepared, config or UsherConfig.tl_at().with_name("static_warner")
    )
    by_uid = prepared.module.instr_by_uid()
    warnings: List[StaticWarning] = []
    for site in result.vfg.check_sites:
        if site.node is None or result.gamma.is_defined(site.node):
            continue
        instr = by_uid[site.instr_uid]
        warnings.append(
            StaticWarning(
                instr_uid=site.instr_uid,
                function=site.func,
                line=instr.line,
                operand=site.operand,
                description=str(instr),
            )
        )
    return warnings


@dataclass
class FalsePositiveReport:
    """Static warnings vs dynamic ground truth for one program."""

    benchmark: str
    static_warning_sites: int
    true_bug_sites: int
    missed_bugs: int  # must be 0: the analysis is sound

    @property
    def false_positives(self) -> int:
        return self.static_warning_sites - (
            self.true_bug_sites - self.missed_bugs
        )

    @property
    def false_positive_rate(self) -> float:
        if self.static_warning_sites == 0:
            return 0.0
        return self.false_positives / self.static_warning_sites


def false_positive_report(
    benchmark: str, prepared: PreparedModule, true_bug_uids: "set[int]"
) -> FalsePositiveReport:
    """Compare the warner against one execution's ground truth."""
    warned = {w.instr_uid for w in static_warnings(prepared)}
    return FalsePositiveReport(
        benchmark=benchmark,
        static_warning_sites=len(warned),
        true_bug_sites=len(true_bug_uids),
        missed_bugs=len(true_bug_uids - warned),
    )
