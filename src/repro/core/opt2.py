"""Opt II: redundant check elimination (Algorithm 1, §3.5.2).

If an undefined value flowing into a critical statement ``s`` via a
top-level variable ``x`` would be detected there, its rippling effect on
*later* (dominated) statements is redundant: any node ``r`` outside
``x``'s must-flow-from closure that consumes a closure value, and whose
defining statement is dominated by ``s``, can have those incoming edges
redirected to ⊤ on a scratch copy of the VFG.  Re-resolving Γ on the
modified graph eliminates the dominated checks; guided instrumentation
is then performed on the *original* VFG with the new Γ so that every
shadow value remains correctly initialized (Algorithm 1, line 9 note).

Bit-level adjustment (§4.1 applied to Algorithm 1): a consumer from
which a bitwise operation is still flow-reachable is never redirected
— see :func:`_feeds_bitwise`.  Bitwise operators launder undefined
bits, so a check behind one reports a genuinely new definedness fact
rather than a ripple of the dominating check; redirecting its inputs
to ⊤ would silently drop that exact report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.ir import instructions as ins
from repro.ir.dominance import DominatorTree, loop_blocks
from repro.ir.module import Module
from repro.analysis.callgraph import CallGraph
from repro.vfg.builder import is_concrete_loc
from repro.vfg.definedness import Definedness, resolve_definedness
from repro.vfg.graph import TOP, MemNode, Node, Root, TopNode, VFG
from repro.vfg.mfc import _BITWISE_OPS, compute_mfc


@dataclass
class Opt2Stats:
    redirected_nodes: int = 0
    sites_processed: int = 0
    interprocedural_redirects: int = 0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the unified stats-registry schema)."""
        return {
            "redirected_nodes": self.redirected_nodes,
            "sites_processed": self.sites_processed,
            "interprocedural_redirects": self.interprocedural_redirects,
        }


def redundant_check_elimination(
    module: Module,
    vfg: VFG,
    callgraph: CallGraph,
    context_depth: int = 1,
    resolver: str = "callstring",
    interprocedural: bool = False,
    demand: bool = False,
    jobs: "Optional[int]" = None,
    engine_factory=None,
) -> "tuple[Definedness, Opt2Stats]":
    """Run Algorithm 1; return the refined Γ and statistics.

    With ``interprocedural=True`` (an extension beyond the paper, in the
    spirit of its "new VFG-based optimizations" future work), dominance
    of the check over a consumer in *another* function is established
    when that function is reachable only through call sites dominated by
    the check (transitively).

    With ``demand=True`` the re-resolution of Γ on the rewired scratch
    graph is answered by batched demand queries over the check sites
    (:func:`repro.vfg.demand.resolve_definedness_demand`) instead of
    whole-program reachability — bit-identical verdicts, but only the
    check sites' backward slices are visited.  ``jobs`` fans that batch
    across worker processes (``None`` defers to the session default /
    ``REPRO_JOBS``).

    ``engine_factory``, when given, builds the demand engine for the
    rewired scratch graph — ``engine_factory(scratch) -> DemandEngine``
    — letting a resident :class:`repro.service.session.AnalysisSession`
    prime it with memos carried across edits.  Only consulted on the
    ``demand=True`` path."""
    scratch = vfg.copy()
    by_uid = module.instr_by_uid()
    dts: Dict[str, DominatorTree] = {
        name: DominatorTree(f) for name, f in module.functions.items()
    }
    loops = {name: loop_blocks(f) for name, f in module.functions.items()}
    stats = Opt2Stats()
    redirected: Set[Node] = set()
    barred = _feeds_bitwise(scratch, by_uid)

    for site in vfg.check_sites:
        if not isinstance(site.node, TopNode):
            continue
        check_instr = by_uid.get(site.instr_uid)
        if check_instr is None or check_instr.block is None:
            continue
        stats.sites_processed += 1

        # Line 3: the must-flow-from closure of x.
        mfc = compute_mfc(scratch, module, site.node)
        closure: Set[Node] = set(mfc.nodes)

        # Line 4: add μ'd concrete locations of loads in the closure.
        for node in list(closure):
            uid, kind = scratch.def_site.get(node, (None, ""))
            if kind != "load" or uid is None:
                continue
            load = by_uid.get(uid)
            if not isinstance(load, ins.Load):
                continue
            for mu in load.mus:
                if is_concrete_loc(
                    mu.loc, module, callgraph.recursive, loops
                ):
                    closure.add(MemNode(site.func, mu.loc, mu.version or 0))

        # Line 5: consumers of closure values outside the closure.
        consumers: Set[Node] = set()
        for node in closure:
            for edge in scratch.flows_of(node):
                if edge.dst not in closure and not isinstance(edge.dst, Root):
                    consumers.add(edge.dst)

        # Lines 6-8: redirect dominated consumers to ⊤.
        check_func = check_instr.block.function.name
        for r in consumers:
            if r in barred:
                continue  # still feeds a bitwise op (§4.1 adjustment)
            r_uid, r_kind = scratch.def_site.get(r, (None, ""))
            cross_function = False
            if r_uid is None:
                # Entry-defined consumers (formals, virtual inputs): the
                # interprocedural extension may establish that their
                # whole function executes only after the check.
                if not interprocedural or r_kind not in ("param", "entry"):
                    continue
                r_func = getattr(r, "func", None)
                if r_func is None or r_func == check_func:
                    continue
                if not _dominates_function(
                    r_func, check_instr, callgraph, by_uid, dts
                ):
                    continue
                cross_function = True
            else:
                r_instr = by_uid.get(r_uid)
                if r_instr is None or r_instr.block is None:
                    continue
                r_func = r_instr.block.function.name
                cross_function = r_func != check_func
                if not cross_function:
                    dt = dts[check_func]
                    if not dt.instr_dominates(check_instr, r_instr):
                        continue
                else:
                    if not interprocedural:
                        continue  # the paper's conservative choice
                    if not _dominates_function(
                        r_func, check_instr, callgraph, by_uid, dts
                    ):
                        continue
            changed = False
            for edge in list(scratch.deps_of(r)):
                if edge.src in closure:
                    scratch.remove_edge(edge)
                    changed = True
            if changed:
                scratch.add_edge(TOP, r)
                redirected.add(r)
                if cross_function:
                    stats.interprocedural_redirects += 1

    stats.redirected_nodes = len(redirected)
    if demand:
        from repro.vfg.demand import resolve_definedness_demand

        # A fresh engine by default: the scratch graph's edge set
        # differs from the original VFG's, so no memo may be shared
        # with it.  A session-supplied factory may prime the engine
        # with memos proven valid for *this* scratch graph.
        if engine_factory is not None:
            engine = engine_factory(scratch)
            engine.query_sites(scratch.check_sites, jobs=jobs)
            gamma = engine.gamma()
        else:
            gamma = resolve_definedness_demand(
                scratch, context_depth, resolver=resolver, jobs=jobs
            )
    elif resolver == "summary":
        from repro.vfg.tabulation import resolve_definedness_summary

        gamma = resolve_definedness_summary(scratch)
    else:
        gamma = resolve_definedness(scratch, context_depth)
    return gamma, stats


def _feeds_bitwise(vfg: VFG, by_uid) -> Set[Node]:
    """Nodes from which a bitwise binary operation is flow-reachable.

    §4.1's bit-level adjustment for Algorithm 1: ``&``, ``|``, ``^``
    and shifts *launder* undefined bits — their result's mask is not a
    function of the operands' masks alone, so a report downstream of a
    bitwise operation is a genuinely new definedness fact, not a
    rippled copy of the dominating check's.  Redirecting a value that
    still feeds a bitwise operation to ⊤ would let the re-resolved Γ
    discharge such downstream checks, trading an exact report away;
    those consumers are left untouched.  The set is computed once on
    the unmodified scratch graph — redirects only remove edges, so it
    stays a (conservative) superset throughout.
    """
    from collections import deque

    barred: Set[Node] = set()
    work: "deque[Node]" = deque()
    for node, (uid, kind) in vfg.def_site.items():
        if kind != "binop" or uid is None:
            continue
        instr = by_uid.get(uid)
        if isinstance(instr, ins.BinOp) and instr.op in _BITWISE_OPS:
            barred.add(node)
            work.append(node)
    while work:
        n = work.popleft()
        for edge in vfg.deps_of(n):
            src = edge.src
            if src not in barred and not isinstance(src, Root):
                barred.add(src)
                work.append(src)
    return barred


def _dominates_function(
    target_func: str,
    check_instr,
    callgraph: CallGraph,
    by_uid,
    dts: "Dict[str, DominatorTree]",
) -> bool:
    """Whether every execution of ``target_func`` passes ``check_instr``
    first: each call site reaching it is either dominated by the check
    (in the check's function) or sits in a function with the same
    property.  Cycles resolve optimistically (greatest fixpoint): the
    only entries into a call cycle are still verified.
    """
    check_func = check_instr.block.function.name
    if target_func == "main":
        return False
    state: "Dict[str, bool]" = {}

    def covered(func: str) -> bool:
        if func == "main":
            return False
        if func in state:
            return state[func]
        state[func] = True  # optimistic for cycles
        call_uids = callgraph.callers.get(func, set())
        if not call_uids:
            state[func] = False  # dead or external entry: be conservative
            return False
        for uid in call_uids:
            call = by_uid.get(uid)
            if call is None or call.block is None:
                state[func] = False
                return False
            caller = call.block.function.name
            if caller == check_func:
                if not dts[caller].instr_dominates(check_instr, call):
                    state[func] = False
                    return False
            elif not covered(caller):
                state[func] = False
                return False
        return state[func]

    return covered(target_func)
