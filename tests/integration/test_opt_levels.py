"""Integration tests for §4.6: optimization levels vs overhead."""

import pytest

from repro.api import analyze
from repro.workloads import workload

NAMES = ("164.gzip", "181.mcf", "253.perlbmk", "255.vortex")
SCALE = 0.15


@pytest.fixture(scope="module")
def by_level():
    result = {}
    for name in NAMES:
        w = workload(name)
        result[name] = {
            level: analyze(source=w.source(SCALE), name=name, level=level)
            for level in ("O0+IM", "O1", "O2")
        }
    return result


class TestOptimizationLevels:
    @pytest.mark.parametrize("name", NAMES)
    def test_outputs_stable_across_levels(self, by_level, name):
        outs = {
            level: a.run_native().outputs for level, a in by_level[name].items()
        }
        assert outs["O0+IM"] == outs["O1"] == outs["O2"]

    @pytest.mark.parametrize("name", NAMES)
    def test_native_baseline_shrinks(self, by_level, name):
        ops = {
            level: a.run_native().native_ops
            for level, a in by_level[name].items()
        }
        assert ops["O1"] <= ops["O0+IM"]
        assert ops["O2"] <= ops["O1"]

    @pytest.mark.parametrize("name", NAMES)
    def test_ordering_holds_at_every_level(self, by_level, name):
        for level, analysis in by_level[name].items():
            assert analysis.slowdown("msan") >= analysis.slowdown("usher"), level

    def test_reduction_narrows_at_higher_levels(self, by_level):
        """§4.6: the usher-vs-msan gap narrows when the native baseline
        is optimized (59.3% reduction at O0+IM vs ~38-39% at O1/O2)."""
        def avg_reduction(level):
            reductions = []
            for name in NAMES:
                a = by_level[name][level]
                msan = a.slowdown("msan")
                if msan == 0:
                    continue
                reductions.append((msan - a.slowdown("usher")) / msan)
            return sum(reductions) / len(reductions)

        assert avg_reduction("O0+IM") > 0.3  # usher clearly wins at O0+IM
