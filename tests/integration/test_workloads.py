"""Integration tests over the 15 SPEC-shaped workloads."""

import pytest

from repro.api import CONFIG_ORDER, analyze
from repro.runtime import DEFAULT_COST_MODEL
from repro.workloads import WORKLOADS, workload

SCALE = 0.15


@pytest.fixture(scope="module")
def analyses():
    return {
        w.name: analyze(source=w.source(SCALE), name=w.name) for w in WORKLOADS
    }


class TestAllWorkloads:
    def test_fifteen_workloads_present(self):
        assert len(WORKLOADS) == 15
        assert workload("181.mcf").description

    @pytest.mark.parametrize("name", [w.name for w in WORKLOADS])
    def test_semantics_preserved_under_every_plan(self, analyses, name):
        analysis = analyses[name]
        native = analysis.run_native()
        for config in CONFIG_ORDER:
            report = analysis.run(config)
            assert report.outputs == native.outputs, config
            assert report.exit_value == native.exit_value, config

    @pytest.mark.parametrize("name", [w.name for w in WORKLOADS])
    def test_overhead_ordering(self, analyses, name):
        analysis = analyses[name]
        slow = {c: analysis.slowdown(c) for c in CONFIG_ORDER}
        assert slow["msan"] >= slow["usher_tl"] >= slow["usher_tl_at"]
        assert slow["usher_tl_at"] >= slow["usher_opt1"] >= slow["usher"]

    @pytest.mark.parametrize("name", [w.name for w in WORKLOADS])
    def test_static_counts_ordering(self, analyses, name):
        analysis = analyses[name]
        props = {c: analysis.static_propagations(c) for c in CONFIG_ORDER}
        checks = {c: analysis.static_checks(c) for c in CONFIG_ORDER}
        assert props["msan"] >= props["usher_tl"] >= props["usher_tl_at"]
        assert props["usher_tl_at"] >= props["usher_opt1"] >= props["usher"]
        assert checks["msan"] >= checks["usher_tl"] >= checks["usher"]

    @pytest.mark.parametrize(
        "name", [w.name for w in WORKLOADS if not w.has_true_bug]
    )
    def test_clean_workloads_warning_free(self, analyses, name):
        analysis = analyses[name]
        assert not analysis.run_native().true_undefined_uses
        for config in CONFIG_ORDER:
            assert not analysis.run(config).warnings, config


class TestSpecificProfiles:
    def test_mcf_is_nearly_free(self, analyses):
        """The paper's 181.mcf: 2% slowdown — almost everything defined."""
        slowdown = analyses["181.mcf"].slowdown("usher")
        assert slowdown < 10.0

    def test_mcf_much_cheaper_than_average(self, analyses):
        avg = sum(a.slowdown("usher") for a in analyses.values()) / len(analyses)
        assert analyses["181.mcf"].slowdown("usher") < avg / 4 + 1.0

    def test_gap_tl_at_gap_is_small(self, analyses):
        """254.gap: high %F, few strong updates → TL ≈ TL+AT (§4.5)."""
        analysis = analyses["254.gap"]
        tl = analysis.slowdown("usher_tl")
        tl_at = analysis.slowdown("usher_tl_at")
        assert tl_at > 0.6 * tl

    def test_crafty_resists_opt1(self, analyses):
        """186.crafty is bitwise-heavy: Opt I must stop at bit ops, so
        its gain is relatively small."""
        analysis = analyses["186.crafty"]
        tl_at = analysis.static_propagations("usher_tl_at")
        opt1 = analysis.static_propagations("usher_opt1")
        assert opt1 > 0.5 * tl_at

    def test_msan_is_roughly_3x(self, analyses):
        avg = sum(a.slowdown("msan") for a in analyses.values()) / len(analyses)
        assert 200.0 < avg < 400.0


class TestParserBug:
    def test_oracle_sees_the_bug(self, analyses):
        native = analyses["197.parser"].run_native()
        assert native.true_undefined_uses

    def test_all_tools_detect_it(self, analyses):
        """§4.5: 'One use of an undefined value is detected in the
        function ppmatch() of 197.parser by all the analysis tools.'"""
        analysis = analyses["197.parser"]
        for config in CONFIG_ORDER:
            assert analysis.run(config).warnings, config

    def test_detection_is_in_ppmatch(self, analyses):
        analysis = analyses["197.parser"]
        by_uid = analysis.module.instr_by_uid()
        for uid in analysis.run("usher").warning_set():
            instr = by_uid[uid]
            assert instr.block.function.name == "ppmatch"
