"""Integration tests for ``repro bench``: a tiny matrix end to end —
JSONL rows against the ``repro.stats/1`` schema, baseline gating,
corpus promotion — all through the CLI entry point.
"""

import json

import pytest

from repro.cli import main
from repro.obs.registry import SCHEMA

#: A fast 2x2 matrix: two workloads (one generated, one corpus seed)
#: under two configurations, single tier.
SMOKE = [
    "bench",
    "--workloads", "164.gzip,seed63",
    "--configs", "tl,full",
    "--tiers", "full",
    "--scale", "0.05",
    "--pool", "1",
    "--quiet",
]

#: Row fields every ok bench row must carry (the bench contract the
#: diff tool and the baselines key on).
REQUIRED_FIELDS = (
    "schema", "kind", "benchmark", "seed", "factor", "cell", "workload",
    "config", "tier", "storage", "schedule", "jobs", "scale", "status",
    "warned_uids", "warnings", "checks", "propagations", "native_ops",
    "slowdown_percent", "pops", "facts_propagated", "elapsed", "tags",
)


def _rows(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


@pytest.fixture
def smoke_log(tmp_path):
    out = tmp_path / "bench_stats.jsonl"
    assert main(SMOKE + ["--out", str(out)]) == 0
    return out


class TestMatrixRun:
    def test_writes_one_schema_stamped_row_per_cell(self, smoke_log):
        rows = _rows(smoke_log)
        assert len(rows) == 4  # 2 workloads x 2 configs
        for row in rows:
            for field in REQUIRED_FIELDS:
                assert field in row, (row["cell"], field)
            assert row["schema"] == SCHEMA
            assert row["kind"] == "bench"
            assert row["status"] == "ok"
            assert row["tags"]["tier"] == "full"
            assert row["tags"]["jobs"] == 1

    def test_corpus_seed_rows_match_pinned_warnings(self, smoke_log):
        from repro.workloads.corpus import load_corpus

        seed = next(s for s in load_corpus() if s.name == "seed63")
        by_cell = {row["cell"]: row for row in _rows(smoke_log)}
        for spec in ("tl", "full"):
            row = by_cell[f"seed63/{spec}/full/int/wave/j1"]
            assert tuple(row["warned_uids"]) == seed.pinned_warnings(spec)

    def test_report_aggregates_the_rows(self, tmp_path, capsys):
        out = tmp_path / "log.jsonl"
        report = tmp_path / "report.md"
        assert main(SMOKE + ["--out", str(out),
                             "--report", str(report)]) == 0
        text = report.read_text()
        assert "# Bench matrix report" in text
        assert "164.gzip" in text and "seed63" in text
        assert "Static instrumentation" in text
        assert "Modelled slowdown" in text

    def test_dry_run_lists_cells_without_running(self, tmp_path, capsys):
        out = tmp_path / "log.jsonl"
        assert main(SMOKE + ["--out", str(out), "--dry-run"]) == 0
        lines = capsys.readouterr().out
        assert "164.gzip/tl/full/int/wave/j1" in lines
        assert not out.exists()

    def test_unknown_workload_exits_2(self, tmp_path, capsys):
        code = main([
            "bench", "--workloads", "nope.bogus", "--configs", "tl",
            "--tiers", "full", "--out", str(tmp_path / "x.jsonl"),
        ])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_axis_value_exits_2(self, tmp_path, capsys):
        code = main([
            "bench", "--workloads", "164.gzip", "--configs", "warp",
            "--out", str(tmp_path / "x.jsonl"),
        ])
        assert code == 2
        assert "unknown config" in capsys.readouterr().err


class TestBaselineGate:
    def test_matching_baseline_passes(self, smoke_log, tmp_path, capsys):
        out = tmp_path / "second.jsonl"
        code = main(SMOKE + ["--out", str(out),
                             "--baseline", str(smoke_log)])
        assert code == 0
        assert "cell(s) match" in capsys.readouterr().out

    def test_drifted_baseline_fails(self, smoke_log, tmp_path, capsys):
        rows = _rows(smoke_log)
        rows[0]["warned_uids"] = [1234]
        drifted = tmp_path / "drifted.jsonl"
        drifted.write_text(
            "".join(json.dumps(row) + "\n" for row in rows)
        )
        out = tmp_path / "second.jsonl"
        code = main(SMOKE + ["--out", str(out),
                             "--baseline", str(drifted)])
        assert code == 1
        assert "warned_uids" in capsys.readouterr().out

    def test_shrunk_coverage_fails(self, smoke_log, tmp_path, capsys):
        out = tmp_path / "second.jsonl"
        code = main([
            "bench",
            "--workloads", "164.gzip",  # seed63 cells disappear
            "--configs", "tl,full",
            "--tiers", "full",
            "--scale", "0.05",
            "--pool", "1",
            "--quiet",
            "--out", str(out),
            "--baseline", str(smoke_log),
        ])
        assert code == 1
        assert "missing from this run" in capsys.readouterr().out


class TestCommittedSmokeBaseline:
    def test_committed_baseline_is_wellformed_bench_rows(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "baselines" / "bench_smoke_baseline.jsonl"
        )
        rows = _rows(path)
        assert rows, "committed baseline is empty"
        cells = [row["cell"] for row in rows]
        assert len(set(cells)) == len(cells)
        for row in rows:
            assert row["schema"] == SCHEMA
            assert row["kind"] == "bench"
            assert row["status"] == "ok"
        # The acceptance matrix: 4 configs x 2 tiers, corpus included.
        configs = {row["config"] for row in rows}
        tiers = {row["tier"] for row in rows}
        workloads = {row["workload"] for row in rows}
        assert configs == {"tl", "tl_at", "opt_i", "full"}
        assert tiers == {"full", "unified"}
        assert {"seed185", "seed44", "seed63"} <= workloads


class TestPromotion:
    @pytest.fixture
    def sandbox_corpus(self, tmp_path):
        """A private corpus dir seeded with the committed manifest."""
        import shutil
        from pathlib import Path

        src = Path(__file__).resolve().parents[1] / "data" / "corpus"
        dst = tmp_path / "corpus"
        shutil.copytree(src, dst)
        return dst

    @pytest.fixture
    def reproducer(self, tmp_path):
        """A sound single-bug module in printed-IR form."""
        from repro.ir.printer import module_to_str
        from repro.opt import run_pipeline
        from repro.tinyc import compile_source

        module = compile_source(
            """
            def main() {
              var x;
              if (0) { x = 1; }
              output(x);
              return 0;
            }
            """,
            "candidate",
        )
        run_pipeline(module, "O0")
        path = tmp_path / "seed_candidate.ir"
        path.write_text(module_to_str(module))
        return path

    def test_dry_run_validates_without_writing(
        self, sandbox_corpus, reproducer, capsys
    ):
        from repro.workloads.corpus import load_corpus

        before = [seed.name for seed in load_corpus(sandbox_corpus)]
        code = main([
            "bench", "--promote", str(reproducer),
            "--corpus-dir", str(sandbox_corpus), "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "validated 1 reproducer(s)" in out
        assert [s.name for s in load_corpus(sandbox_corpus)] == before
        assert not (sandbox_corpus / "seed_candidate.ir").exists()

    def test_promotion_adds_a_loadable_pinned_seed(
        self, sandbox_corpus, reproducer
    ):
        from repro.bench.scheduler import run_cell
        from repro.bench.matrix import Cell
        from repro.workloads.corpus import BASE_CONFIG_SPECS, load_corpus

        code = main([
            "bench", "--promote", str(reproducer),
            "--corpus-dir", str(sandbox_corpus), "--quiet",
        ])
        assert code == 0
        seeds = {seed.name: seed for seed in load_corpus(sandbox_corpus)}
        assert "seed_candidate" in seeds
        promoted = seeds["seed_candidate"]
        assert set(dict(promoted.pinned)) == set(BASE_CONFIG_SPECS)
        # ...and it runs as a first-class bench workload.
        row = run_cell(
            Cell("seed_candidate", "full", "full", "int", "wave", 1, 1.0),
            corpus_dir=sandbox_corpus,
        )
        assert row["status"] == "ok"
        assert tuple(row["warned_uids"]) == promoted.pinned_warnings("full")

    def test_name_collision_is_refused(self, sandbox_corpus, tmp_path):
        # Promotion names seeds by file stem; "seed185" is taken.
        collider = tmp_path / "seed185.ir"
        collider.write_text(
            (sandbox_corpus / "seed185_opt1_grouping.ir").read_text()
        )
        code = main([
            "bench", "--promote", str(collider),
            "--corpus-dir", str(sandbox_corpus), "--quiet",
        ])
        assert code == 2

    def test_divergent_reproducer_is_refused(
        self, sandbox_corpus, tmp_path, capsys
    ):
        """A reproducer whose divergence is NOT yet fixed must not be
        enshrined: promotion re-runs the oracle and refuses."""
        from repro.ir.printer import module_to_str
        from repro.opt import run_pipeline
        from repro.oracle import legacy_opt1
        from repro.tinyc import compile_source

        # seed185's minimized shape still diverges under the legacy
        # (ungrouped) Opt I, which legacy_opt1 re-enables.
        text = (sandbox_corpus / "seed185_opt1_grouping.ir").read_text()
        candidate = tmp_path / "seed_still_bites.ir"
        candidate.write_text(text)
        with legacy_opt1():
            code = main([
                "bench", "--promote", str(candidate),
                "--corpus-dir", str(sandbox_corpus), "--quiet",
            ])
        assert code == 2
        assert "diverges" in capsys.readouterr().err
