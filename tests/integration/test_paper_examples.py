"""Integration tests for the paper's running examples.

Recreates the code of Figures 2, 5, 6 and 9 and checks the behaviour
the paper derives from each.
"""

from repro.api import analyze
from repro.core import UsherConfig, prepare_module, run_usher
from repro.runtime import run_instrumented, run_native
from tests.helpers import analyzed, compile_and_optimize


class TestFigure2:
    """int **a, *b; int c, i; a=&b; b=&c; c=10; i=c;"""

    SOURCE = """
    def main() {
      var a, b, c, i;
      a = &b;
      *a = &c;
      c = 10;
      i = c;
      output(i);
      return 0;
    }
    """

    def test_runs_and_is_defined(self):
        analysis = analyze(source=self.SOURCE)
        native = analysis.run_native()
        assert native.outputs == [10]
        assert not native.true_undefined_uses
        report = analysis.run("usher")
        assert not report.warnings


class TestFigure5:
    """A call with virtual parameters: foo reads/writes memory reached
    through its pointer argument."""

    SOURCE = """
    def foo(q) {
      var x = *q;
      if (x) {
        var t = 10;
        x = x * t;
        *q = x;
      }
      return x;
    }
    def main() {
      var a = malloc(1);
      *a = 3;
      output(foo(a));
      output(*a);
      return 0;
    }
    """

    def test_memory_flows_across_the_call(self):
        prepared = analyzed(self.SOURCE)
        foo = prepared.module.functions["foo"]
        assert foo.virtual_params  # [ρ] list of Figure 4
        analysis = analyze(source=self.SOURCE)
        assert analysis.run_native().outputs == [30, 30]
        assert not analysis.run("usher").warnings

    def test_chi_at_call_site(self):
        prepared = analyzed(self.SOURCE)
        from repro.ir import instructions as ins

        calls = [
            i
            for i in prepared.module.functions["main"].instructions()
            if isinstance(i, ins.Call)
        ]
        assert any(c.chis for c in calls)


class TestFigure6:
    """The semi-strong update example: an allocation wrapper called in
    a loop, with the store dominated by the allocation."""

    SOURCE = """
    def foo() {
      var q = malloc(1);
      var p = q;
      var t = 0;
      *p = t;
      return *p;
    }
    def main() {
      var i = 0, s = 0;
      while (i < 4) {
        s = s + foo();
        i = i + 1;
      }
      output(s);
      return 0;
    }
    """

    def test_semi_strong_update_applied(self):
        prepared = analyzed(self.SOURCE)
        result = run_usher(prepared, UsherConfig.tl_at())
        assert result.vfg.stats.semi_strong_applied >= 1

    def test_load_proved_defined(self):
        prepared = analyzed(self.SOURCE)
        result = run_usher(prepared, UsherConfig.tl_at())
        # With the semi-strong update, *p is defined: no checks remain.
        assert result.plan.count_checks() == 0

    def test_without_semi_strong_checks_remain(self):
        from repro.vfg import build_vfg, resolve_definedness
        from repro.core import build_guided_plan

        prepared = analyzed(self.SOURCE)
        vfg = build_vfg(
            prepared.module,
            prepared.pointers,
            prepared.callgraph,
            prepared.modref,
            semi_strong=False,
        )
        gamma = resolve_definedness(vfg)
        plan, _ = build_guided_plan(
            prepared.module, vfg, gamma, prepared.callgraph
        )
        assert plan.count_checks() > 0


class TestFigure9:
    """Redundant check elimination: an undefined value checked at l1
    (dominating) and again at l2."""

    SOURCE = """
    def main() {
      var a = 1;
      var b;
      if (0) { b = 1; }
      var c = a + b;
      var p = calloc(1);
      *p = c;             // l1: store uses a pointer; c flows to l1's
      var d = 0;
      var e = b + d;
      if (e) { skip; }    // l2: dominated check on the same culprit b
      output(*p);
      return 0;
    }
    """

    def test_opt2_removes_the_dominated_check(self):
        prepared = analyzed(self.SOURCE)
        without = run_usher(prepared, UsherConfig.opt_i())
        with_opt2 = run_usher(prepared, UsherConfig.full())
        assert with_opt2.plan.count_checks() <= without.plan.count_checks()
        assert with_opt2.opt2_stats.redirected_nodes >= 0

    def test_detection_still_happens_at_l1(self):
        analysis = analyze(source=self.SOURCE)
        native = analysis.run_native()
        assert native.true_undefined_uses  # b is really undefined
        report = analysis.run("usher")
        assert report.warnings  # the dominating check fires
