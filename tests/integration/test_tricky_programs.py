"""Integration tests for tricky whole-program scenarios.

Each case stresses an interaction between subsystems (pointer analysis
× memory SSA × instrumentation × runtime) that unit tests cover only in
isolation.  Every scenario asserts full agreement between the oracle,
MSan and Usher.
"""

import pytest

from repro.api import CONFIG_ORDER, analyze

SCENARIOS = {
    # Pointers stored inside records, two levels deep.
    "pointer_in_record": (
        """
        def main() {
          var inner = calloc(2);
          inner[0] = 41;
          var outer = malloc(2);
          outer[0] = inner;          // record holding a pointer
          var fetched = outer[0];
          output(fetched[0] + 1);
          return 0;
        }
        """,
        False,
    ),
    # Function pointer stored in a record, called after retrieval.
    "function_pointer_in_record": (
        """
        def triple(v) { return v * 3; }
        def main() {
          var vtbl = malloc(1);
          *vtbl = triple;
          var fn = *vtbl;
          output(fn(14));
          return 0;
        }
        """,
        False,
    ),
    # Recursion writing through memory each level.
    "recursive_memory_writes": (
        """
        def fill(p, n) {
          if (n == 0) { return *p; }
          *p = *p + n;
          return fill(p, n - 1);
        }
        def main() {
          var acc = calloc(1);
          output(fill(acc, 5));
          return 0;
        }
        """,
        False,
    ),
    # The undefined value flows through two memory hops and a call.
    "two_hop_memory_taint": (
        """
        def relay(dst, src) { *dst = *src; return 0; }
        def main() {
          var a = malloc(1);
          var b = malloc(1);
          relay(b, a);             // copies undefined *a into *b
          if (*b) { output(1); } else { output(2); }
          return 0;
        }
        """,
        True,
    ),
    # A conditionally-initialized record field used on the other branch.
    "cross_branch_field": (
        """
        def main() {
          var r = malloc(2);
          var mode = 1;
          if (mode) { r[0] = 10; } else { r[1] = 20; }
          output(r[0]);            // fine: mode is 1
          output(r[1]);            // BUG: never written on this run
          return 0;
        }
        """,
        True,
    ),
    # Aliased writes: the second pointer cures the first's cell.
    "alias_cure": (
        """
        def main() {
          var p = malloc(1);
          var q = p;
          *q = 9;
          output(*p);
          return 0;
        }
        """,
        False,
    ),
    # Loop-carried undefinedness: poisoned on iteration 3, used on 4.
    "loop_carried_taint": (
        """
        def main() {
          var cur = 1;
          var hole;
          var i = 0;
          while (i < 6) {
            if (i == 3) { cur = hole; }
            if (i == 4) { output(cur); }   // BUG surfaces here
            i = i + 1;
          }
          return 0;
        }
        """,
        True,
    ),
    # Short-circuit keeps the undefined operand unevaluated.
    "short_circuit_guard": (
        """
        def main() {
          var flag = 0;
          var u;
          if (flag && u) { output(1); } else { output(2); }
          return 0;
        }
        """,
        # `flag && u` lowers to a branch on flag first; u's branch never
        # executes, so no dynamic bug.
        False,
    ),
    # Bit-level laundering across a call boundary.
    "laundered_across_call": (
        """
        def mask_low(v) { return v & 0; }
        def main() {
          var u;
          output(mask_low(u));     // all undefined bits laundered
          return 0;
        }
        """,
        False,
    ),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestTrickyPrograms:
    def test_oracle_matches_expectation(self, name):
        source, expect_bug = SCENARIOS[name]
        analysis = analyze(source=source, name=name)
        native = analysis.run_native()
        assert bool(native.true_bug_set()) == expect_bug

    def test_all_tools_agree_with_oracle(self, name):
        source, expect_bug = SCENARIOS[name]
        analysis = analyze(source=source, name=name)
        native = analysis.run_native()
        for config in CONFIG_ORDER:
            report = analysis.run(config)
            assert report.outputs == native.outputs, config
            assert bool(report.warnings) == expect_bug, config

    def test_usher_never_costs_more_than_msan(self, name):
        source, _ = SCENARIOS[name]
        analysis = analyze(source=source, name=name)
        assert analysis.slowdown("usher") <= analysis.slowdown("msan") + 1e-9
