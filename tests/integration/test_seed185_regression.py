"""Regression pin for ROADMAP item 1: the Opt I grouping bug.

The soundness oracle's fuzzing campaign flagged corpus seed 185 (the
historical `prepared_random(185)`) as the divergence behind ROADMAP
item 1: with the ungrouped min-flow cut, Opt I spread the source
conjunction of a mask-preserving copy chain feeding a bitwise ``|``
and warned on a defined value (uid 407), and the naive Opt II
redirect then also dropped true bug 525.  These tests pin the fixed
behavior on both the full corpus program and the oracle-minimized
76-instruction reproducer committed under ``tests/data/corpus``.
"""

from pathlib import Path

import pytest

from repro.core import UsherConfig, run_usher
from repro.oracle import build_config_matrix, legacy_opt1
from repro.oracle.harness import examine_text
from repro.runtime import run_instrumented, run_native
from tests.helpers import prepared_random

DATA = Path(__file__).resolve().parents[1] / "data"
REPRODUCER = DATA / "corpus" / "seed185_opt1_grouping.ir"

CONFIGS = {
    "tl": UsherConfig.tl,
    "tl_at": UsherConfig.tl_at,
    "opt_i": UsherConfig.opt_i,
    "full": UsherConfig.full,
}


@pytest.fixture(scope="module")
def seed185():
    prepared = prepared_random(185)
    native = run_native(prepared.module, max_steps=2_000_000)
    return prepared, native


class TestSeed185Corpus:
    def test_native_ground_truth(self, seed185):
        _, native = seed185
        assert native.true_bug_set() == {517, 525}

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_warned_set_is_exact(self, seed185, name):
        """Every guided configuration reports exactly the true bugs —
        no spurious 407 from ungrouped Opt I, and Opt II keeps 525."""
        prepared, native = seed185
        result = run_usher(prepared, CONFIGS[name]())
        report = run_instrumented(
            prepared.module, result.plan, max_steps=4_000_000
        )
        assert report.warning_set() == {517, 525}, name
        assert report.outputs == native.outputs, name

    def test_opt2_does_not_drop_bug_525(self, seed185):
        """The Opt II bitwise-feed bar: check 525 sits downstream of a
        ``^``/``|`` chain that launders undefined bits, so redirecting
        its feeders must not suppress it."""
        prepared, _ = seed185
        result = run_usher(prepared, UsherConfig.full())
        report = run_instrumented(
            prepared.module, result.plan, max_steps=4_000_000
        )
        assert 525 in report.warning_set()


class TestMinimizedReproducer:
    def test_reproducer_is_committed(self):
        assert REPRODUCER.exists()

    def test_fixed_code_has_no_divergence(self):
        text = REPRODUCER.read_text()
        matrix = build_config_matrix(["tl", "tl_at", "opt_i", "full"])
        status, divergences = examine_text(text, "seed185_min", matrix)
        assert status == "ok", [d.describe() for d in divergences]

    def test_legacy_opt1_diverges_on_it(self):
        """The reproducer still bites: re-enabling the historical
        ungrouped Opt I makes the oracle flag a spurious warning under
        every configuration that applies Opt I."""
        text = REPRODUCER.read_text()
        matrix = build_config_matrix(["opt_i", "full"])
        with legacy_opt1():
            status, divergences = examine_text(text, "seed185_min", matrix)
        assert status == "divergent"
        buckets = {(d.config, d.kind) for d in divergences}
        assert ("opt_i", "spurious") in buckets
        assert ("full", "spurious") in buckets

    def test_legacy_opt1_reproduces_the_original_spurious_uid(self, seed185):
        """On the full corpus program the historical bug warned on uid
        407 — a defined value."""
        prepared, native = seed185
        with legacy_opt1():
            result = run_usher(prepared, UsherConfig.opt_i())
        report = run_instrumented(
            prepared.module, result.plan, max_steps=4_000_000
        )
        assert 407 in report.warning_set()
        assert 407 not in native.true_bug_set()
