"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main

BUGGY = """
def main() {
  var x;
  if (0) { x = 1; }
  output(x);
  return 0;
}
"""

CLEAN = """
def main() {
  var x = 1;
  output(x + 2);
  return 0;
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.tc"
    path.write_text(BUGGY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.tc"
    path.write_text(CLEAN)
    return str(path)


class TestCheck:
    def test_buggy_program_exits_1(self, buggy_file, capsys):
        assert main(["check", buggy_file]) == 1
        out = capsys.readouterr().out
        assert "use of undefined value" in out
        assert "line 5" in out  # the output statement

    def test_clean_program_exits_0(self, clean_file, capsys):
        assert main(["check", clean_file]) == 0
        assert "no uses of undefined values" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "config", ["msan", "usher_tl", "usher_tl_at", "usher_opt1", "usher"]
    )
    def test_every_config_detects(self, buggy_file, config):
        assert main(["check", buggy_file, "--config", config]) == 1

    def test_show_plan(self, buggy_file, capsys):
        main(["check", buggy_file, "--show-plan"])
        out = capsys.readouterr().out
        assert "instrumentation plan" in out
        assert "σ(" in out

    @pytest.mark.parametrize("tier", ["full", "lazy", "unified"])
    def test_every_tier_detects(self, buggy_file, tier, capsys):
        assert main(["check", buggy_file, "--tier", tier]) == 1
        assert "use of undefined value" in capsys.readouterr().out

    def test_unified_tier_reports_unified_nodes(self, buggy_file, capsys):
        main(["check", buggy_file, "--tier", "unified", "--solver-stats"])
        out = capsys.readouterr().out
        assert "unified tier" in out
        assert "unified nodes" in out

    def test_trace_writes_valid_chrome_trace(
        self, buggy_file, tmp_path, capsys
    ):
        from repro.obs.trace import TRACE, validate_chrome_trace

        out = tmp_path / "trace.json"
        assert main(["check", buggy_file, "--trace", str(out)]) == 1
        printed = capsys.readouterr().out
        assert "trace: wrote" in printed and str(out) in printed
        assert not TRACE.enabled  # tracing switched back off afterwards
        spans = validate_chrome_trace(out.read_text())
        assert spans > 0
        import json as _json

        names = {
            e["name"]
            for e in _json.loads(out.read_text())["traceEvents"]
            if e["ph"] == "X"
        }
        assert {"parse", "analyze", "pointer_analysis"} <= names

    def test_trace_still_written_on_compile_error(self, tmp_path, capsys):
        from repro.obs.trace import TRACE

        bad = tmp_path / "bad.tc"
        bad.write_text("def main( {")
        out = tmp_path / "trace.json"
        assert main(["check", str(bad), "--trace", str(out)]) == 2
        assert not TRACE.enabled

    def test_missing_file_exits_2(self, capsys):
        assert main(["check", "/nonexistent.tc"]) == 2

    def test_syntax_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.tc"
        bad.write_text("def main( {")
        assert main(["check", str(bad)]) == 2
        assert "compile error" in capsys.readouterr().err


class TestRunAndIR:
    def test_run_prints_outputs(self, clean_file, capsys):
        assert main(["run", clean_file]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_ir_dump(self, clean_file, capsys):
        assert main(["ir", clean_file]) == 0
        out = capsys.readouterr().out
        assert "def main()" in out
        assert "output" in out

    def test_ir_ssa_dump(self, clean_file, capsys):
        assert main(["ir", clean_file, "--ssa", "--uids"]) == 0
        out = capsys.readouterr().out
        assert ".1" in out  # SSA versions

    def test_ir_levels(self, clean_file, capsys):
        main(["ir", clean_file, "--level", "O1"])
        o1 = capsys.readouterr().out
        main(["ir", clean_file, "--level", "O0"])
        o0 = capsys.readouterr().out
        assert len(o1) <= len(o0)


class TestReportAndSweep:
    def test_report_sections(self, capsys):
        assert main(["report", "--scale", "0.05",
                     "--sections", "figure11"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "Table 1" not in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "r.md"
        assert main(["report", "--scale", "0.05",
                     "--sections", "figure11", "-o", str(target)]) == 0
        assert "Figure 11" in target.read_text()

    def test_report_trace_section(self, capsys):
        assert main(["report", "--scale", "0.05",
                     "--sections", "trace"]) == 0
        out = capsys.readouterr().out
        assert "Phase trace" in out
        assert "pointer_analysis" in out

    def test_sweep_prints_both_figures(self, capsys):
        assert main(["sweep", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "average" in out
        assert "usher_tl_at" in out
