"""Integration tests: detection of crafted undefined-value bugs.

Each scenario contains one genuine bug of a different class; every
configuration (MSan and all Usher variants) must detect it, and MSan's
warnings must coincide with the oracle.
"""

import pytest

from repro.api import CONFIG_ORDER, analyze

SCENARIOS = {
    "scalar_use_before_def": """
        def main() {
          var x;
          var c = 2;
          if (c > 10) { x = 1; }
          output(x);
          return 0;
        }
    """,
    "heap_field_never_written": """
        def main() {
          var p = malloc(3);
          p[0] = 1; p[1] = 2;
          if (p[2] > 0) { output(1); } else { output(0); }
          return 0;
        }
    """,
    "malloc_array_partial_init": """
        def main() {
          var a = malloc_array(4);
          var i = 0;
          while (i < 3) { a[i] = i; i = i + 1; }
          output(a[3]);
          return 0;
        }
    """,
    "undefined_through_call": """
        def carry(v) { return v + 1; }
        def main() {
          var u;
          output(carry(u));
          return 0;
        }
    """,
    "undefined_through_memory_and_call": """
        def stash(p, v) { *p = v; return 0; }
        def main() {
          var u;
          var cell = malloc(1);
          stash(cell, u);
          if (*cell) { output(1); }
          return 0;
        }
    """,
    "undefined_via_return": """
        def broken() {
          var r;
          if (0) { r = 1; }
          return r;
        }
        def main() { output(broken()); return 0; }
    """,
    "undefined_branch_condition": """
        def main() {
          var flag;
          if (flag) { output(1); } else { output(2); }
          return 0;
        }
    """,
    "undefined_global": """
        global uninit g;
        def main() { output(g); return 0; }
    """,
    "undefined_pointer_arith_taint": """
        def main() {
          var u;
          var v = u * 2 + 1;
          var w = v - u;
          output(w);
          return 0;
        }
    """,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestDetection:
    def test_oracle_flags_the_bug(self, name):
        analysis = analyze(source=SCENARIOS[name], name=name)
        assert analysis.run_native().true_undefined_uses

    def test_every_configuration_detects(self, name):
        analysis = analyze(source=SCENARIOS[name], name=name)
        for config in CONFIG_ORDER:
            assert analysis.run(config).warnings, config

    def test_msan_matches_oracle_exactly(self, name):
        analysis = analyze(source=SCENARIOS[name], name=name)
        report = analysis.run("msan")
        assert report.warning_set() == report.true_bug_set()

    def test_usher_warnings_subset_of_msan(self, name):
        """Guided instrumentation adds no false positives: every site
        Usher warns about, full instrumentation warns about too."""
        analysis = analyze(source=SCENARIOS[name], name=name)
        msan = analysis.run("msan").warning_set()
        for config in ("usher_tl", "usher_tl_at", "usher_opt1"):
            assert analysis.run(config).warning_set() <= msan, config
