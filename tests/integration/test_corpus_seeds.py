"""The permanent-corpus loader contract: every committed ``.ir`` seed
parses, verifies, honors the soundness oracle under all four base
configurations, and reproduces its manifest-pinned warning set.

This is the satellite guarantee of the corpus: a pipeline change that
shifts behavior on any oracle-bred shape — the distilled programs
where real bugs hid — fails here the moment it lands, not on the next
nightly fuzz campaign.
"""

from pathlib import Path

import pytest

from repro.core import run_usher
from repro.ir.parser import parse_ir
from repro.ir.verifier import verify_module
from repro.oracle.differ import build_config_matrix
from repro.oracle.harness import FUZZ_PIPELINE, _prepare_text, examine_text
from repro.runtime import run_instrumented, run_native
from repro.workloads.corpus import (
    BASE_CONFIG_SPECS,
    CorpusError,
    CorpusSeed,
    default_corpus_dir,
    load_corpus,
)

CORPUS_DIR = Path(__file__).resolve().parents[1] / "data" / "corpus"

SEEDS = load_corpus(CORPUS_DIR)


class TestCorpusShape:
    def test_corpus_has_at_least_two_bred_seeds_plus_seed185(self):
        names = {seed.name for seed in SEEDS}
        assert "seed185" in names
        assert len(names - {"seed185"}) >= 2

    def test_default_dir_resolves_to_the_checkout(self):
        assert default_corpus_dir() == CORPUS_DIR

    def test_manifest_covers_every_committed_ir_file(self):
        files = {path.name for path in CORPUS_DIR.glob("*.ir")}
        listed = {Path(seed.path).name for seed in SEEDS}
        assert files == listed

    def test_every_seed_pins_all_four_base_configs(self):
        for seed in SEEDS:
            assert set(dict(seed.pinned)) == set(BASE_CONFIG_SPECS)


@pytest.mark.parametrize("seed", SEEDS, ids=lambda s: s.name)
class TestEverySeed:
    def test_parses_and_verifies(self, seed):
        module = parse_ir(seed.text())
        verify_module(module)

    def test_oracle_contract_holds(self, seed):
        matrix = build_config_matrix(list(BASE_CONFIG_SPECS))
        status, divergences = examine_text(seed.text(), seed.name, matrix)
        assert status == "ok", [d.describe() for d in divergences]

    def test_native_ground_truth_matches_manifest(self, seed):
        prepared = _prepare_text(seed.text(), seed.name)
        native = run_native(prepared.module)
        assert tuple(sorted(native.true_bug_set())) == seed.true_bugs

    def test_pinned_warning_sets_reproduce(self, seed):
        matrix = build_config_matrix(list(BASE_CONFIG_SPECS))
        prepared = _prepare_text(seed.text(), seed.name)
        for spec, config in matrix:
            plan = run_usher(prepared, config).plan
            report = run_instrumented(prepared.module, plan)
            assert (
                tuple(sorted(report.warning_set()))
                == seed.pinned_warnings(spec)
            ), f"{seed.name} under {spec}"


class TestLoaderErrors:
    def test_absent_directory_is_an_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nowhere") == []

    def test_bad_json_raises(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{broken")
        with pytest.raises(CorpusError, match="bad JSON"):
            load_corpus(tmp_path)

    def test_unknown_schema_raises(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"schema": "nope/9"}')
        with pytest.raises(CorpusError, match="unknown schema"):
            load_corpus(tmp_path)

    def test_missing_file_raises(self, tmp_path):
        import json

        (tmp_path / "manifest.json").write_text(json.dumps({
            "schema": "repro.corpus/1",
            "seeds": [{
                "name": "ghost", "file": "ghost.ir", "true_bugs": [],
                "pinned": {s: [] for s in BASE_CONFIG_SPECS},
            }],
        }))
        with pytest.raises(CorpusError, match="missing"):
            load_corpus(tmp_path)

    def test_missing_pinned_config_raises(self, tmp_path):
        import json

        (tmp_path / "partial.ir").write_text("; empty\n")
        (tmp_path / "manifest.json").write_text(json.dumps({
            "schema": "repro.corpus/1",
            "seeds": [{
                "name": "partial", "file": "partial.ir", "true_bugs": [],
                "pinned": {"tl": []},
            }],
        }))
        with pytest.raises(CorpusError, match="lacks pinned"):
            load_corpus(tmp_path)

    def test_seed_accessors(self):
        seed = next(s for s in SEEDS if s.name == "seed185")
        assert isinstance(seed, CorpusSeed)
        assert seed.description == seed.origin
        assert seed.text().startswith(";")
        assert seed.pinned_warnings("tl") == seed.pinned_warnings("full")


def test_corpus_pipeline_level_matches_the_oracle():
    """Bench corpus cells and the loader both replay seeds at the
    oracle's pipeline level; a drift here would un-pin everything."""
    assert FUZZ_PIPELINE == "O0+IM"
