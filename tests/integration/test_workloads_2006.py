"""Integration tests for the CPU2006-style workload extensions.

The four programs of :mod:`repro.workloads.spec2006` each stress one
shape the SPEC2000 set underweights — nested indirect dispatch,
mutually recursive search, deep copy chains, recursion over heap
records — so beyond the standard semantic-preservation and ordering
contracts, each gets a test pinning the *shape property* it exists
for.
"""

import pytest

from repro.api import CONFIG_ORDER, analyze
from repro.workloads import (
    ALL_WORKLOADS,
    BY_NAME,
    CPU2006_WORKLOADS,
    WORKLOADS,
    workload,
)

SCALE = 0.15


@pytest.fixture(scope="module")
def analyses():
    return {
        w.name: analyze(source=w.source(SCALE), name=w.name)
        for w in CPU2006_WORKLOADS
    }


class TestRegistry:
    def test_nineteen_workloads_total(self):
        # The paper's 15 (untouched — figures iterate exactly those)
        # plus the four CPU2006-style extensions.
        assert len(WORKLOADS) == 15
        assert len(CPU2006_WORKLOADS) == 4
        assert len(ALL_WORKLOADS) >= 19
        assert len({w.name for w in ALL_WORKLOADS}) == len(ALL_WORKLOADS)

    def test_lookup_covers_both_sets(self):
        assert workload("400.perlbench").description
        assert workload("181.mcf").description
        assert set(BY_NAME) == {w.name for w in ALL_WORKLOADS}

    def test_spec2000_subset_unchanged(self):
        # The SPEC2000 module keeps its own 15-name mapping.
        from repro.workloads.spec import BY_NAME as SPEC2000_BY_NAME

        assert len(SPEC2000_BY_NAME) == 15
        assert "400.perlbench" not in SPEC2000_BY_NAME


class TestContracts:
    @pytest.mark.parametrize("name", [w.name for w in CPU2006_WORKLOADS])
    def test_semantics_preserved_under_every_plan(self, analyses, name):
        analysis = analyses[name]
        native = analysis.run_native()
        for config in CONFIG_ORDER:
            report = analysis.run(config)
            assert report.outputs == native.outputs, config
            assert report.exit_value == native.exit_value, config

    @pytest.mark.parametrize("name", [w.name for w in CPU2006_WORKLOADS])
    def test_warning_free(self, analyses, name):
        analysis = analyses[name]
        assert not analysis.run_native().true_undefined_uses
        for config in CONFIG_ORDER:
            assert not analysis.run(config).warnings, config

    @pytest.mark.parametrize("name", [w.name for w in CPU2006_WORKLOADS])
    def test_overhead_ordering(self, analyses, name):
        analysis = analyses[name]
        slow = {c: analysis.slowdown(c) for c in CONFIG_ORDER}
        assert slow["msan"] >= slow["usher_tl"] >= slow["usher_tl_at"]
        assert slow["usher_tl_at"] >= slow["usher_opt1"] >= slow["usher"]


class TestShapeProperties:
    def test_perlbench_is_icall_heavy(self, analyses):
        """Every hot call edge is indirect: both dispatch layers must
        resolve — main reaches the op handlers only through the op
        table, and each handler reaches the matchers only through the
        threaded function value."""
        callgraph = analyses["400.perlbench"].prepared.callgraph
        handlers = {"op_match", "op_skip", "op_count"}
        matchers = {"m_lit", "m_any", "m_cls"}
        assert handlers <= callgraph.successors("main")
        for handler in handlers:
            assert matchers <= callgraph.successors(handler), handler

    def test_gobmk_call_graph_is_cyclic(self, analyses):
        """evaluate <-> search: the mutual recursion the summaries
        must close over instead of unrolling."""
        callgraph = analyses["445.gobmk"].prepared.callgraph
        assert "search" in callgraph.successors("evaluate")
        assert "evaluate" in callgraph.successors("search")
        assert "search" in callgraph.successors("search")
        assert {"search", "evaluate"} <= callgraph.recursive

    def test_astar_growth_is_recursive_over_heap_records(self, analyses):
        callgraph = analyses["473.astar"].prepared.callgraph
        assert "grow" in callgraph.successors("grow")
        assert "grow" in callgraph.recursive

    def test_hmmer_copy_chains_reward_the_full_pipeline(self, analyses):
        """The deep copy chains are exactly what Opt I collapses and
        Opt II then elides: each pipeline stage must keep buying a
        real reduction in dynamic cost."""
        analysis = analyses["456.hmmer"]
        opt1 = analysis.slowdown("usher_opt1")
        full = analysis.slowdown("usher")
        assert opt1 < analysis.slowdown("usher_tl_at")
        # Opt II is the star on this shape: collapsing the chains only
        # pays off once their propagations are elided outright.
        assert full < 0.65 * opt1
        props_opt1 = analysis.static_propagations("usher_opt1")
        props_full = analysis.static_propagations("usher")
        assert props_full < 0.6 * props_opt1

    def test_astar_is_cheap_once_fully_optimized(self, analyses):
        """Recursion + heap records, but every value is defined along
        all paths: the full pipeline proves nearly everything away."""
        analysis = analyses["473.astar"]
        assert analysis.slowdown("usher") < 10.0
