"""Per-workload profile tests: each benchmark's defining character.

The workloads substitute for SPEC CPU2000 by reproducing the profile
parameters Table 1 and §4.5 identify as driving the results.  These
tests pin those structural properties so future edits to the workloads
can't silently lose the distribution the figures depend on.
"""

import pytest

from repro.analysis.memobjects import GLOBAL, HEAP
from repro.harness.runner import nodes_reaching_checks, run_workload
from repro.ir import instructions as ins
from repro.workloads import WORKLOADS, workload

SCALE = 0.1


@pytest.fixture(scope="module")
def runs():
    return {w.name: run_workload(w, scale=SCALE) for w in WORKLOADS}


def objects_of(run):
    return run.analysis.prepared.pointers.all_objects()


class TestProfiles:
    def test_mcf_everything_initialized(self, runs):
        """181.mcf allocates only calloc'd records (the one malloc'd
        array is the heap-cloning-ablation tombstone table) → ~0%
        slowdown."""
        heap = [o for o in objects_of(runs["181.mcf"]) if o.kind == HEAP]
        assert heap
        records = [o for o in heap if not o.is_array]
        assert records and all(o.initialized for o in records)

    def test_gap_everything_uninitialized(self, runs):
        """254.gap's arena hands out raw malloc blocks (high %F)."""
        heap = [o for o in objects_of(runs["254.gap"]) if o.kind == HEAP]
        assert heap
        assert all(not o.initialized for o in heap)

    def test_mesa_is_heap_heavy(self, runs):
        """177.mesa allocates per span (many heap allocations at
        run time, as Table 1's 2417 heap variables suggest)."""
        run = runs["177.mesa"]
        allocs = sum(
            1
            for uid, origin in run.analysis.prepared.pointers.alloc_objects.items()
            for o in origin
            if o.kind == HEAP
        )
        assert allocs >= 2
        # Dynamically: one vertex pair per frame.
        interp_allocs = [
            o for o in objects_of(run) if o.kind == HEAP
        ]
        assert interp_allocs

    def test_crafty_is_bitwise_dense(self, runs):
        """186.crafty: bitwise ops dominate its arithmetic (limits
        Opt I, §4.1)."""
        module = runs["186.crafty"].analysis.module
        binops = [
            i for i in module.instructions() if isinstance(i, ins.BinOp)
        ]
        bitwise = [i for i in binops if i.op in ("&", "|", "^", "<<", ">>")]
        assert len(bitwise) / len(binops) > 0.25

    def test_perlbmk_has_highest_reach(self, runs):
        """253.perlbmk: the largest share of VFG nodes reaching a
        needed check (paper: 84%)."""
        shares = {}
        for name, run in runs.items():
            vfg = run.analysis.results["usher_tl_at"].vfg
            shares[name] = len(nodes_reaching_checks(run.analysis)) / max(
                vfg.num_nodes, 1
            )
        top_two = sorted(shares, key=shares.get, reverse=True)[:2]
        assert "253.perlbmk" in top_two, shares

    def test_gcc_has_widest_indirect_dispatch(self, runs):
        """176.gcc dispatches through a 5-entry function-pointer table."""
        cg = runs["176.gcc"].analysis.prepared.callgraph
        widths = [len(t) for t in cg.callees.values()]
        assert max(widths) >= 5

    def test_parser_is_the_only_buggy_workload(self, runs):
        for name, run in runs.items():
            bug = bool(run.native().true_undefined_uses)
            assert bug == (name == "197.parser"), name

    def test_twolf_uses_semi_strong_updates(self, runs):
        stats = runs["300.twolf"].analysis.results["usher_tl_at"].vfg.stats
        assert stats.semi_strong_applied >= 1

    def test_every_workload_exercises_memory(self, runs):
        for name, run in runs.items():
            module = run.analysis.module
            assert any(
                isinstance(i, ins.Load) for i in module.instructions()
            ), name
            assert any(
                isinstance(i, ins.Store) for i in module.instructions()
            ), name

    def test_globals_present_for_strong_updates(self, runs):
        """Most workloads keep a global scalar counter: the strong-update
        population Table 1's %SU column measures."""
        with_globals = [
            name
            for name, run in runs.items()
            if any(o.kind == GLOBAL for o in objects_of(run))
        ]
        assert len(with_globals) >= 12

    def test_workload_sources_are_distinct(self):
        sources = {w.name: w.source(0.1) for w in WORKLOADS}
        assert len(set(sources.values())) == len(sources)

    def test_scaling_changes_trip_counts_only(self):
        w = workload("164.gzip")
        small, large = w.source(0.1), w.source(1.0)
        assert small != large
        assert len(small.splitlines()) == len(large.splitlines())
