"""The service error contract and ``/metrics``, route by route.

Every error path of the live daemon, pinned down: each digest-taking
route (``/update``, ``/query_sites``, ``/explain``, ``/stats``)
answers the same one-line 404 on an unknown digest; a *known* digest
with bad arguments (unknown function, missing field) is a 400;
unknown routes are 404 on both GET and POST.  ``GET /metrics`` must
return parseable Prometheus text whose request counters reflect the
traffic this suite just generated.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.metrics import parse_prometheus_text
from repro.service import ServiceClient
from repro.service.server import ServiceError

REPO = Path(__file__).resolve().parents[2]

SOURCE = """
def classify(v) {
  var bin;
  if (v < 5) { bin = 0; }
  return bin;
}
def main() {
  var b = classify(9);
  if (b) { output(1); }
  return 0;
}
"""


@pytest.fixture(scope="module")
def server():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        banner = proc.stdout.readline().strip()
        match = re.search(r"http://([\d.]+):(\d+)$", banner)
        assert match, f"no listening banner, got {banner!r}"
        yield ServiceClient(f"http://{match.group(1)}:{match.group(2)}")
    finally:
        proc.terminate()
        proc.wait(timeout=10)


@pytest.fixture(scope="module")
def opened(server):
    return server.open(source=SOURCE, name="classify")


def _expect(status, call, *args, **kwargs):
    with pytest.raises(ServiceError) as err:
        call(*args, **kwargs)
    assert err.value.status == status
    message = err.value.message
    assert "\n" not in message, f"error not one line: {message!r}"
    return message


class TestUnknownDigestIs404Everywhere:
    """The uniform contract: same status, same one-line shape."""

    def test_update(self, server):
        message = _expect(
            404, server.update, "feedfacecafebeef", "main", "main:\n  ret 0"
        )
        assert "feedfacecafebeef" in message

    def test_query_sites(self, server):
        message = _expect(404, server.query_sites, "feedfacecafebeef")
        assert "feedfacecafebeef" in message

    def test_explain(self, server):
        message = _expect(404, server.explain, "feedfacecafebeef", 1)
        assert "feedfacecafebeef" in message

    def test_stats(self, server):
        message = _expect(404, server.stats, "feedfacecafebeef")
        assert "feedfacecafebeef" in message

    def test_all_four_share_one_message_shape(self, server):
        messages = {
            _expect(404, server.update, "00", "f", "x"),
            _expect(404, server.query_sites, "00"),
            _expect(404, server.explain, "00", 1),
            _expect(404, server.stats, "00"),
        }
        assert len(messages) == 1  # identical text on every route


class TestKnownDigestBadInputIs400:
    def test_unknown_function_on_known_digest(self, server, opened):
        message = _expect(
            400, server.update, opened["digest"], "no_such_fn", "x:\n  ret 0"
        )
        assert "no_such_fn" in message

    def test_update_missing_body(self, server, opened):
        _expect(400, server.update, opened["digest"], "main", None)

    def test_explain_missing_uid(self, server, opened):
        _expect(400, server.explain, opened["digest"], None)

    def test_open_with_both_source_and_ir(self, server):
        _expect(400, server.open, source=SOURCE, ir="def main:\n  ret 0")

    def test_open_with_neither(self, server):
        _expect(400, server.open)

    def test_parse_error_is_one_line_400(self, server):
        message = _expect(400, server.open, source="def main( {")
        assert "\n" not in message


class TestUnknownRouteIs404:
    def test_post(self, server):
        _expect(404, server._call, "/no_such_route", {})

    def test_get(self, server):
        _expect(404, server._call, "/no_such_route")


class TestMetricsEndpoint:
    def test_parseable_prometheus_text(self, server, opened):
        server.ping()
        parsed = parse_prometheus_text(server.metrics())
        assert parsed["repro_sessions"][()] >= 1
        ping_ok = parsed["repro_requests_total"][
            (("route", "/ping"), ("status", "200"))
        ]
        assert ping_ok >= 1

    def test_latency_histogram_present(self, server, opened):
        parsed = parse_prometheus_text(server.metrics())
        buckets = parsed["repro_request_seconds_bucket"]
        open_buckets = {
            labels: value
            for labels, value in buckets.items()
            if ("route", "/open") in labels
        }
        assert open_buckets, "no latency series for /open"
        assert any(("le", "+Inf") in labels for labels in open_buckets)
        assert parsed["repro_request_seconds_count"][
            (("route", "/open"),)
        ] >= 1

    def test_error_traffic_is_counted(self, server, opened):
        _expect(404, server.stats, "feedfacecafebeef")
        parsed = parse_prometheus_text(server.metrics())
        assert parsed["repro_requests_total"][
            (("route", "/stats"), ("status", "404"))
        ] >= 1

    def test_update_publishes_session_gauges(self, server, opened):
        digest = opened["digest"]
        server.update(digest, "main", _const_edit())
        parsed = parse_prometheus_text(server.metrics())
        assert (("digest", digest),) in parsed["repro_session_dirty_fraction"]
        carried = parsed["repro_session_memos_carried_total"]
        assert (("digest", digest),) in carried


def _const_edit():
    """A semantics-preserving edit of main (dead constant copy).

    The service has no function_text route, so reconstruct main's
    printed IR through an in-process session over the same source.
    """
    from repro.options import AnalysisOptions
    from repro.service import AnalysisSession

    session = AnalysisSession.from_source(
        SOURCE, name="classify", options=AnalysisOptions()
    )
    try:
        lines = session.function_text("main").splitlines()
        for index, line in enumerate(lines):
            if line.rstrip().endswith(":"):
                lines.insert(index + 1, "    %__m0 := 0")
                break
        return "\n".join(lines)
    finally:
        session.close()
