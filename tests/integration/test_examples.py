"""Smoke tests: every example script runs and makes its point."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "WARNING" in out
        assert "less shadow work" in out

    def test_value_flow_explorer(self, capsys):
        out = run_example("value_flow_explorer.py", capsys=capsys)
        assert "semi-strong updates applied" in out
        assert "Γ" in out

    def test_optimization_levels(self, capsys):
        out = run_example("optimization_levels.py", capsys=capsys)
        assert "O0+IM" in out and "O1" in out
        assert "reduction" in out

    def test_static_vs_dynamic(self, capsys):
        out = run_example("static_vs_dynamic.py", capsys=capsys)
        assert "Static-only warner" in out
        assert "Hybrid" in out
        assert "same bug" in out

    def test_ir_builder_demo(self, capsys):
        out = run_example("ir_builder_demo.py", capsys=capsys)
        assert "WARNING" in out
        assert "allocation wrappers: ['produce']" in out

    def test_fuzz_hunt(self, capsys):
        out = run_example(
            "fuzz_hunt.py", argv=["--programs", "6"], capsys=capsys
        )
        assert "soundness holds" in out

    def test_spec_sweep(self, capsys):
        out = run_example(
            "spec_sweep.py", argv=["--scale", "0.05"], capsys=capsys
        )
        assert "Figure 10" in out
        assert "detected by: msan" in out
