"""CLI error paths: invalid input exits non-zero with one clean line.

Every malformed flag — ``--jobs``, ``REPRO_JOBS``, config specs, seed
ranges, budgets — must produce exit code 2 and a single-line message
on stderr, never a traceback.
"""

import pytest

from repro.cli import main

CLEAN = """
def main() {
  var x = 1;
  output(x + 2);
  return 0;
}
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.tc"
    path.write_text(CLEAN)
    return str(path)


def one_clean_error_line(capsys):
    err = capsys.readouterr().err
    assert "Traceback" not in err
    lines = [line for line in err.splitlines() if line.strip()]
    assert len(lines) == 1, err
    return lines[0]


class TestJobsValidation:
    @pytest.mark.parametrize("bad", ["banana", "0", "-3", "2.5", ""])
    def test_invalid_jobs_flag(self, clean_file, bad, capsys):
        assert main(["check", clean_file, "--jobs", bad]) == 2
        line = one_clean_error_line(capsys)
        assert line.startswith("error:")
        assert "--jobs" in line

    def test_invalid_jobs_env(self, clean_file, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "banana")
        assert main(["check", clean_file]) == 2
        line = one_clean_error_line(capsys)
        assert line.startswith("error:")
        assert "REPRO_JOBS" in line

    def test_valid_jobs_env_still_works(self, clean_file, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert main(["check", clean_file]) == 0

    def test_report_validates_jobs_too(self, capsys):
        assert main(["report", "--scale", "0.05", "--jobs", "nope"]) == 2
        assert one_clean_error_line(capsys).startswith("error:")


class TestTierValidation:
    @pytest.mark.parametrize("bad", ["turbo", "0", "", "fulll"])
    def test_invalid_tier_flag(self, clean_file, bad, capsys):
        assert main(["check", clean_file, "--tier", bad]) == 2
        line = one_clean_error_line(capsys)
        assert line.startswith("error:")
        assert "--tier" in line
        assert "full, lazy, unified" in line

    def test_invalid_tier_env(self, clean_file, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TIER", "turbo")
        assert main(["check", clean_file]) == 2
        line = one_clean_error_line(capsys)
        assert line.startswith("error:")
        assert "REPRO_TIER" in line

    def test_valid_tier_env_still_works(self, clean_file, monkeypatch):
        monkeypatch.setenv("REPRO_TIER", "unified")
        assert main(["check", clean_file]) == 0

    def test_report_validates_tier_too(self, capsys):
        assert main(["report", "--scale", "0.05", "--tier", "nope"]) == 2
        assert one_clean_error_line(capsys).startswith("error:")

    def test_fuzz_validates_tier_too(self, capsys):
        assert main(["fuzz", "--seeds", "0:1", "--tier", "nope"]) == 2
        assert one_clean_error_line(capsys).startswith("error:")


class TestFuzzArgValidation:
    def test_unknown_config(self, capsys):
        assert main(["fuzz", "--configs", "tl,bogus"]) == 2
        line = one_clean_error_line(capsys)
        assert line.startswith("error:")
        assert "bogus" in line and "known:" in line

    def test_duplicate_config(self, capsys):
        assert main(["fuzz", "--configs", "tl,tl"]) == 2
        assert "duplicate" in one_clean_error_line(capsys)

    def test_msan_rejects_suffixes(self, capsys):
        assert main(["fuzz", "--configs", "msan+demand"]) == 2
        assert "msan" in one_clean_error_line(capsys)

    @pytest.mark.parametrize("bad", ["5:x", "x", "9:3", "-4"])
    def test_invalid_seed_spec(self, bad, capsys):
        assert main(["fuzz", "--seeds", bad]) == 2
        assert one_clean_error_line(capsys).startswith("error:")

    def test_empty_seed_spec(self, capsys):
        assert main(["fuzz", "--seeds", ""]) == 2
        assert "nothing to fuzz" in one_clean_error_line(capsys)

    @pytest.mark.parametrize("bad", ["nope", "1h", "0", "12q"])
    def test_invalid_budget(self, bad, capsys):
        assert main(["fuzz", "--seeds", "0:1", "--budget", bad]) == 2
        assert "budget" in one_clean_error_line(capsys)

    def test_invalid_jobs(self, capsys):
        assert main(["fuzz", "--seeds", "0:1", "--jobs", "many"]) == 2
        assert one_clean_error_line(capsys).startswith("error:")

    def test_missing_module_file(self, capsys):
        assert main(["fuzz", "--seeds", "", "--module",
                     "/nonexistent/mod.ir"]) == 2
        assert one_clean_error_line(capsys).startswith("error:")

    def test_unparseable_module_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.ir"
        bad.write_text("def main() {\nentry:\n    this is not ir\n}\n")
        assert main(["fuzz", "--seeds", "", "--module", str(bad)]) == 2
        assert one_clean_error_line(capsys).startswith("invalid module:")


class TestServeArgValidation:
    """``repro serve`` shares the analysis-options flag group, so the
    same boundary discipline applies before any socket is bound."""

    def test_invalid_jobs_flag(self, capsys):
        assert main(["serve", "--jobs", "banana"]) == 2
        line = one_clean_error_line(capsys)
        assert line.startswith("error:")
        assert "--jobs" in line

    def test_invalid_tier_flag(self, capsys):
        assert main(["serve", "--tier", "warp"]) == 2
        line = one_clean_error_line(capsys)
        assert line.startswith("error:")
        assert "full, lazy, unified" in line

    def test_invalid_environment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TIER", "turbo")
        assert main(["serve"]) == 2
        line = one_clean_error_line(capsys)
        assert line.startswith("error:")
        assert "REPRO_TIER" in line
