"""Live ``repro serve`` lane: a real daemon process, a real client.

Boots ``python -m repro serve --port 0`` as a subprocess, parses the
printed port, and drives it with :class:`ServiceClient`: verdict
parity against an in-process session, digest caching, incremental
updates, explain traces, and the error contract (404 for unknown
digests, 400 with a one-line message for malformed requests — never a
hung connection or an HTML traceback).
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.options import AnalysisOptions
from repro.service import AnalysisSession, ServiceClient
from repro.service.server import ServiceError

REPO = Path(__file__).resolve().parents[2]

SOURCE = """
def classify(v) {
  var bin;
  if (v < 5) { bin = 0; }
  return bin;
}
def main() {
  var b = classify(9);
  if (b) { output(1); }
  return 0;
}
"""


@pytest.fixture(scope="module")
def server():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        banner = proc.stdout.readline().strip()
        match = re.search(r"http://([\d.]+):(\d+)$", banner)
        assert match, f"no listening banner, got {banner!r}"
        yield ServiceClient(f"http://{match.group(1)}:{match.group(2)}")
    finally:
        proc.terminate()
        proc.wait(timeout=10)


@pytest.fixture(scope="module")
def opened(server):
    return server.open(source=SOURCE, name="classify")


def _const_edit(text):
    lines = text.splitlines()
    for index, line in enumerate(lines):
        if line.rstrip().endswith(":"):
            lines.insert(index + 1, "    %__e0 := 0")
            break
    return "\n".join(lines)


class TestServeParity:
    def test_ping(self, server):
        assert server.ping()["ok"] is True

    def test_open_reports_shape(self, opened):
        assert opened["cached"] is False
        assert opened["generation"] == 0
        assert opened["functions"] == ["classify", "main"]
        assert opened["check_sites"] > 0

    def test_reopen_hits_the_digest_cache(self, server, opened):
        again = server.open(source=SOURCE, name="classify")
        assert again["digest"] == opened["digest"]
        assert again["cached"] is True

    def test_query_parity_with_in_process_session(self, server, opened):
        local = AnalysisSession.from_source(SOURCE, name="classify")
        assert server.query_sites(opened["digest"]) == local.query_sites()

    def test_update_then_parity(self, server, opened):
        local = AnalysisSession.from_source(SOURCE, name="classify")
        body = _const_edit(local.function_text("classify"))
        stats = server.update(opened["digest"], "classify", body)
        assert stats["function"] == "classify"
        assert stats["generation"] >= 1
        local.update("classify", body)
        assert server.query_sites(opened["digest"]) == local.query_sites()

    def test_explain_and_stats(self, server, opened):
        verdicts = server.query_sites(opened["digest"])
        undefined = [uid for uid, ok in verdicts.items() if not ok]
        assert undefined, "the classify program must warn"
        steps = server.explain(opened["digest"], undefined[0])
        assert steps, "an undefined site must have a flow trace"
        assert all(isinstance(step, str) for step in steps)
        stats = server.stats(opened["digest"])
        assert stats["generation"] >= 1

    def test_distinct_options_get_distinct_sessions(self, server, opened):
        other = server.open(
            source=SOURCE,
            name="classify",
            options=AnalysisOptions(tier="unified").as_dict(),
        )
        assert other["digest"] != opened["digest"]
        assert server.query_sites(other["digest"]) == server.query_sites(
            opened["digest"]
        )


class TestServeErrors:
    def test_unknown_digest_is_404(self, server):
        with pytest.raises(ServiceError) as exc:
            server.query_sites("feedfacedeadbeef")
        assert exc.value.status == 404

    def test_source_and_ir_together_is_400(self, server):
        with pytest.raises(ServiceError) as exc:
            server.open(source=SOURCE, ir="def main() {\n}")
        assert exc.value.status == 400

    def test_unknown_option_is_400(self, server):
        with pytest.raises(ServiceError) as exc:
            server.open(source=SOURCE, options={"turbo": True})
        assert exc.value.status == 400
        assert "turbo" in exc.value.message

    def test_parse_error_is_400_one_line(self, server):
        with pytest.raises(ServiceError) as exc:
            server.open(source="def main( {")
        assert exc.value.status == 400
        assert "\n" not in exc.value.message

    def test_unknown_route_is_404(self, server):
        with pytest.raises(ServiceError) as exc:
            server._call("/teapot", {})
        assert exc.value.status == 404
