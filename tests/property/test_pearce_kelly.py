"""Property suite: the Pearce–Kelly incremental topological order.

Wave scheduling pops each dirty frontier in topological order of the
copy-edge condensation.  Since Issue 6 that order is not recomputed
per wave — :meth:`DeltaSolver._init_pk_order` numbers the condensation
once and :meth:`DeltaSolver._pk_insert` repairs the numbering online
as copy edges are inserted (collapsing any cycle an insertion closes,
eagerly).  The solver-level contract ("every tier/schedule reaches the
identical fixpoint") is enforced by the differential suites; this file
attacks the *order maintenance itself* with adversarial edge
insertions, asserting after every single insertion that

1. each union-find representative holds a distinct order slot;
2. every copy edge between distinct representatives points upward in
   the maintained order — i.e. it is a valid topological order of the
   SCC-condensed copy graph, exactly the property a from-scratch
   reverse-postorder numbering (what :meth:`_init_pk_order` computes,
   and what per-wave recomputation used to re-derive) guarantees;
3. the union-find classes are exactly the SCCs of the inserted edge
   set, matched against an independent from-scratch Tarjan run in the
   test — eager insertion-time collapse must find precisely the cycles
   batch recomputation would.
"""

from typing import Dict, List, Sequence, Set, Tuple

from hypothesis import given, settings, strategies as st

from repro.analysis.andersen import DeltaSolver
from repro.analysis.memobjects import PVar
from repro.analysis.solverstats import SolverStats
from repro.tinyc import compile_source

_SETTINGS = dict(max_examples=60, deadline=None)

#: Adversarial instance size: small enough to check invariants after
#: every insertion, large enough for chains, diamonds and nested
#: cycles to occur routinely.
MAX_NODES = 10

Edge = Tuple[int, int]


def _fresh_solver() -> DeltaSolver:
    module = compile_source("def main() { return 0; }", "pk")
    return DeltaSolver(module, frozenset(), SolverStats(solver="delta"))


def _synthetic_nodes(solver: DeltaSolver, count: int) -> List[int]:
    return [solver._nid(PVar("<pk>", f"v{index}")) for index in range(count)]


def _from_scratch_sccs(count: int, edges: Sequence[Edge]) -> List[Set[int]]:
    """Independent iterative Tarjan over the raw inserted edge set."""
    out: Dict[int, Set[int]] = {}
    for src, dst in edges:
        out.setdefault(src, set()).add(dst)
    index_of = [-1] * count
    low = [0] * count
    on_stack = [False] * count
    stack: List[int] = []
    components: List[Set[int]] = []
    counter = 0
    for root in range(count):
        if index_of[root] >= 0:
            continue
        frames: List[Tuple[int, List[int], int]] = [
            (root, sorted(out.get(root, ())), 0)
        ]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while frames:
            node, succs, position = frames.pop()
            advanced = False
            while position < len(succs):
                succ = succs[position]
                position += 1
                if index_of[succ] < 0:
                    frames.append((node, succs, position))
                    index_of[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    frames.append((succ, sorted(out.get(succ, ())), 0))
                    advanced = True
                    break
                if on_stack[succ]:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component: Set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            if frames:
                parent = frames[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def _check_invariants(
    solver: DeltaSolver, nodes: List[int], edges: Sequence[Edge]
) -> None:
    find = solver._find
    ord_ = solver._ord
    # 1. One distinct slot per representative.
    reps = {find(nid) for nid in nodes}
    slots = [ord_[rep] for rep in reps]
    assert len(set(slots)) == len(slots), "duplicate order slots"
    # 2. A valid topological order of the condensation: every inserted
    # edge between distinct classes points upward.
    for src, dst in edges:
        rep_s, rep_d = find(nodes[src]), find(nodes[dst])
        if rep_s != rep_d:
            assert ord_[rep_s] < ord_[rep_d], (
                f"edge v{src}->v{dst} violates the maintained order"
            )
    # 3. Union-find classes == from-scratch SCCs: the eager
    # insertion-time collapse found exactly the cycles a batch Tarjan
    # over the same edge set finds.
    components = _from_scratch_sccs(len(nodes), edges)
    rep_of_component = []
    for component in components:
        component_reps = {find(nodes[member]) for member in component}
        assert len(component_reps) == 1, (
            f"SCC {sorted(component)} not fully collapsed"
        )
        rep_of_component.append(component_reps.pop())
    assert len(set(rep_of_component)) == len(components), (
        "distinct SCCs were over-merged"
    )


@st.composite
def _edge_sequences(draw):
    count = draw(st.integers(min_value=2, max_value=MAX_NODES))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, count - 1), st.integers(0, count - 1)
            ).filter(lambda pair: pair[0] != pair[1]),
            min_size=1,
            max_size=3 * count,
        )
    )
    return count, edges


class TestPearceKellyMaintenance:
    @settings(**_SETTINGS)
    @given(_edge_sequences())
    def test_order_survives_adversarial_insertion(self, case):
        """After *every* random-order insertion the maintained order is
        a topological order of the SCC-condensed copy graph and the
        collapsed classes match a from-scratch Tarjan."""
        count, edges = case
        solver = _fresh_solver()
        nodes = _synthetic_nodes(solver, count)
        solver._init_pk_order()
        inserted: List[Edge] = []
        for src, dst in edges:
            solver._copy_ids(nodes[src], nodes[dst])
            inserted.append((src, dst))
            _check_invariants(solver, nodes, inserted)

    @settings(**_SETTINGS)
    @given(_edge_sequences())
    def test_late_created_nodes_join_the_order(self, case):
        """Nodes interned *after* the order is initialized (the solver
        creates nodes mid-solve: loads, geps, clones) slot in above the
        numbered prefix and reorder correctly from there."""
        count, edges = case
        solver = _fresh_solver()
        early = _synthetic_nodes(solver, (count + 1) // 2)
        solver._init_pk_order()
        nodes = early + [
            solver._nid(PVar("<pk-late>", f"w{index}"))
            for index in range(count - len(early))
        ]
        inserted: List[Edge] = []
        for src, dst in edges:
            solver._copy_ids(nodes[src], nodes[dst])
            inserted.append((src, dst))
        _check_invariants(solver, nodes, inserted)


class TestPearceKellyDeterministic:
    def test_forward_chain_reorders_every_insertion(self):
        """The initial numbering runs opposite to creation order for
        edge-free nodes, so inserting a forward chain violates it at
        every step: each insertion must trigger exactly one reorder
        and the final numbering must run head to tail."""
        solver = _fresh_solver()
        nodes = _synthetic_nodes(solver, 8)
        solver._init_pk_order()
        edges = [(i, i + 1) for i in range(len(nodes) - 1)]
        for src, dst in edges:
            solver._copy_ids(nodes[src], nodes[dst])
        assert solver.stats.pk_reorders == len(edges)
        _check_invariants(solver, nodes, edges)
        ords = [solver._ord[solver._find(nid)] for nid in nodes]
        assert ords == sorted(ords)

    def test_closing_edge_collapses_whole_cycle(self):
        solver = _fresh_solver()
        nodes = _synthetic_nodes(solver, 6)
        solver._init_pk_order()
        before = solver.stats.sccs_collapsed
        edges = [(i, i + 1) for i in range(len(nodes) - 1)]
        edges.append((len(nodes) - 1, 0))  # closes the cycle
        for src, dst in edges:
            solver._copy_ids(nodes[src], nodes[dst])
        reps = {solver._find(nid) for nid in nodes}
        assert len(reps) == 1
        assert solver.stats.sccs_collapsed == before + 1
        _check_invariants(solver, nodes, edges)

    def test_nested_cycles_collapse_incrementally(self):
        """Two overlapping cycles arriving out of order end up as one
        class, with in-edges of the merged rep repaired."""
        solver = _fresh_solver()
        nodes = _synthetic_nodes(solver, 7)
        solver._init_pk_order()
        edges = [
            (4, 5), (5, 6),          # tail chain
            (2, 3), (3, 1), (1, 2),  # inner cycle out of order
            (0, 1), (3, 4),          # entry and exit
            (6, 0),                  # outer cycle through everything
        ]
        for src, dst in edges:
            solver._copy_ids(nodes[src], nodes[dst])
        assert len({solver._find(nid) for nid in nodes}) == 1
        _check_invariants(solver, nodes, edges)
